//! An offline, dependency-free reimplementation of the `rand` 0.8 API
//! surface this workspace uses.
//!
//! The corpus generator pins exact derived numbers (fingerprints, triple
//! counts) in `tests/pinned_results.rs`, so [`rngs::StdRng`] must be
//! **bit-for-bit identical** to upstream `rand` 0.8:
//!
//! * `StdRng` is ChaCha with 12 rounds (`rand_chacha::ChaCha12Rng`),
//!   64-bit block counter in state words 12–13, zero stream;
//! * `SeedableRng::seed_from_u64` expands the seed with the PCG32 output
//!   function exactly as `rand_core` 0.6 does;
//! * `Rng::gen_range` implements `UniformInt::sample_single_inclusive`
//!   (widening-multiply with the leading-zeros zone approximation);
//! * `Rng::gen_bool` implements `Bernoulli` (compare against
//!   `(p * 2^64) as u64`).
//!
//! Only the integer types and methods the workspace calls are provided.

use std::ops::{Range, RangeInclusive};

/// The core RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction (subset of `rand_core::SeedableRng`, fixed to a
/// 32-byte seed since `StdRng` is the only implementor here).
pub trait SeedableRng: Sized {
    /// Construct from a full 32-byte seed.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Construct from a `u64`, expanding it with the PCG32 output
    /// function exactly as `rand_core` 0.6 does.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// Types with a "standard" uniform distribution over all values.
pub trait StandardSample: Sized {
    /// Sample uniformly over the whole domain.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_from_u32 {
    ($($ty:ty),+) => {$(
        impl StandardSample for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $ty
            }
        }
    )+};
}
macro_rules! standard_from_u64 {
    ($($ty:ty),+) => {$(
        impl StandardSample for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )+};
}
standard_from_u32! { u8, i8, u16, i16, u32, i32 }
standard_from_u64! { u64, i64, usize, isize }

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8: Standard for bool uses one bit of next_u32.
        rng.next_u32() & 1 == 1
    }
}

/// Types usable with `gen_range` (subset of `rand::distributions::uniform`).
pub trait SampleUniform: Sized {
    /// Uniform sample from the inclusive range `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! wmul_impl {
    ($u_large:ty, $wide:ty) => {
        |a: $u_large, b: $u_large| -> ($u_large, $u_large) {
            let t = (a as $wide) * (b as $wide);
            ((t >> (<$u_large>::BITS)) as $u_large, t as $u_large)
        }
    };
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $wide:ty) => {
        impl SampleUniform for $ty {
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "gen_range: low > high");
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                // Wrap-around to 0 means the full type domain.
                if range == 0 {
                    return <$ty as StandardSample>::sample_standard(rng);
                }
                let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                    // Exact rejection zone for small types.
                    let unsigned_max: $u_large = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    // rand 0.8's fast leading-zeros approximation.
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                let wmul = wmul_impl!($u_large, $wide);
                loop {
                    let v = <$u_large as StandardSample>::sample_standard(rng);
                    let (hi, lo) = wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl! { i8, u8, u32, u64 }
uniform_int_impl! { i16, u16, u32, u64 }
uniform_int_impl! { i32, u32, u32, u64 }
uniform_int_impl! { i64, u64, u64, u128 }
uniform_int_impl! { isize, usize, usize, u128 }
uniform_int_impl! { u8, u8, u32, u64 }
uniform_int_impl! { u16, u16, u32, u64 }
uniform_int_impl! { u32, u32, u32, u64 }
uniform_int_impl! { u64, u64, u64, u128 }
uniform_int_impl! { usize, usize, usize, u128 }

/// Range argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy + OneLess> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(self.start, self.end.one_less(), rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Helper for translating exclusive into inclusive upper bounds.
pub trait OneLess {
    /// The predecessor value.
    fn one_less(self) -> Self;
}
macro_rules! one_less_impl {
    ($($ty:ty),+) => {$(
        impl OneLess for $ty {
            fn one_less(self) -> Self { self - 1 }
        }
    )+};
}
one_less_impl! { i8, i16, i32, i64, isize, u8, u16, u32, u64, usize }

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (rand 0.8 semantics).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0, 1]");
        // Bernoulli::new: p_int = (p * 2^64) as u64; p == 1.0 is the
        // saturated always-true sentinel.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        if p_int == u64::MAX {
            return true;
        }
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
    const BUF_WORDS: usize = 64; // 4 ChaCha blocks, as rand_chacha's BlockRng buffers.

    /// The standard generator: ChaCha12, bit-exact with `rand` 0.8's
    /// `StdRng` (including `BlockRng`'s `next_u64` word-pairing rules).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u32; BUF_WORDS],
        index: usize,
    }

    #[inline(always)]
    fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    impl StdRng {
        fn block(&self, counter: u64) -> [u32; 16] {
            let mut x = [0u32; 16];
            x[..4].copy_from_slice(&CHACHA_CONSTANTS);
            x[4..12].copy_from_slice(&self.key);
            x[12] = counter as u32;
            x[13] = (counter >> 32) as u32;
            // x[14], x[15]: stream/nonce, zero for from_seed.
            let initial = x;
            for _ in 0..6 {
                // One double round = column + diagonal quarter rounds.
                quarter(&mut x, 0, 4, 8, 12);
                quarter(&mut x, 1, 5, 9, 13);
                quarter(&mut x, 2, 6, 10, 14);
                quarter(&mut x, 3, 7, 11, 15);
                quarter(&mut x, 0, 5, 10, 15);
                quarter(&mut x, 1, 6, 11, 12);
                quarter(&mut x, 2, 7, 8, 13);
                quarter(&mut x, 3, 4, 9, 14);
            }
            for (word, init) in x.iter_mut().zip(initial) {
                *word = word.wrapping_add(init);
            }
            x
        }

        fn refill(&mut self) {
            for blk in 0..4 {
                let words = self.block(self.counter);
                self.buf[blk * 16..(blk + 1) * 16].copy_from_slice(&words);
                self.counter = self.counter.wrapping_add(1);
            }
        }

        fn generate_and_set(&mut self, index: usize) {
            self.refill();
            self.index = index;
        }
    }

    impl SeedableRng for StdRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (k, chunk) in key.iter_mut().zip(seed.chunks(4)) {
                *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; BUF_WORDS],
                index: BUF_WORDS,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.generate_and_set(0);
            }
            let value = self.buf[self.index];
            self.index += 1;
            value
        }

        fn next_u64(&mut self) -> u64 {
            // Exactly BlockRng::next_u64's three cases.
            let read = |buf: &[u32; BUF_WORDS], i: usize| {
                (u64::from(buf[i + 1]) << 32) | u64::from(buf[i])
            };
            let index = self.index;
            if index < BUF_WORDS - 1 {
                self.index += 2;
                read(&self.buf, index)
            } else if index >= BUF_WORDS {
                self.generate_and_set(2);
                read(&self.buf, 0)
            } else {
                let x = u64::from(self.buf[BUF_WORDS - 1]);
                self.generate_and_set(1);
                let y = u64::from(self.buf[0]);
                (y << 32) | x
            }
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(4);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u32().to_le_bytes());
            }
            let rest = chunks.into_remainder();
            if !rest.is_empty() {
                let bytes = self.next_u32().to_le_bytes();
                rest.copy_from_slice(&bytes[..rest.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seed_from_u64_is_rand_core_06() {
        // rand_core 0.6 expands seed 0 through the PCG32 output function;
        // the first word of the expansion is stable across rand releases.
        let a = StdRng::seed_from_u64(0);
        let b = StdRng::seed_from_u64(0);
        let mut a = a;
        let mut b = b;
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn blocks_advance_and_streams_differ_by_seed() {
        // Bit-exactness with upstream rand 0.8 is asserted end-to-end by
        // the workspace's pinned corpus fingerprint test; here we check
        // the block machinery itself behaves sanely.
        let mut rng = StdRng::from_seed([0u8; 32]);
        let first: Vec<u32> = (0..130).map(|_| rng.next_u32()).collect();
        let mut uniq = first.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > 120, "keystream words should not repeat");
        let mut other = StdRng::seed_from_u64(1);
        assert_ne!(first[0], other.next_u32());
    }

    #[test]
    fn gen_range_is_in_bounds_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = Vec::new();
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..=9);
            assert!((3..=9).contains(&v));
            seen.push(v);
        }
        let mut rng2 = StdRng::seed_from_u64(42);
        let seen2: Vec<usize> = (0..1000).map(|_| rng2.gen_range(3..=9)).collect();
        assert_eq!(seen, seen2);
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&heads), "p=0.3 gave {heads}/10000");
    }

    #[test]
    fn exclusive_and_inclusive_ranges_agree() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let x: i64 = a.gen_range(0..100);
        let y: i64 = b.gen_range(0..=99);
        assert_eq!(x, y);
    }
}
