//! An offline mini-proptest: the strategy combinators and macros this
//! workspace's property tests use, backed by deterministic sampling.
//!
//! Differences from upstream proptest, by design:
//!
//! * no shrinking — a failing case panics with the sampled inputs left to
//!   the assertion message;
//! * the regex-string strategy supports the subset the tests use
//!   (character classes with ranges and escapes, literal characters,
//!   `{m}`/`{m,n}` repetition, and `\PC` for printable characters);
//! * each `proptest!` test derives its RNG seed from the test's module
//!   path and name, so runs are reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::Strategy;

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG for one named test (FNV-1a over the name).
pub fn new_rng(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// `any::<T>()` — the standard strategy for a type.
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Types with a default "arbitrary" distribution.
pub trait Arbitrary: Sized {
    /// Sample one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rand::StandardSample::sample_standard(rng)
            }
        }
    )+};
}
arbitrary_int! { u8, i8, u16, i16, u32, i32, u64, i64, usize, isize, bool }

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig};

    /// The `prop::` module alias upstream's prelude provides.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property test (no shrinking, so this is `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Choose uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `fn` samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng =
                    $crate::new_rng(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}
