//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Element-count bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a sampled length.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Build a vector strategy (upstream `prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = vec(0usize..10, 2..5);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
