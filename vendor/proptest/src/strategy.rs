//! Strategies: deterministic samplers with `prop_map`/`boxed`/union
//! combinators and a regex-subset string generator.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;
use std::rc::Rc;

/// A source of sampled values (upstream proptest's `Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform sampled values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete type (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut StdRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the macro's boxed arms.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

/// The marker strategy behind [`crate::any`].
pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

impl<T: crate::Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )+};
}
range_strategy! { u8, i8, u16, i16, u32, i32, u64, i64, usize, isize }

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy! { A }
tuple_strategy! { A, B }
tuple_strategy! { A, B, C }
tuple_strategy! { A, B, C, D }
tuple_strategy! { A, B, C, D, E }
tuple_strategy! { A, B, C, D, E, F }

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        sample_regex(self, rng)
    }
}

// --- regex-subset string generation -------------------------------------

#[derive(Clone, Debug)]
enum CharSet {
    /// Inclusive ranges of characters.
    Ranges(Vec<(char, char)>),
    /// `\PC`: "not a control/unassigned character" — sampled from a
    /// printable pool spanning ASCII and a few multi-byte characters.
    Printable,
}

#[derive(Clone, Debug)]
struct Atom {
    set: CharSet,
    min: usize,
    max: usize,
}

const PRINTABLE_EXTRA: &[char] = &['à', 'é', 'ü', 'ß', '中', '界', 'λ', 'Ω', '€', '→', '𝄞'];

fn sample_char(set: &CharSet, rng: &mut StdRng) -> char {
    match set {
        CharSet::Printable => {
            // Mostly ASCII printable, sometimes wider Unicode.
            if rng.gen_bool(0.15) {
                PRINTABLE_EXTRA[rng.gen_range(0..PRINTABLE_EXTRA.len())]
            } else {
                char::from(rng.gen_range(0x20u8..0x7f))
            }
        }
        CharSet::Ranges(ranges) => {
            let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
            let mut idx = rng.gen_range(0..total);
            for (a, b) in ranges {
                let size = *b as u32 - *a as u32 + 1;
                if idx < size {
                    return char::from_u32(*a as u32 + idx)
                        .expect("range endpoints are valid chars");
                }
                idx -= size;
            }
            unreachable!("index within total size")
        }
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> CharSet {
    let mut ranges = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars.next().expect("unterminated character class");
        match c {
            ']' => break,
            '\\' => {
                let e = chars.next().expect("dangling escape in class");
                let lit = match e {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                };
                if let Some(p) = pending.take() {
                    ranges.push((p, p));
                }
                pending = Some(lit);
            }
            '-' => {
                // Range if between two chars, literal otherwise.
                match (pending.take(), chars.peek()) {
                    (Some(lo), Some(&next)) if next != ']' => {
                        let hi = match chars.next().expect("range end") {
                            '\\' => {
                                let e = chars.next().expect("dangling escape");
                                match e {
                                    'n' => '\n',
                                    't' => '\t',
                                    other => other,
                                }
                            }
                            other => other,
                        };
                        assert!(lo <= hi, "inverted class range {lo:?}-{hi:?}");
                        ranges.push((lo, hi));
                    }
                    (pend, _) => {
                        if let Some(p) = pend {
                            ranges.push((p, p));
                        }
                        pending = Some('-');
                    }
                }
            }
            other => {
                if let Some(p) = pending.take() {
                    ranges.push((p, p));
                }
                pending = Some(other);
            }
        }
    }
    if let Some(p) = pending {
        ranges.push((p, p));
    }
    CharSet::Ranges(ranges)
}

fn parse_repetition(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut min = String::new();
    let mut max = String::new();
    let mut in_max = false;
    loop {
        match chars.next().expect("unterminated repetition") {
            '}' => break,
            ',' => in_max = true,
            d => {
                if in_max {
                    max.push(d);
                } else {
                    min.push(d);
                }
            }
        }
    }
    let min: usize = min.parse().expect("repetition lower bound");
    let max: usize = if in_max {
        max.parse().expect("repetition upper bound")
    } else {
        min
    };
    (min, max)
}

fn parse_regex(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => parse_class(&mut chars),
            '\\' => match chars.next().expect("dangling escape") {
                'P' => {
                    let category = chars.next().expect("\\P needs a category");
                    assert_eq!(category, 'C', "only \\PC is supported");
                    CharSet::Printable
                }
                'n' => CharSet::Ranges(vec![('\n', '\n')]),
                't' => CharSet::Ranges(vec![('\t', '\t')]),
                other => CharSet::Ranges(vec![(other, other)]),
            },
            other => CharSet::Ranges(vec![(other, other)]),
        };
        let (min, max) = parse_repetition(&mut chars);
        atoms.push(Atom { set, min, max });
    }
    atoms
}

fn sample_regex(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for atom in parse_regex(pattern) {
        let count = rng.gen_range(atom.min..=atom.max);
        for _ in 0..count {
            out.push(sample_char(&atom.set, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn regex_classes_and_repetition() {
        let mut r = rng();
        for _ in 0..200 {
            let s = sample_regex("[a-z]{1,8}", &mut r);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn regex_literals_and_compound() {
        let mut r = rng();
        for _ in 0..100 {
            let s = sample_regex("[a-z]{1,6}/[a-z0-9]{1,6}", &mut r);
            assert!(s.contains('/'));
        }
    }

    #[test]
    fn regex_trailing_dash_and_escapes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = sample_regex("[a-zA-Z0-9][a-zA-Z0-9_-]{0,10}", &mut r);
            assert!(!s.is_empty() && s.len() <= 11);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
        }
        for _ in 0..200 {
            let s = sample_regex("[ -~\n\t\"\\\\àé中]{0,24}", &mut r);
            assert!(s.chars().count() <= 24);
        }
    }

    #[test]
    fn regex_printable() {
        let mut r = rng();
        for _ in 0..50 {
            let s = sample_regex("\\PC{0,200}", &mut r);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn union_and_map_compose() {
        let mut r = rng();
        let s = crate::prop_oneof![
            (0usize..5).prop_map(|v| v * 10),
            (5usize..10).prop_map(|v| v * 100),
        ];
        for _ in 0..100 {
            let v = s.sample(&mut r);
            assert!(v % 10 == 0);
        }
    }
}
