//! An offline stand-in for the `criterion` benchmarking API surface the
//! workspace's benches use. Instead of statistical sampling it runs each
//! routine a handful of times and prints mean wall-clock time — enough to
//! keep `cargo bench` useful for coarse comparisons while building with
//! no network access.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (`name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

const WARMUP_ITERS: u64 = 1;
const MEASURE_ITERS: u64 = 5;

impl Bencher {
    /// Time a routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = MEASURE_ITERS;
    }

    /// Time a routine with a fresh setup value per iteration (setup time
    /// excluded).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut elapsed = Duration::ZERO;
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
        self.iters = MEASURE_ITERS;
    }
}

fn report(id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let per_iter = if bencher.iters == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iters as u32
    };
    let rate = throughput.map(|t| {
        let secs = per_iter.as_secs_f64().max(1e-12);
        match t {
            Throughput::Bytes(b) => format!(" ({:.1} MiB/s)", b as f64 / secs / (1024.0 * 1024.0)),
            Throughput::Elements(n) => format!(" ({:.0} elem/s)", n as f64 / secs),
        }
    });
    println!(
        "bench {id:50} {per_iter:>12.2?}/iter{}",
        rate.unwrap_or_default()
    );
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&id.id, &b, None);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored (the stub always runs a fixed iteration count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls >= MEASURE_ITERS);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with", 3), &3usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
