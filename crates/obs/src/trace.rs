//! Span timing and JSONL trace events.
//!
//! A [`SpanGuard`] measures the wall-clock time between its creation
//! and its drop. Every finished span lands in the registry's
//! `provbench_span_seconds{span="<name>"}` histogram; when a trace
//! writer is installed (`provbench --trace FILE`), it additionally
//! appends one [`TraceEvent`] as a line of JSON, so a run can be
//! replayed offline without having scraped anything.

use crate::metrics::{Registry, LATENCY_BUCKETS};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One finished span, as serialized to the JSONL trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name, dotted by convention (`query.eval`, `snapshot.decode`).
    pub name: String,
    /// Microseconds from the registry's first trace event to this
    /// span's start (a process-relative timeline, not a wall clock).
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Name of the recording thread (`"?"` for unnamed threads).
    pub thread: String,
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn unescape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

impl TraceEvent {
    /// One line of JSON (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"start_us\":{},\"dur_us\":{},\"thread\":\"{}\"}}",
            escape_json(&self.name),
            self.start_us,
            self.dur_us,
            escape_json(&self.thread),
        )
    }

    /// Parse a line produced by [`TraceEvent::to_json_line`]. `None`
    /// when the line is not a trace event (so readers can skip torn
    /// tails without failing the whole file).
    pub fn parse_json_line(line: &str) -> Option<TraceEvent> {
        let line = line.trim();
        let body = line.strip_prefix('{')?.strip_suffix('}')?;
        let mut name = None;
        let mut start_us = None;
        let mut dur_us = None;
        let mut thread = None;
        // Fields are written by us in a fixed shape: split on `,"` is
        // safe because escaped quotes inside values never precede a
        // comma-quote pair that also parses as `"key":`.
        for field in split_top_level(body) {
            let (key, value) = field.split_once(':')?;
            let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
            let value = value.trim();
            match key {
                "name" => name = Some(unescape_json(value.strip_prefix('"')?.strip_suffix('"')?)),
                "start_us" => start_us = value.parse().ok(),
                "dur_us" => dur_us = value.parse().ok(),
                "thread" => {
                    thread = Some(unescape_json(value.strip_prefix('"')?.strip_suffix('"')?))
                }
                _ => {}
            }
        }
        Some(TraceEvent {
            name: name?,
            start_us: start_us?,
            dur_us: dur_us?,
            thread: thread?,
        })
    }

    /// Parse a whole JSONL trace, skipping lines that don't parse
    /// (e.g. a torn final line after a crash).
    pub fn parse_jsonl(text: &str) -> Vec<TraceEvent> {
        text.lines()
            .filter_map(TraceEvent::parse_json_line)
            .collect()
    }
}

/// Split `"k":"v","k2":3` on top-level commas (commas inside quoted
/// strings, escape-aware, don't count).
fn split_top_level(s: &str) -> Vec<&str> {
    let mut fields = Vec::new();
    let mut start = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            ',' if !in_string => {
                fields.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    fields.push(&s[start..]);
    fields
}

/// The registry's (usually absent) JSONL writer. The `enabled` flag is
/// checked lock-free on the span hot path; the writer itself sits
/// behind a mutex taken only when tracing is actually on.
#[derive(Default)]
pub(crate) struct TraceSink {
    enabled: AtomicBool,
    writer: Mutex<Option<SinkState>>,
}

struct SinkState {
    writer: Box<dyn Write + Send>,
    /// Start of the trace timeline; event `start_us` offsets are
    /// relative to this.
    epoch: Instant,
}

impl TraceSink {
    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub(crate) fn set_writer(&self, writer: Box<dyn Write + Send>) {
        *self.writer.lock().expect("trace lock") = Some(SinkState {
            writer,
            epoch: Instant::now(),
        });
        self.enabled.store(true, Ordering::Relaxed);
    }

    pub(crate) fn clear_writer(&self) {
        self.enabled.store(false, Ordering::Relaxed);
        if let Some(mut state) = self.writer.lock().expect("trace lock").take() {
            let _ = state.writer.flush();
        }
    }

    /// Append one event for a span that started at `start` and just
    /// finished. Quietly drops the event if the writer disappeared in
    /// the meantime.
    fn emit(&self, name: &str, start: Instant, end: Instant) {
        let mut guard = self.writer.lock().expect("trace lock");
        let Some(state) = guard.as_mut() else { return };
        let start_us = start
            .saturating_duration_since(state.epoch)
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let dur_us = end
            .saturating_duration_since(start)
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let event = TraceEvent {
            name: name.to_owned(),
            start_us,
            dur_us,
            thread: std::thread::current().name().unwrap_or("?").to_owned(),
        };
        let _ = writeln!(state.writer, "{}", event.to_json_line());
    }
}

/// A timed span; created by [`Registry::span`] or [`crate::span`],
/// finished on drop.
pub struct SpanGuard {
    registry: Arc<Registry>,
    name: &'static str,
    start: Instant,
}

impl SpanGuard {
    pub(crate) fn start(registry: Arc<Registry>, name: &'static str) -> SpanGuard {
        SpanGuard {
            registry,
            name,
            start: Instant::now(),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = Instant::now();
        self.registry
            .histogram_with(
                "provbench_span_seconds",
                "Wall-clock duration of named spans",
                LATENCY_BUCKETS,
                &[("span", self.name)],
            )
            .observe_duration(end.duration_since(self.start));
        if self.registry.trace_enabled() {
            self.registry.trace_sink().emit(self.name, self.start, end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_event_roundtrips() {
        let e = TraceEvent {
            name: "query.eval \"tricky\"\n".into(),
            start_us: 12,
            dur_us: 345,
            thread: "worker\\1".into(),
        };
        let line = e.to_json_line();
        assert_eq!(TraceEvent::parse_json_line(&line), Some(e));
        assert_eq!(TraceEvent::parse_json_line("not json"), None);
        assert_eq!(TraceEvent::parse_json_line("{\"name\":\"x\"}"), None);
    }

    #[test]
    fn spans_emit_jsonl_and_histograms() {
        let registry = Arc::new(Registry::new());
        let buffer = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        registry.set_trace_writer(Box::new(Shared(Arc::clone(&buffer))));
        {
            let _outer = registry.span("test.outer");
            let _inner = registry.span("test.inner");
        }
        registry.clear_trace_writer();
        assert!(!registry.trace_enabled());

        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        let events = TraceEvent::parse_jsonl(&text);
        // Guards drop in reverse declaration order: inner first.
        assert_eq!(events.len(), 2, "{text}");
        assert_eq!(events[0].name, "test.inner");
        assert_eq!(events[1].name, "test.outer");
        assert!(events[1].dur_us >= events[0].dur_us);

        // And the same spans landed in the histogram.
        let h = registry.histogram_with(
            "provbench_span_seconds",
            "Wall-clock duration of named spans",
            LATENCY_BUCKETS,
            &[("span", "test.inner")],
        );
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn spans_without_writer_only_record_metrics() {
        let registry = Arc::new(Registry::new());
        drop(registry.span("test.solo"));
        let rendered = registry.render_prometheus();
        assert!(
            rendered.contains("provbench_span_seconds_count{span=\"test.solo\"} 1"),
            "{rendered}"
        );
    }
}
