//! # provbench-obs
//!
//! The workspace's observability substrate: a lock-cheap metrics
//! registry ([`Registry`]: monotonic [`Counter`]s, [`Gauge`]s and
//! fixed-bucket [`Histogram`]s — atomics only on the record path), a
//! span API ([`span`] / [`Registry::span`]: RAII guards that time a
//! named region and optionally append JSONL [`TraceEvent`]s for
//! `provbench --trace FILE`), and Prometheus text exposition
//! ([`Registry::render_prometheus`], served by the endpoint's
//! `GET /metrics` route).
//!
//! Instrumented components default to the process-wide [`global`]
//! registry, so `provbench serve` publishes ingest, snapshot, query,
//! lint and HTTP metrics with zero configuration; tests that need
//! isolation construct their own `Arc<Registry>` and thread it through
//! `StoreOptions`, `QueryEngine::with_metrics` and the endpoint's
//! `ServerConfig::registry`.
//!
//! ```
//! use provbench_obs as obs;
//!
//! let registry = std::sync::Arc::new(obs::Registry::new());
//! registry.counter("provbench_demo_total", "demo counter").inc();
//! {
//!     let _timed = registry.span("demo.work");
//!     // … timed work …
//! }
//! let text = registry.render_prometheus();
//! assert!(text.contains("provbench_demo_total 1"));
//! assert!(text.contains("provbench_span_seconds_count{span=\"demo.work\"} 1"));
//! ```

mod metrics;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, Registry, LATENCY_BUCKETS};
pub use trace::{SpanGuard, TraceEvent};

use std::sync::{Arc, OnceLock};

/// The process-wide default registry. Instrumented code records here
/// unless an explicit registry was threaded through.
pub fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

/// Start a span on the [`global`] registry.
pub fn span(name: &'static str) -> SpanGuard {
    global().span(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        global().counter("provbench_global_test_total", "t").inc();
        assert!(global()
            .render_prometheus()
            .contains("provbench_global_test_total"));
        drop(span("global.test"));
    }
}
