//! The metrics registry: monotonic counters, gauges and fixed-bucket
//! histograms, rendered in the Prometheus text exposition format.
//!
//! The design splits the cost of a metric in two:
//!
//! * **registration** (`counter`, `gauge`, `histogram` and their
//!   `_with` label variants) takes a registry lock to get-or-create the
//!   series and hands back an `Arc` handle;
//! * **recording** (`inc`, `add`, `set`, `observe`) touches only
//!   atomics on the handle — no lock, no allocation.
//!
//! Hot paths register once and keep the handle; occasional paths (an
//! HTTP request labelled by its status code) may get-or-create per
//! event, which costs one read-locked map lookup.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add (a possibly negative) `delta`.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed, ascending bucket bounds. Observations and
/// the running sum use only atomics; the `+Inf` bucket is implicit.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    /// One slot per bound plus the `+Inf` overflow slot; each slot
    /// counts observations that landed in *that* bucket (cumulation
    /// happens at render time).
    counts: Box<[AtomicU64]>,
    /// Sum of all observed values, stored as `f64` bits and updated
    /// with a CAS loop so it stays exact and lock-free.
    sum_bits: AtomicU64,
}

/// Default latency buckets, in seconds: 100µs to 10s, roughly
/// logarithmic. Suitable for everything this workspace times, from a
/// single file parse to a cold corpus build.
pub const LATENCY_BUCKETS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.into(),
            counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let slot = self.bounds.partition_point(|b| v > *b);
        self.counts[slot].fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Record a [`std::time::Duration`] in seconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// `(upper_bound, cumulative_count)` per bucket, ending with the
    /// implicit `+Inf` bucket (whose count equals [`Histogram::count`]).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut running = 0u64;
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, c) in self.counts.iter().enumerate() {
            running += c.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, running));
        }
        out
    }
}

/// What a family of series measures, fixed at registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// All series sharing one metric name, with its help text and type.
struct Family {
    help: &'static str,
    kind: MetricKind,
    /// Keyed by the rendered label set (`""` for no labels, otherwise
    /// `key="value",…` with keys in caller order).
    series: BTreeMap<String, Series>,
}

/// A metrics registry. Cheap to share (`Arc<Registry>`), cheap to
/// record into (handles are lock-free), deterministic to render
/// (families and series in sorted order).
#[derive(Default)]
pub struct Registry {
    families: RwLock<BTreeMap<&'static str, Family>>,
    trace: crate::trace::TraceSink,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.read().expect("metrics lock");
        f.debug_struct("Registry")
            .field("families", &families.len())
            .field("trace_enabled", &self.trace.enabled())
            .finish()
    }
}

/// Render a label set as it appears inside `{…}`. Values are escaped
/// per the exposition format (backslash, quote, newline).
fn label_key(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let escaped = v
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n");
        let _ = write!(out, "{k}=\"{escaped}\"");
    }
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The registry's trace sink (None-by-default JSONL writer fed by
    /// span guards).
    pub(crate) fn trace_sink(&self) -> &crate::trace::TraceSink {
        &self.trace
    }

    /// Install a JSONL trace writer; every finished span is appended as
    /// one JSON object per line. Replaces any previous writer.
    pub fn set_trace_writer(&self, writer: Box<dyn std::io::Write + Send>) {
        self.trace.set_writer(writer);
    }

    /// Remove the trace writer (flushing it) and stop emitting events.
    pub fn clear_trace_writer(&self) {
        self.trace.clear_writer();
    }

    /// Whether a trace writer is currently installed. Span guards check
    /// this before formatting anything.
    pub fn trace_enabled(&self) -> bool {
        self.trace.enabled()
    }

    fn series(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
    ) -> Series {
        let key = label_key(labels);
        if let Some(family) = self.families.read().expect("metrics lock").get(name) {
            assert!(
                family.kind == kind,
                "metric {name} registered as {} but requested as {}",
                family.kind.as_str(),
                kind.as_str()
            );
            if let Some(series) = family.series.get(&key) {
                return series.clone();
            }
        }
        let mut families = self.families.write().expect("metrics lock");
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} registered as {} but requested as {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family.series.entry(key).or_insert_with(make).clone()
    }

    /// Get-or-create an unlabelled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Get-or-create a counter with the given label set.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        match self.series(name, help, MetricKind::Counter, labels, || {
            Series::Counter(Arc::new(Counter::default()))
        }) {
            Series::Counter(c) => c,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Get-or-create an unlabelled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Get-or-create a gauge with the given label set.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        match self.series(name, help, MetricKind::Gauge, labels, || {
            Series::Gauge(Arc::new(Gauge::default()))
        }) {
            Series::Gauge(g) => g,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Get-or-create an unlabelled histogram over `bounds` (ascending;
    /// the `+Inf` bucket is added automatically).
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        bounds: &[f64],
    ) -> Arc<Histogram> {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Get-or-create a histogram with the given label set.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.series(name, help, MetricKind::Histogram, labels, || {
            Series::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Series::Histogram(h) => h,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Start a timed span. The returned guard records its elapsed time
    /// into `provbench_span_seconds{span="<name>"}` on drop and, when a
    /// trace writer is installed, appends one JSONL trace event.
    pub fn span(self: &Arc<Self>, name: &'static str) -> crate::trace::SpanGuard {
        crate::trace::SpanGuard::start(Arc::clone(self), name)
    }

    /// Render every family in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers, counters and
    /// gauges as single samples, histograms as cumulative `_bucket`
    /// series plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.read().expect("metrics lock");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", braced(labels, &[]), c.get());
                    }
                    Series::Gauge(g) => {
                        let _ = writeln!(out, "{name}{} {}", braced(labels, &[]), g.get());
                    }
                    Series::Histogram(h) => {
                        for (bound, cumulative) in h.cumulative_buckets() {
                            let le = if bound.is_infinite() {
                                "+Inf".to_owned()
                            } else {
                                format_float(bound)
                            };
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                braced(labels, &[("le", &le)]),
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            braced(labels, &[]),
                            format_float(h.sum())
                        );
                        let _ = writeln!(out, "{name}_count{} {}", braced(labels, &[]), h.count());
                    }
                }
            }
        }
        out
    }
}

/// `{labels,extra}` with both parts optional; empty label sets render
/// as no braces at all.
fn braced(labels: &str, extra: &[(&str, &str)]) -> String {
    let extra = label_key(extra);
    match (labels.is_empty(), extra.is_empty()) {
        (true, true) => String::new(),
        (false, true) => format!("{{{labels}}}"),
        (true, false) => format!("{{{extra}}}"),
        (false, false) => format!("{{{labels},{extra}}}"),
    }
}

/// A float in exposition format: plain decimal, no trailing zeros
/// beyond what `{}` prints (Rust's `Display` for f64 is shortest
/// round-trip, which Prometheus accepts).
fn format_float(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let r = Registry::new();
        let c = r.counter("provbench_test_total", "test counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same series.
        assert_eq!(r.counter("provbench_test_total", "test counter").get(), 5);

        let g = r.gauge("provbench_test_entries", "test gauge");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn labelled_series_are_distinct() {
        let r = Registry::new();
        r.counter_with("provbench_req_total", "reqs", &[("status", "200")])
            .add(3);
        r.counter_with("provbench_req_total", "reqs", &[("status", "404")])
            .inc();
        assert_eq!(
            r.counter_with("provbench_req_total", "reqs", &[("status", "200")])
                .get(),
            3
        );
        let text = r.render_prometheus();
        assert!(
            text.contains("provbench_req_total{status=\"200\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("provbench_req_total{status=\"404\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_sum_exact() {
        let r = Registry::new();
        let h = r.histogram("provbench_lat_seconds", "latency", &[0.1, 1.0, 10.0]);
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 56.05).abs() < 1e-9);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets[0], (0.1, 1));
        assert_eq!(buckets[1], (1.0, 3));
        assert_eq!(buckets[2], (10.0, 4));
        assert_eq!(buckets[3].1, 5);
        assert!(buckets[3].0.is_infinite());
        // Boundary values land in the bucket whose bound they equal
        // (le is inclusive).
        h.observe(0.1);
        assert_eq!(h.cumulative_buckets()[0].1, 2);
    }

    #[test]
    fn render_shape_is_valid_exposition() {
        let r = Registry::new();
        r.counter("provbench_a_total", "a").inc();
        r.gauge("provbench_b", "b").set(2);
        r.histogram("provbench_c_seconds", "c", &[0.5, 1.0])
            .observe(0.7);
        let text = r.render_prometheus();
        let mut expected = [
            "# HELP provbench_a_total a",
            "# TYPE provbench_a_total counter",
            "provbench_a_total 1",
            "# HELP provbench_b b",
            "# TYPE provbench_b gauge",
            "provbench_b 2",
            "# HELP provbench_c_seconds c",
            "# TYPE provbench_c_seconds histogram",
            "provbench_c_seconds_bucket{le=\"0.5\"} 0",
            "provbench_c_seconds_bucket{le=\"1\"} 1",
            "provbench_c_seconds_bucket{le=\"+Inf\"} 1",
            "provbench_c_seconds_sum 0.7",
            "provbench_c_seconds_count 1",
        ]
        .into_iter();
        for line in text.lines() {
            assert_eq!(Some(line), expected.next(), "full text:\n{text}");
        }
        assert_eq!(expected.next(), None);
    }

    #[test]
    fn concurrent_increments_lose_nothing() {
        let r = Arc::new(Registry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let c = r.counter("provbench_conc_total", "concurrent");
                    let h = r.histogram("provbench_conc_seconds", "concurrent", LATENCY_BUCKETS);
                    for _ in 0..1000 {
                        c.inc();
                        h.observe(0.001);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.counter("provbench_conc_total", "concurrent").get(), 8000);
        let h = r.histogram("provbench_conc_seconds", "concurrent", LATENCY_BUCKETS);
        assert_eq!(h.count(), 8000);
        assert!((h.sum() - 8.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("provbench_x", "x");
        r.gauge("provbench_x", "x");
    }
}
