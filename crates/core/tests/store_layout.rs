//! The on-disk corpus layout is part of the contract: downstream users
//! clone the directory and navigate it by convention. Pin the layout.

use provbench_core::{store, Corpus, CorpusSpec};
use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

fn corpus() -> Corpus {
    Corpus::generate(&CorpusSpec {
        max_workflows: Some(70),
        total_runs: 74,
        failed_runs: 4,
        ..CorpusSpec::default()
    })
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("provbench-layout-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn directory_layout_follows_the_published_convention() {
    let c = corpus();
    let dir = tmpdir();
    store::save(&c, &dir).unwrap();

    // Top level: manifest, VoID description, one directory per system.
    let top: BTreeSet<String> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(
        top,
        ["manifest.tsv", "void.ttl", "taverna", "wings"]
            .into_iter()
            .map(str::to_owned)
            .collect()
    );

    // Each system directory holds one directory per workflow, each with
    // a description and one trace file per run in the native syntax.
    for (system, desc_name, ext) in [
        ("taverna", "workflow.wfdesc.ttl", ".prov.ttl"),
        ("wings", "workflow.opmw.ttl", ".prov.trig"),
    ] {
        for wf_dir in fs::read_dir(dir.join(system)).unwrap() {
            let wf_dir = wf_dir.unwrap().path();
            let files: Vec<String> = fs::read_dir(&wf_dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect();
            assert!(
                files.iter().any(|f| f == desc_name),
                "{} missing {desc_name}",
                wf_dir.display()
            );
            assert!(
                files.iter().filter(|f| f.ends_with(ext)).count() >= 1,
                "{} has no {ext} traces",
                wf_dir.display()
            );
            // Nothing else sneaks in.
            for f in &files {
                assert!(
                    f == desc_name || f.ends_with(ext),
                    "unexpected file {f} in {}",
                    wf_dir.display()
                );
            }
        }
    }

    // The manifest names every run and carries the failure column.
    let manifest = fs::read_to_string(dir.join("manifest.tsv")).unwrap();
    assert_eq!(manifest.lines().count(), 1 + c.traces.len());
    assert_eq!(
        manifest.matches("\tFAILED").count(),
        c.failed_count(),
        "manifest failure column disagrees"
    );
    // The VoID file parses and mentions the corpus title.
    let void = fs::read_to_string(dir.join("void.ttl")).unwrap();
    assert!(provbench_rdf::parse_turtle(&void).is_ok());
    assert!(void.contains("Workflow PROV-Corpus"));

    fs::remove_dir_all(&dir).unwrap();
}
