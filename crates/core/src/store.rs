//! The corpus on disk: one RDF file per run plus one description per
//! workflow, mirroring the layout of the published Wf4Ever-PROV corpus
//! repository (a directory per system, a directory per workflow).

use crate::generate::{Corpus, TraceRecord};
use provbench_rdf::{
    parse_trig, parse_turtle, write_trig, write_turtle, Dataset, Graph, PrefixMap,
};
use provbench_workflow::System;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Serialize one trace in its system's native format: Turtle for Taverna
/// (flat graph), TriG for Wings (account bundle as a named graph).
pub fn serialize_trace(trace: &TraceRecord) -> String {
    let prefixes = PrefixMap::common();
    match trace.system {
        System::Taverna => write_turtle(trace.dataset.default_graph(), &prefixes),
        System::Wings => write_trig(&trace.dataset, &prefixes),
    }
}

/// File extension for a trace of the given system.
pub fn trace_extension(system: System) -> &'static str {
    match system {
        System::Taverna => "prov.ttl",
        System::Wings => "prov.trig",
    }
}

/// Serialize a workflow-description graph (always Turtle).
pub fn serialize_description(description: &Graph) -> String {
    write_turtle(description, &PrefixMap::common())
}

/// Description file name for the given system.
pub fn description_file(system: System) -> &'static str {
    match system {
        System::Taverna => "workflow.wfdesc.ttl",
        System::Wings => "workflow.opmw.ttl",
    }
}

/// Export the entire corpus (descriptions + every trace) as a single
/// N-Quads stream — one file for bulk interchange, complementing the
/// per-run Turtle/TriG layout.
pub fn export_nquads(corpus: &Corpus) -> String {
    provbench_rdf::write_nquads(&corpus.combined_dataset())
}

/// Summary of a completed save.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SavedCorpus {
    /// Number of files written.
    pub files: usize,
    /// Total bytes written.
    pub bytes: u64,
}

/// Write the corpus under `dir` (created if absent).
pub fn save(corpus: &Corpus, dir: &Path) -> io::Result<SavedCorpus> {
    let mut files = 0usize;
    let mut bytes = 0u64;
    let mut write = |path: PathBuf, content: String| -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        bytes += content.len() as u64;
        files += 1;
        fs::write(path, content)
    };

    // Manifest: one line per run.
    let mut manifest = String::from("# run_id\tsystem\ttemplate\tdomain\trun_number\tstatus\n");
    for t in &corpus.traces {
        manifest.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\n",
            t.run_id,
            t.system.name(),
            t.template_name,
            t.domain,
            t.run_number,
            if t.failed() { "FAILED" } else { "OK" }
        ));
    }
    write(dir.join("manifest.tsv"), manifest)?;

    // The dataset's VoID description (Table 1 as RDF).
    let stats = crate::stats::CorpusStats::compute(corpus);
    let mut prefixes = PrefixMap::common();
    prefixes.insert("void", "http://rdfs.org/ns/void#");
    write(
        dir.join("void.ttl"),
        write_turtle(&crate::stats::void_description(&stats), &prefixes),
    )?;

    for ((system, template), description) in corpus.templates.iter().zip(&corpus.descriptions) {
        let sysdir = dir
            .join(system.name().to_ascii_lowercase())
            .join(&template.name);
        write(
            sysdir.join(description_file(*system)),
            serialize_description(description),
        )?;
    }
    for trace in &corpus.traces {
        let sysdir = dir
            .join(trace.system.name().to_ascii_lowercase())
            .join(&trace.template_name);
        let file = format!("{}.{}", trace.run_id, trace_extension(trace.system));
        write(sysdir.join(file), serialize_trace(trace))?;
    }
    Ok(SavedCorpus { files, bytes })
}

/// One trace loaded back from disk.
#[derive(Clone, Debug)]
pub struct LoadedTrace {
    /// Run id (file stem).
    pub run_id: String,
    /// Producing system (from the directory layout).
    pub system: System,
    /// Template name (from the directory layout).
    pub template_name: String,
    /// The parsed dataset.
    pub dataset: Dataset,
}

/// A corpus loaded back from disk (RDF level only — the raw
/// [`provbench_workflow::WorkflowRun`] records exist only in memory).
#[derive(Clone, Debug, Default)]
pub struct LoadedCorpus {
    /// All traces found.
    pub traces: Vec<LoadedTrace>,
    /// All workflow-description graphs found.
    pub descriptions: Vec<Graph>,
}

impl LoadedCorpus {
    /// Merge everything into one dataset (same shape as
    /// [`Corpus::combined_dataset`]).
    pub fn combined_dataset(&self) -> Dataset {
        let mut ds = Dataset::new();
        for d in &self.descriptions {
            ds.default_graph_mut().extend_from_graph(d);
        }
        for (i, t) in self.traces.iter().enumerate() {
            match t.system {
                System::Taverna => {
                    let name = provbench_rdf::Iri::new_unchecked(format!(
                        "{}graph",
                        provbench_taverna::run_base_iri(&t.run_id)
                    ));
                    ds.insert_graph(name.into(), t.dataset.default_graph());
                }
                System::Wings => ds.merge(&t.dataset),
            }
            let _ = i;
        }
        ds
    }
}

fn parse_error(path: &Path, e: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {e}", path.display()),
    )
}

/// Load a corpus directory written by [`save`].
pub fn load(dir: &Path) -> io::Result<LoadedCorpus> {
    let mut out = LoadedCorpus::default();
    for system in [System::Taverna, System::Wings] {
        let sysdir = dir.join(system.name().to_ascii_lowercase());
        if !sysdir.exists() {
            continue;
        }
        let mut template_dirs: Vec<PathBuf> = fs::read_dir(&sysdir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        template_dirs.sort();
        for tdir in template_dirs {
            let template_name = tdir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_owned();
            let mut entries: Vec<PathBuf> = fs::read_dir(&tdir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_file())
                .collect();
            entries.sort();
            for path in entries {
                let name = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default();
                let content = fs::read_to_string(&path)?;
                if name == description_file(system) {
                    let (g, _) = parse_turtle(&content).map_err(|e| parse_error(&path, e))?;
                    out.descriptions.push(g);
                } else if name.ends_with(".prov.ttl") {
                    let (g, _) = parse_turtle(&content).map_err(|e| parse_error(&path, e))?;
                    let mut ds = Dataset::new();
                    *ds.default_graph_mut() = g;
                    out.traces.push(LoadedTrace {
                        run_id: name.trim_end_matches(".prov.ttl").to_owned(),
                        system,
                        template_name: template_name.clone(),
                        dataset: ds,
                    });
                } else if name.ends_with(".prov.trig") {
                    let (ds, _) = parse_trig(&content).map_err(|e| parse_error(&path, e))?;
                    out.traces.push(LoadedTrace {
                        run_id: name.trim_end_matches(".prov.trig").to_owned(),
                        system,
                        template_name: template_name.clone(),
                        dataset: ds,
                    });
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CorpusSpec;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("provbench-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_corpus() -> Corpus {
        // Include a Wings workflow: workflow #68+ are Wings in catalog
        // order, too deep for a small corpus — so take enough templates.
        let spec = CorpusSpec {
            max_workflows: Some(70),
            total_runs: 72,
            failed_runs: 3,
            ..CorpusSpec::default()
        };
        Corpus::generate(&spec)
    }

    #[test]
    fn save_load_roundtrip() {
        let corpus = small_corpus();
        let dir = tmpdir("roundtrip");
        let saved = save(&corpus, &dir).unwrap();
        // manifest + void.ttl + 70 descriptions + 72 traces.
        assert_eq!(saved.files, 2 + 70 + 72);
        assert!(saved.bytes > 0);

        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.traces.len(), 72);
        assert_eq!(loaded.descriptions.len(), 70);
        // Each loaded trace must match its in-memory counterpart exactly.
        for lt in &loaded.traces {
            let original = corpus
                .traces
                .iter()
                .find(|t| t.run_id == lt.run_id)
                .unwrap_or_else(|| panic!("unknown run {}", lt.run_id));
            assert_eq!(lt.system, original.system);
            assert_eq!(lt.dataset, original.dataset, "mismatch for {}", lt.run_id);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wings_traces_are_trig_with_bundles() {
        let corpus = small_corpus();
        let wings_trace = corpus
            .traces
            .iter()
            .find(|t| t.system == System::Wings)
            .expect("a Wings trace in the corpus");
        let serialized = serialize_trace(wings_trace);
        assert!(serialized.contains('{'), "TriG graph block expected");
        assert_eq!(trace_extension(System::Wings), "prov.trig");
        assert_eq!(trace_extension(System::Taverna), "prov.ttl");
    }

    #[test]
    fn nquads_export_roundtrips() {
        let corpus = small_corpus();
        let nq = export_nquads(&corpus);
        let ds = provbench_rdf::parse_nquads(&nq).unwrap();
        assert_eq!(ds, corpus.combined_dataset());
    }

    #[test]
    fn load_missing_dir_is_empty() {
        let loaded = load(Path::new("/nonexistent/provbench")).unwrap();
        assert!(loaded.traces.is_empty());
    }

    #[test]
    fn combined_dataset_from_disk_matches_memory() {
        let corpus = small_corpus();
        let dir = tmpdir("combined");
        save(&corpus, &dir).unwrap();
        let loaded = load(&dir).unwrap();
        let mem = corpus.combined_dataset();
        let disk = loaded.combined_dataset();
        assert_eq!(mem.len(), disk.len());
        assert_eq!(mem.default_graph(), disk.default_graph());
        fs::remove_dir_all(&dir).unwrap();
    }
}
