//! The corpus on disk: one RDF file per run plus one description per
//! workflow, mirroring the layout of the published Wf4Ever-PROV corpus
//! repository (a directory per system, a directory per workflow).

use crate::generate::{Corpus, TraceRecord};
use crate::snapshot::{self, SNAPSHOT_FILE, VERSION};
use provbench_rdf::{
    parse_trig, parse_turtle, write_trig, write_turtle, Dataset, Graph, PrefixMap,
};
use provbench_workflow::System;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Serialize one trace in its system's native format: Turtle for Taverna
/// (flat graph), TriG for Wings (account bundle as a named graph).
pub fn serialize_trace(trace: &TraceRecord) -> String {
    let prefixes = PrefixMap::common();
    match trace.system {
        System::Taverna => write_turtle(trace.dataset.default_graph(), &prefixes),
        System::Wings => write_trig(&trace.dataset, &prefixes),
    }
}

/// File extension for a trace of the given system.
pub fn trace_extension(system: System) -> &'static str {
    match system {
        System::Taverna => "prov.ttl",
        System::Wings => "prov.trig",
    }
}

/// Serialize a workflow-description graph (always Turtle).
pub fn serialize_description(description: &Graph) -> String {
    write_turtle(description, &PrefixMap::common())
}

/// Description file name for the given system.
pub fn description_file(system: System) -> &'static str {
    match system {
        System::Taverna => "workflow.wfdesc.ttl",
        System::Wings => "workflow.opmw.ttl",
    }
}

/// Export the entire corpus (descriptions + every trace) as a single
/// N-Quads stream — one file for bulk interchange, complementing the
/// per-run Turtle/TriG layout.
pub fn export_nquads(corpus: &Corpus) -> String {
    provbench_rdf::write_nquads(&corpus.combined_dataset())
}

/// Summary of a completed save.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SavedCorpus {
    /// Number of files written.
    pub files: usize,
    /// Total bytes written.
    pub bytes: u64,
}

/// Write the corpus under `dir` (created if absent).
pub fn save(corpus: &Corpus, dir: &Path) -> io::Result<SavedCorpus> {
    let mut files = 0usize;
    let mut bytes = 0u64;
    let mut write = |path: PathBuf, content: String| -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        bytes += content.len() as u64;
        files += 1;
        fs::write(path, content)
    };

    // Manifest: one line per run.
    let mut manifest = String::from("# run_id\tsystem\ttemplate\tdomain\trun_number\tstatus\n");
    for t in &corpus.traces {
        manifest.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\n",
            t.run_id,
            t.system.name(),
            t.template_name,
            t.domain,
            t.run_number,
            if t.failed() { "FAILED" } else { "OK" }
        ));
    }
    write(dir.join("manifest.tsv"), manifest)?;

    // The dataset's VoID description (Table 1 as RDF).
    let stats = crate::stats::CorpusStats::compute(corpus);
    let mut prefixes = PrefixMap::common();
    prefixes.insert("void", "http://rdfs.org/ns/void#");
    write(
        dir.join("void.ttl"),
        write_turtle(&crate::stats::void_description(&stats), &prefixes),
    )?;

    for ((system, template), description) in corpus.templates.iter().zip(&corpus.descriptions) {
        let sysdir = dir
            .join(system.name().to_ascii_lowercase())
            .join(&template.name);
        write(
            sysdir.join(description_file(*system)),
            serialize_description(description),
        )?;
    }
    for trace in &corpus.traces {
        let sysdir = dir
            .join(trace.system.name().to_ascii_lowercase())
            .join(&trace.template_name);
        let file = format!("{}.{}", trace.run_id, trace_extension(trace.system));
        write(sysdir.join(file), serialize_trace(trace))?;
    }
    Ok(SavedCorpus { files, bytes })
}

/// One trace loaded back from disk.
#[derive(Clone, Debug)]
pub struct LoadedTrace {
    /// Run id (file stem).
    pub run_id: String,
    /// Producing system (from the directory layout).
    pub system: System,
    /// Template name (from the directory layout).
    pub template_name: String,
    /// The parsed dataset.
    pub dataset: Dataset,
}

/// One workflow-description graph loaded back from disk.
#[derive(Clone, Debug)]
pub struct LoadedDescription {
    /// Producing system (from the directory layout).
    pub system: System,
    /// Template name (from the directory layout).
    pub template_name: String,
    /// The parsed description graph.
    pub graph: Graph,
}

/// A corpus loaded back from disk (RDF level only — the raw
/// [`provbench_workflow::WorkflowRun`] records exist only in memory).
#[derive(Clone, Debug, Default)]
pub struct LoadedCorpus {
    /// All traces found.
    pub traces: Vec<LoadedTrace>,
    /// All workflow descriptions found.
    pub descriptions: Vec<LoadedDescription>,
}

impl LoadedCorpus {
    /// Merge everything into one dataset (same shape as
    /// [`Corpus::combined_dataset`]).
    pub fn combined_dataset(&self) -> Dataset {
        let mut ds = Dataset::new();
        for d in &self.descriptions {
            ds.default_graph_mut().extend_from_graph(&d.graph);
        }
        for (i, t) in self.traces.iter().enumerate() {
            match t.system {
                System::Taverna => {
                    let name = provbench_rdf::Iri::new_unchecked(format!(
                        "{}graph",
                        provbench_taverna::run_base_iri(&t.run_id)
                    ));
                    ds.insert_graph(name.into(), t.dataset.default_graph());
                }
                System::Wings => ds.merge(&t.dataset),
            }
            let _ = i;
        }
        ds
    }
}

fn parse_error(path: &Path, e: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {e}", path.display()),
    )
}

/// What kind of corpus file a directory entry is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FileKind {
    Description,
    TraceTurtle,
    TraceTrig,
}

/// One RDF file discovered in a corpus directory, in deterministic walk
/// order (system, then template, then file name).
#[derive(Clone, Debug)]
struct CorpusFile {
    path: PathBuf,
    system: System,
    template_name: String,
    kind: FileKind,
}

/// Walk a corpus directory and list its RDF files without reading them.
fn collect_corpus_files(dir: &Path) -> io::Result<Vec<CorpusFile>> {
    let mut files = Vec::new();
    for system in [System::Taverna, System::Wings] {
        let sysdir = dir.join(system.name().to_ascii_lowercase());
        if !sysdir.exists() {
            continue;
        }
        let mut template_dirs: Vec<PathBuf> = fs::read_dir(&sysdir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        template_dirs.sort();
        for tdir in template_dirs {
            let template_name = tdir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_owned();
            let mut entries: Vec<PathBuf> = fs::read_dir(&tdir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_file())
                .collect();
            entries.sort();
            for path in entries {
                let name = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default();
                let kind = if name == description_file(system) {
                    FileKind::Description
                } else if name.ends_with(".prov.ttl") {
                    FileKind::TraceTurtle
                } else if name.ends_with(".prov.trig") {
                    FileKind::TraceTrig
                } else {
                    continue;
                };
                files.push(CorpusFile {
                    path,
                    system,
                    template_name: template_name.clone(),
                    kind,
                });
            }
        }
    }
    Ok(files)
}

/// Result of parsing one corpus file.
enum ParsedFile {
    Description(LoadedDescription),
    Trace(LoadedTrace),
}

fn parse_corpus_file(file: &CorpusFile) -> io::Result<ParsedFile> {
    let content = fs::read_to_string(&file.path)?;
    let name = file
        .path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or_default();
    match file.kind {
        FileKind::Description => {
            let (g, _) = parse_turtle(&content).map_err(|e| parse_error(&file.path, e))?;
            Ok(ParsedFile::Description(LoadedDescription {
                system: file.system,
                template_name: file.template_name.clone(),
                graph: g,
            }))
        }
        FileKind::TraceTurtle => {
            let (g, _) = parse_turtle(&content).map_err(|e| parse_error(&file.path, e))?;
            let mut ds = Dataset::new();
            *ds.default_graph_mut() = g;
            Ok(ParsedFile::Trace(LoadedTrace {
                run_id: name.trim_end_matches(".prov.ttl").to_owned(),
                system: file.system,
                template_name: file.template_name.clone(),
                dataset: ds,
            }))
        }
        FileKind::TraceTrig => {
            let (ds, _) = parse_trig(&content).map_err(|e| parse_error(&file.path, e))?;
            Ok(ParsedFile::Trace(LoadedTrace {
                run_id: name.trim_end_matches(".prov.trig").to_owned(),
                system: file.system,
                template_name: file.template_name.clone(),
                dataset: ds,
            }))
        }
    }
}

/// Default parser fan-out for [`load_with_threads`]: the machine's
/// available parallelism, capped — parsing is CPU-bound and the corpus
/// has ~200 files, so more workers stop paying off quickly.
pub fn default_load_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Parse a listed set of files, fanning out over `jobs` worker threads.
/// The result is independent of `jobs`: files are reassembled in listing
/// order, so parallel and sequential loads are identical.
fn parse_files(files: &[CorpusFile], jobs: usize) -> io::Result<Vec<ParsedFile>> {
    if jobs <= 1 || files.len() <= 1 {
        return files.iter().map(parse_corpus_file).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, io::Result<ParsedFile>)>> =
        Mutex::new(Vec::with_capacity(files.len()));
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(files.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(file) = files.get(i) else { break };
                let parsed = parse_corpus_file(file);
                results
                    .lock()
                    .expect("corpus parser panicked")
                    .push((i, parsed));
            });
        }
    });
    let mut results = results.into_inner().expect("corpus parser panicked");
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, r)| r).collect()
}

/// Load a corpus directory written by [`save`], sequentially.
pub fn load(dir: &Path) -> io::Result<LoadedCorpus> {
    load_with_threads(dir, 1)
}

/// Load a corpus directory written by [`save`], parsing files on `jobs`
/// worker threads. Deterministic: the result does not depend on `jobs`.
pub fn load_with_threads(dir: &Path, jobs: usize) -> io::Result<LoadedCorpus> {
    let files = collect_corpus_files(dir)?;
    let mut out = LoadedCorpus::default();
    for parsed in parse_files(&files, jobs)? {
        match parsed {
            ParsedFile::Description(d) => out.descriptions.push(d),
            ParsedFile::Trace(t) => out.traces.push(t),
        }
    }
    Ok(out)
}

/// How a [`CorpusStore`] came to hold its data.
#[derive(Clone, Debug)]
pub struct SnapshotProvenance {
    /// Path of the snapshot file (existing or just written).
    pub path: PathBuf,
    /// `true` when the corpus was memory-loaded from a valid snapshot;
    /// `false` when it was (re)parsed from the RDF sources.
    pub warm: bool,
    /// Snapshot format version in play.
    pub version: u16,
    /// Size of the snapshot file in bytes (0 if it could not be written).
    pub snapshot_bytes: u64,
    /// Number of RDF source files in the corpus directory.
    pub source_files: u64,
    /// Total size of those source files in bytes.
    pub source_bytes: u64,
    /// When `warm` is `false` and a snapshot file existed, why it was
    /// not used.
    pub rebuild_reason: Option<String>,
}

/// A corpus opened through the snapshot cache: the loaded RDF plus the
/// pre-merged union graph the query engine, endpoint and linter run on.
#[derive(Debug)]
pub struct CorpusStore {
    /// The loaded corpus (traces + descriptions).
    pub corpus: LoadedCorpus,
    /// Union of every graph in the corpus.
    pub union: Graph,
    /// Where the data came from (warm snapshot vs cold parse).
    pub provenance: SnapshotProvenance,
}

impl CorpusStore {
    /// Open `dir` through its snapshot if possible, else parse the RDF
    /// sources on [`default_load_jobs`] threads and write a fresh
    /// snapshot for next time.
    ///
    /// A snapshot is used only when it decodes cleanly (magic, version,
    /// checksum and structural validation) *and* its recorded source
    /// fingerprint still matches the directory; otherwise the store
    /// falls back to a clean rebuild — corruption can cost time, never
    /// correctness.
    pub fn open_or_build(dir: &Path) -> io::Result<CorpusStore> {
        CorpusStore::open_or_build_with_threads(dir, default_load_jobs())
    }

    /// [`CorpusStore::open_or_build`] with an explicit parser fan-out.
    pub fn open_or_build_with_threads(dir: &Path, jobs: usize) -> io::Result<CorpusStore> {
        let files = collect_corpus_files(dir)?;
        let source_files = files.len() as u64;
        let source_bytes = files
            .iter()
            .map(|f| fs::metadata(&f.path).map(|m| m.len()).unwrap_or(0))
            .sum::<u64>();
        let path = dir.join(SNAPSHOT_FILE);

        let mut rebuild_reason = None;
        match fs::read(&path) {
            Ok(bytes) => match snapshot::decode(&bytes) {
                Ok(decoded)
                    if decoded.source_files == source_files
                        && decoded.source_bytes == source_bytes =>
                {
                    return Ok(CorpusStore {
                        corpus: decoded.corpus,
                        union: decoded.union,
                        provenance: SnapshotProvenance {
                            path,
                            warm: true,
                            version: VERSION,
                            snapshot_bytes: bytes.len() as u64,
                            source_files,
                            source_bytes,
                            rebuild_reason: None,
                        },
                    });
                }
                Ok(decoded) => {
                    rebuild_reason = Some(format!(
                        "source tree changed: snapshot saw {} files / {} bytes, \
                         directory has {} files / {} bytes",
                        decoded.source_files, decoded.source_bytes, source_files, source_bytes
                    ));
                }
                Err(e) => rebuild_reason = Some(e.to_string()),
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => rebuild_reason = Some(format!("unreadable snapshot: {e}")),
        }

        CorpusStore::build_from_files(dir, &files, jobs, rebuild_reason)
    }

    /// Parse the RDF sources unconditionally and (re)write the snapshot.
    /// Used by `provbench snapshot build`.
    pub fn build(dir: &Path, jobs: usize) -> io::Result<CorpusStore> {
        let files = collect_corpus_files(dir)?;
        CorpusStore::build_from_files(dir, &files, jobs, None)
    }

    fn build_from_files(
        dir: &Path,
        files: &[CorpusFile],
        jobs: usize,
        rebuild_reason: Option<String>,
    ) -> io::Result<CorpusStore> {
        let source_files = files.len() as u64;
        let source_bytes = files
            .iter()
            .map(|f| fs::metadata(&f.path).map(|m| m.len()).unwrap_or(0))
            .sum::<u64>();
        let mut corpus = LoadedCorpus::default();
        for parsed in parse_files(files, jobs)? {
            match parsed {
                ParsedFile::Description(d) => corpus.descriptions.push(d),
                ParsedFile::Trace(t) => corpus.traces.push(t),
            }
        }
        let union = corpus.combined_dataset().union_graph();
        let encoded = snapshot::encode(&corpus, source_files, source_bytes);
        let path = dir.join(SNAPSHOT_FILE);
        // Best-effort: a read-only corpus still loads, it just stays cold.
        let snapshot_bytes = match fs::write(&path, &encoded) {
            Ok(()) => encoded.len() as u64,
            Err(_) => 0,
        };
        Ok(CorpusStore {
            corpus,
            union,
            provenance: SnapshotProvenance {
                path,
                warm: false,
                version: VERSION,
                snapshot_bytes,
                source_files,
                source_bytes,
                rebuild_reason,
            },
        })
    }

    /// The union graph, cloned for engines that take ownership.
    pub fn union_graph(&self) -> Graph {
        self.union.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CorpusSpec;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("provbench-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_corpus() -> Corpus {
        // Include a Wings workflow: workflow #68+ are Wings in catalog
        // order, too deep for a small corpus — so take enough templates.
        let spec = CorpusSpec {
            max_workflows: Some(70),
            total_runs: 72,
            failed_runs: 3,
            ..CorpusSpec::default()
        };
        Corpus::generate(&spec)
    }

    #[test]
    fn save_load_roundtrip() {
        let corpus = small_corpus();
        let dir = tmpdir("roundtrip");
        let saved = save(&corpus, &dir).unwrap();
        // manifest + void.ttl + 70 descriptions + 72 traces.
        assert_eq!(saved.files, 2 + 70 + 72);
        assert!(saved.bytes > 0);

        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.traces.len(), 72);
        assert_eq!(loaded.descriptions.len(), 70);
        // Each loaded trace must match its in-memory counterpart exactly.
        for lt in &loaded.traces {
            let original = corpus
                .traces
                .iter()
                .find(|t| t.run_id == lt.run_id)
                .unwrap_or_else(|| panic!("unknown run {}", lt.run_id));
            assert_eq!(lt.system, original.system);
            assert_eq!(lt.dataset, original.dataset, "mismatch for {}", lt.run_id);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wings_traces_are_trig_with_bundles() {
        let corpus = small_corpus();
        let wings_trace = corpus
            .traces
            .iter()
            .find(|t| t.system == System::Wings)
            .expect("a Wings trace in the corpus");
        let serialized = serialize_trace(wings_trace);
        assert!(serialized.contains('{'), "TriG graph block expected");
        assert_eq!(trace_extension(System::Wings), "prov.trig");
        assert_eq!(trace_extension(System::Taverna), "prov.ttl");
    }

    #[test]
    fn nquads_export_roundtrips() {
        let corpus = small_corpus();
        let nq = export_nquads(&corpus);
        let ds = provbench_rdf::parse_nquads(&nq).unwrap();
        assert_eq!(ds, corpus.combined_dataset());
    }

    #[test]
    fn load_missing_dir_is_empty() {
        let loaded = load(Path::new("/nonexistent/provbench")).unwrap();
        assert!(loaded.traces.is_empty());
    }

    #[test]
    fn parallel_load_matches_sequential() {
        let corpus = small_corpus();
        let dir = tmpdir("parallel");
        save(&corpus, &dir).unwrap();
        let seq = load_with_threads(&dir, 1).unwrap();
        let par = load_with_threads(&dir, 4).unwrap();
        assert_eq!(seq.traces.len(), par.traces.len());
        assert_eq!(seq.descriptions.len(), par.descriptions.len());
        for (a, b) in seq.traces.iter().zip(&par.traces) {
            assert_eq!(a.run_id, b.run_id);
            assert_eq!(a.system, b.system);
            assert_eq!(a.template_name, b.template_name);
            assert_eq!(a.dataset, b.dataset);
        }
        for (a, b) in seq.descriptions.iter().zip(&par.descriptions) {
            assert_eq!(a.system, b.system);
            assert_eq!(a.template_name, b.template_name);
            assert_eq!(a.graph, b.graph);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corpus_store_cold_then_warm() {
        let corpus = small_corpus();
        let dir = tmpdir("snapshot");
        save(&corpus, &dir).unwrap();

        let cold = CorpusStore::open_or_build_with_threads(&dir, 2).unwrap();
        assert!(!cold.provenance.warm);
        assert!(cold.provenance.rebuild_reason.is_none());
        assert!(cold.provenance.snapshot_bytes > 0);
        assert!(dir.join(SNAPSHOT_FILE).exists());

        let warm = CorpusStore::open_or_build_with_threads(&dir, 2).unwrap();
        assert!(warm.provenance.warm, "second open must hit the snapshot");
        assert_eq!(warm.union, cold.union);
        assert_eq!(warm.corpus.traces.len(), cold.corpus.traces.len());
        assert_eq!(
            warm.corpus.descriptions.len(),
            cold.corpus.descriptions.len()
        );
        for (a, b) in cold.corpus.traces.iter().zip(&warm.corpus.traces) {
            assert_eq!(a.run_id, b.run_id);
            assert_eq!(a.dataset, b.dataset);
        }
        assert_eq!(warm.union, corpus.combined_dataset().union_graph());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_snapshot_triggers_rebuild() {
        let corpus = small_corpus();
        let dir = tmpdir("corrupt");
        save(&corpus, &dir).unwrap();
        CorpusStore::build(&dir, 2).unwrap();

        // Flip a byte in the middle of the snapshot body.
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let store = CorpusStore::open_or_build_with_threads(&dir, 2).unwrap();
        assert!(!store.provenance.warm);
        assert!(
            store.provenance.rebuild_reason.is_some(),
            "corruption must be reported"
        );
        assert_eq!(store.union, corpus.combined_dataset().union_graph());
        // The rebuild rewrote a valid snapshot.
        let again = CorpusStore::open_or_build_with_threads(&dir, 2).unwrap();
        assert!(again.provenance.warm);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_version_snapshot_triggers_rebuild() {
        let corpus = small_corpus();
        let dir = tmpdir("stale");
        save(&corpus, &dir).unwrap();
        CorpusStore::build(&dir, 2).unwrap();

        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        bytes[6] = 0xFE;
        bytes[7] = 0xFF;
        fs::write(&path, &bytes).unwrap();

        let store = CorpusStore::open_or_build_with_threads(&dir, 2).unwrap();
        assert!(!store.provenance.warm);
        let reason = store.provenance.rebuild_reason.unwrap();
        assert!(reason.contains("version"), "got: {reason}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn changed_sources_invalidate_snapshot() {
        let corpus = small_corpus();
        let dir = tmpdir("changed");
        save(&corpus, &dir).unwrap();
        CorpusStore::build(&dir, 2).unwrap();

        // Append a triple to one trace file: same file count, new bytes.
        let files = collect_corpus_files(&dir).unwrap();
        let trace = files
            .iter()
            .find(|f| f.kind == FileKind::TraceTurtle)
            .unwrap();
        let mut content = fs::read_to_string(&trace.path).unwrap();
        content.push_str("<http://example.org/x> <http://example.org/p> \"new\" .\n");
        fs::write(&trace.path, content).unwrap();

        let store = CorpusStore::open_or_build_with_threads(&dir, 2).unwrap();
        assert!(!store.provenance.warm);
        let reason = store.provenance.rebuild_reason.unwrap();
        assert!(reason.contains("source tree changed"), "got: {reason}");
        // And the rebuilt union reflects the edit.
        let subject = provbench_rdf::Iri::new("http://example.org/x")
            .unwrap()
            .into();
        assert_eq!(
            store
                .union
                .triples_matching(Some(&subject), None, None)
                .count(),
            1
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn combined_dataset_from_disk_matches_memory() {
        let corpus = small_corpus();
        let dir = tmpdir("combined");
        save(&corpus, &dir).unwrap();
        let loaded = load(&dir).unwrap();
        let mem = corpus.combined_dataset();
        let disk = loaded.combined_dataset();
        assert_eq!(mem.len(), disk.len());
        assert_eq!(mem.default_graph(), disk.default_graph());
        fs::remove_dir_all(&dir).unwrap();
    }
}
