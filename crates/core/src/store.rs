//! The corpus on disk: one RDF file per run plus one description per
//! workflow, mirroring the layout of the published Wf4Ever-PROV corpus
//! repository (a directory per system, a directory per workflow).

use crate::fsio::{StoreFs, REAL_FS};
use crate::generate::{Corpus, TraceRecord};
use crate::ingest::{IngestError, IngestReport, INGEST_REPORT_FILE};
use crate::snapshot::{self, SNAPSHOT_FILE, VERSION};
use provbench_obs::{Registry, LATENCY_BUCKETS};
use provbench_rdf::{
    parse_trig, parse_turtle, write_trig, write_turtle, Dataset, Graph, ParseError, PrefixMap,
};
use provbench_workflow::System;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Counter of source files parsed (`result="loaded"|"quarantined"`).
const INGEST_FILES_TOTAL: &str = "provbench_ingest_files_total";
/// Histogram of per-file read+parse times.
const INGEST_FILE_SECONDS: &str = "provbench_ingest_file_seconds";
/// Counter of store opens (`mode="warm"|"cold"`).
const STORE_OPENS_TOTAL: &str = "provbench_store_opens_total";
/// Histogram of whole-open wall-clock time (`mode="warm"|"cold"`).
const STORE_OPEN_SECONDS: &str = "provbench_store_open_seconds";
/// Histogram of snapshot encode times.
const SNAPSHOT_ENCODE_SECONDS: &str = "provbench_snapshot_encode_seconds";
/// Histogram of snapshot decode times.
const SNAPSHOT_DECODE_SECONDS: &str = "provbench_snapshot_decode_seconds";

/// Temp file the snapshot is staged in before its atomic rename; a
/// crash can only ever leave a stale temp file, never a torn snapshot.
pub const SNAPSHOT_TMP: &str = "corpus.snapshot.tmp";

/// Advisory lock taken while (re)building the snapshot, so concurrent
/// `open_or_build` callers don't race duplicate rebuilds.
pub const SNAPSHOT_LOCK: &str = "corpus.snapshot.lock";

/// Serialize one trace in its system's native format: Turtle for Taverna
/// (flat graph), TriG for Wings (account bundle as a named graph).
pub fn serialize_trace(trace: &TraceRecord) -> String {
    let prefixes = PrefixMap::common();
    match trace.system {
        System::Taverna => write_turtle(trace.dataset.default_graph(), &prefixes),
        System::Wings => write_trig(&trace.dataset, &prefixes),
    }
}

/// File extension for a trace of the given system.
pub fn trace_extension(system: System) -> &'static str {
    match system {
        System::Taverna => "prov.ttl",
        System::Wings => "prov.trig",
    }
}

/// Serialize a workflow-description graph (always Turtle).
pub fn serialize_description(description: &Graph) -> String {
    write_turtle(description, &PrefixMap::common())
}

/// Description file name for the given system.
pub fn description_file(system: System) -> &'static str {
    match system {
        System::Taverna => "workflow.wfdesc.ttl",
        System::Wings => "workflow.opmw.ttl",
    }
}

/// Export the entire corpus (descriptions + every trace) as a single
/// N-Quads stream — one file for bulk interchange, complementing the
/// per-run Turtle/TriG layout.
pub fn export_nquads(corpus: &Corpus) -> String {
    provbench_rdf::write_nquads(&corpus.combined_dataset())
}

/// Summary of a completed save.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SavedCorpus {
    /// Number of files written.
    pub files: usize,
    /// Total bytes written.
    pub bytes: u64,
}

/// Write the corpus under `dir` (created if absent).
pub fn save(corpus: &Corpus, dir: &Path) -> io::Result<SavedCorpus> {
    let mut files = 0usize;
    let mut bytes = 0u64;
    let mut write = |path: PathBuf, content: String| -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        bytes += content.len() as u64;
        files += 1;
        fs::write(path, content)
    };

    // Manifest: one line per run.
    let mut manifest = String::from("# run_id\tsystem\ttemplate\tdomain\trun_number\tstatus\n");
    for t in &corpus.traces {
        manifest.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\n",
            t.run_id,
            t.system.name(),
            t.template_name,
            t.domain,
            t.run_number,
            if t.failed() { "FAILED" } else { "OK" }
        ));
    }
    write(dir.join("manifest.tsv"), manifest)?;

    // The dataset's VoID description (Table 1 as RDF).
    let stats = crate::stats::CorpusStats::compute(corpus);
    let mut prefixes = PrefixMap::common();
    prefixes.insert("void", "http://rdfs.org/ns/void#");
    write(
        dir.join("void.ttl"),
        write_turtle(&crate::stats::void_description(&stats), &prefixes),
    )?;

    for ((system, template), description) in corpus.templates.iter().zip(&corpus.descriptions) {
        let sysdir = dir
            .join(system.name().to_ascii_lowercase())
            .join(&template.name);
        write(
            sysdir.join(description_file(*system)),
            serialize_description(description),
        )?;
    }
    for trace in &corpus.traces {
        let sysdir = dir
            .join(trace.system.name().to_ascii_lowercase())
            .join(&trace.template_name);
        let file = format!("{}.{}", trace.run_id, trace_extension(trace.system));
        write(sysdir.join(file), serialize_trace(trace))?;
    }
    Ok(SavedCorpus { files, bytes })
}

/// One trace loaded back from disk.
#[derive(Clone, Debug)]
pub struct LoadedTrace {
    /// Run id (file stem).
    pub run_id: String,
    /// Producing system (from the directory layout).
    pub system: System,
    /// Template name (from the directory layout).
    pub template_name: String,
    /// The parsed dataset.
    pub dataset: Dataset,
}

/// One workflow-description graph loaded back from disk.
#[derive(Clone, Debug)]
pub struct LoadedDescription {
    /// Producing system (from the directory layout).
    pub system: System,
    /// Template name (from the directory layout).
    pub template_name: String,
    /// The parsed description graph.
    pub graph: Graph,
}

/// A corpus loaded back from disk (RDF level only — the raw
/// [`provbench_workflow::WorkflowRun`] records exist only in memory).
#[derive(Clone, Debug, Default)]
pub struct LoadedCorpus {
    /// All traces found.
    pub traces: Vec<LoadedTrace>,
    /// All workflow descriptions found.
    pub descriptions: Vec<LoadedDescription>,
}

impl LoadedCorpus {
    /// Merge everything into one dataset (same shape as
    /// [`Corpus::combined_dataset`]).
    pub fn combined_dataset(&self) -> Dataset {
        let mut ds = Dataset::new();
        for d in &self.descriptions {
            ds.default_graph_mut().extend_from_graph(&d.graph);
        }
        for (i, t) in self.traces.iter().enumerate() {
            match t.system {
                System::Taverna => {
                    let name = provbench_rdf::Iri::new_unchecked(format!(
                        "{}graph",
                        provbench_taverna::run_base_iri(&t.run_id)
                    ));
                    ds.insert_graph(name.into(), t.dataset.default_graph());
                }
                System::Wings => ds.merge(&t.dataset),
            }
            let _ = i;
        }
        ds
    }
}

/// What kind of corpus file a directory entry is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FileKind {
    Description,
    TraceTurtle,
    TraceTrig,
}

/// One RDF file discovered in a corpus directory, in deterministic walk
/// order (system, then template, then file name).
#[derive(Clone, Debug)]
struct CorpusFile {
    path: PathBuf,
    /// Path relative to the corpus directory, for reports.
    rel: String,
    system: System,
    template_name: String,
    kind: FileKind,
}

/// Walk a corpus directory and list its RDF files without reading them.
fn collect_corpus_files(dir: &Path) -> io::Result<Vec<CorpusFile>> {
    let mut files = Vec::new();
    for system in [System::Taverna, System::Wings] {
        let sysdir = dir.join(system.name().to_ascii_lowercase());
        if !sysdir.exists() {
            continue;
        }
        let mut template_dirs: Vec<PathBuf> = fs::read_dir(&sysdir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        template_dirs.sort();
        for tdir in template_dirs {
            let template_name = tdir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_owned();
            let mut entries: Vec<PathBuf> = fs::read_dir(&tdir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_file())
                .collect();
            entries.sort();
            for path in entries {
                let name = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default();
                let kind = if name == description_file(system) {
                    FileKind::Description
                } else if name.ends_with(".prov.ttl") {
                    FileKind::TraceTurtle
                } else if name.ends_with(".prov.trig") {
                    FileKind::TraceTrig
                } else {
                    continue;
                };
                let rel = path
                    .strip_prefix(dir)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .into_owned();
                files.push(CorpusFile {
                    path,
                    rel,
                    system,
                    template_name: template_name.clone(),
                    kind,
                });
            }
        }
    }
    Ok(files)
}

/// Result of parsing one corpus file.
enum ParsedFile {
    Description(LoadedDescription),
    Trace(LoadedTrace),
}

/// Wrap an I/O failure as a quarantine record.
fn io_ingest_error(file: &CorpusFile, e: &io::Error) -> IngestError {
    IngestError {
        path: file.rel.clone(),
        message: e.to_string(),
        line: None,
        column: None,
        byte_offset: None,
        io: true,
    }
}

/// Wrap a parse failure as a quarantine record, carrying line, column
/// and byte offset so the report is actionable without re-parsing.
fn parse_ingest_error(file: &CorpusFile, e: &ParseError, content: &str) -> IngestError {
    IngestError {
        path: file.rel.clone(),
        // The bare message: IngestError's Display adds the position.
        message: e.message.clone(),
        line: Some(e.line),
        column: Some(e.column),
        byte_offset: e.byte_offset_in(content).map(|o| o as u64),
        io: false,
    }
}

fn parse_corpus_file(file: &CorpusFile, fs: &dyn StoreFs) -> Result<ParsedFile, IngestError> {
    let content = fs
        .read_to_string(&file.path)
        .map_err(|e| io_ingest_error(file, &e))?;
    let name = file
        .path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or_default();
    match file.kind {
        FileKind::Description => {
            let (g, _) =
                parse_turtle(&content).map_err(|e| parse_ingest_error(file, &e, &content))?;
            Ok(ParsedFile::Description(LoadedDescription {
                system: file.system,
                template_name: file.template_name.clone(),
                graph: g,
            }))
        }
        FileKind::TraceTurtle => {
            let (g, _) =
                parse_turtle(&content).map_err(|e| parse_ingest_error(file, &e, &content))?;
            let mut ds = Dataset::new();
            *ds.default_graph_mut() = g;
            Ok(ParsedFile::Trace(LoadedTrace {
                run_id: name.trim_end_matches(".prov.ttl").to_owned(),
                system: file.system,
                template_name: file.template_name.clone(),
                dataset: ds,
            }))
        }
        FileKind::TraceTrig => {
            let (ds, _) =
                parse_trig(&content).map_err(|e| parse_ingest_error(file, &e, &content))?;
            Ok(ParsedFile::Trace(LoadedTrace {
                run_id: name.trim_end_matches(".prov.trig").to_owned(),
                system: file.system,
                template_name: file.template_name.clone(),
                dataset: ds,
            }))
        }
    }
}

/// Default parser fan-out for [`load_with_threads`]: the machine's
/// available parallelism, capped — parsing is CPU-bound and the corpus
/// has ~200 files, so more workers stop paying off quickly.
pub fn default_load_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// [`parse_corpus_file`] with its latency and outcome recorded.
fn parse_corpus_file_timed(
    file: &CorpusFile,
    fs: &dyn StoreFs,
    metrics: &Registry,
) -> Result<ParsedFile, IngestError> {
    let start = Instant::now();
    let result = parse_corpus_file(file, fs);
    metrics
        .histogram(
            INGEST_FILE_SECONDS,
            "Per-file corpus read+parse time",
            LATENCY_BUCKETS,
        )
        .observe_duration(start.elapsed());
    let outcome = if result.is_ok() {
        "loaded"
    } else {
        "quarantined"
    };
    metrics
        .counter_with(
            INGEST_FILES_TOTAL,
            "Corpus source files parsed, by outcome",
            &[("result", outcome)],
        )
        .inc();
    result
}

/// Parse a listed set of files, fanning out over `jobs` worker threads.
/// Files that fail to read or parse are quarantined, never fatal: the
/// good files come back in listing order (so parallel and sequential
/// loads are identical) alongside the quarantine records.
fn parse_files(
    files: &[CorpusFile],
    jobs: usize,
    fs: &dyn StoreFs,
    metrics: &Registry,
) -> (Vec<ParsedFile>, Vec<IngestError>) {
    let results: Vec<Result<ParsedFile, IngestError>> = if jobs <= 1 || files.len() <= 1 {
        files
            .iter()
            .map(|f| parse_corpus_file_timed(f, fs, metrics))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<(usize, Result<ParsedFile, IngestError>)>> =
            Mutex::new(Vec::with_capacity(files.len()));
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(files.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(file) = files.get(i) else { break };
                    let parsed = parse_corpus_file_timed(file, fs, metrics);
                    slots
                        .lock()
                        .expect("corpus parser panicked")
                        .push((i, parsed));
                });
            }
        });
        let mut slots = slots.into_inner().expect("corpus parser panicked");
        slots.sort_by_key(|(i, _)| *i);
        slots.into_iter().map(|(_, r)| r).collect()
    };
    let mut parsed = Vec::with_capacity(files.len());
    let mut errors = Vec::new();
    for r in results {
        match r {
            Ok(p) => parsed.push(p),
            Err(e) => errors.push(e),
        }
    }
    (parsed, errors)
}

/// A corpus loaded from disk together with its quarantine report.
#[derive(Clone, Debug, Default)]
pub struct LoadOutcome {
    /// The successfully parsed part of the corpus.
    pub corpus: LoadedCorpus,
    /// Which files were attempted and which were quarantined.
    pub report: IngestReport,
}

/// Load a corpus directory written by [`save`], sequentially and
/// strictly: the first unreadable or malformed file aborts the load.
/// Use [`load_with_threads`] for the quarantining loader.
pub fn load(dir: &Path) -> io::Result<LoadedCorpus> {
    let outcome = load_with_threads(dir, 1)?;
    match outcome.report.errors.into_iter().next() {
        None => Ok(outcome.corpus),
        Some(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}

/// Load a corpus directory written by [`save`], parsing files on `jobs`
/// worker threads. Deterministic: the result does not depend on `jobs`.
/// Files that fail to read or parse are quarantined into the outcome's
/// [`IngestReport`] rather than aborting the load.
pub fn load_with_threads(dir: &Path, jobs: usize) -> io::Result<LoadOutcome> {
    let files = collect_corpus_files(dir)?;
    let (parsed, errors) = parse_files(&files, jobs, &REAL_FS, provbench_obs::global());
    let mut corpus = LoadedCorpus::default();
    for p in parsed {
        match p {
            ParsedFile::Description(d) => corpus.descriptions.push(d),
            ParsedFile::Trace(t) => corpus.traces.push(t),
        }
    }
    Ok(LoadOutcome {
        corpus,
        report: IngestReport {
            attempted: files.len(),
            errors,
        },
    })
}

/// How a [`CorpusStore`] came to hold its data.
#[derive(Clone, Debug)]
pub struct SnapshotProvenance {
    /// Path of the snapshot file (existing or just written).
    pub path: PathBuf,
    /// `true` when the corpus was memory-loaded from a valid snapshot;
    /// `false` when it was (re)parsed from the RDF sources.
    pub warm: bool,
    /// Snapshot format version in play.
    pub version: u16,
    /// Size of the snapshot file in bytes (0 if it could not be written).
    pub snapshot_bytes: u64,
    /// Number of RDF source files in the corpus directory.
    pub source_files: u64,
    /// Total size of those source files in bytes.
    pub source_bytes: u64,
    /// When `warm` is `false` and a snapshot file existed, why it was
    /// not used.
    pub rebuild_reason: Option<String>,
}

/// A corpus opened through the snapshot cache: the loaded RDF plus the
/// pre-merged union graph the query engine, endpoint and linter run on.
#[derive(Debug)]
pub struct CorpusStore {
    /// The loaded corpus (traces + descriptions).
    pub corpus: LoadedCorpus,
    /// Union of every graph in the corpus.
    pub union: Graph,
    /// Where the data came from (warm snapshot vs cold parse).
    pub provenance: SnapshotProvenance,
    /// Quarantine report: which source files failed to load. On a warm
    /// open this is the report persisted by the build that wrote the
    /// snapshot; empty when every file loaded.
    pub ingest: IngestReport,
}

/// Knobs for opening or building a [`CorpusStore`].
pub struct StoreOptions<'fs> {
    /// Parser fan-out (worker threads).
    pub jobs: usize,
    /// `true` restores fail-fast ingestion: the first unreadable or
    /// malformed source file aborts the open instead of being
    /// quarantined.
    pub strict: bool,
    /// How long to wait on another process's build lock before assuming
    /// it is stale, stealing it, and building anyway.
    pub lock_timeout: Duration,
    /// The filesystem to operate on — [`REAL_FS`] in production, a
    /// fault-injecting shim in the chaos tests.
    pub fs: &'fs dyn StoreFs,
    /// Registry ingest/snapshot/open metrics are recorded into. The
    /// process-wide [`provbench_obs::global`] one by default; tests
    /// that assert on counts thread their own.
    pub metrics: Arc<Registry>,
}

impl Default for StoreOptions<'static> {
    fn default() -> Self {
        StoreOptions {
            jobs: default_load_jobs(),
            strict: false,
            lock_timeout: Duration::from_secs(10),
            fs: &REAL_FS,
            metrics: Arc::clone(provbench_obs::global()),
        }
    }
}

/// Current source-tree fingerprint of a corpus directory (file count +
/// total byte size), as compared against the snapshot's recorded one.
/// Used by the endpoint's staleness watcher.
pub fn source_fingerprint(dir: &Path) -> io::Result<(u64, u64)> {
    let files = collect_corpus_files(dir)?;
    Ok(fingerprint_of(&files, &REAL_FS))
}

fn fingerprint_of(files: &[CorpusFile], fs: &dyn StoreFs) -> (u64, u64) {
    let bytes = files
        .iter()
        .map(|f| fs.file_len(&f.path).unwrap_or(0))
        .sum::<u64>();
    (files.len() as u64, bytes)
}

/// Per-file `(relative path, byte size)` manifest, sorted by path —
/// persisted in the snapshot so a stale-snapshot rebuild can say *which*
/// files changed rather than just "something did".
fn manifest_of(files: &[CorpusFile], fs: &dyn StoreFs) -> Vec<(String, u64)> {
    let mut manifest: Vec<(String, u64)> = files
        .iter()
        .map(|f| (f.rel.clone(), fs.file_len(&f.path).unwrap_or(0)))
        .collect();
    manifest.sort();
    manifest
}

/// Human-readable diff of two manifests: up to three changed/added/
/// removed paths, plus a remainder count. Empty when either side has no
/// manifest to compare (e.g. an in-memory snapshot).
fn manifest_diff(old: &[(String, u64)], new: &[(String, u64)]) -> String {
    if old.is_empty() && new.is_empty() {
        return String::new();
    }
    let old_map: BTreeMap<&str, u64> = old.iter().map(|(p, s)| (p.as_str(), *s)).collect();
    let new_map: BTreeMap<&str, u64> = new.iter().map(|(p, s)| (p.as_str(), *s)).collect();
    let mut changes: Vec<String> = Vec::new();
    for (path, size) in &new_map {
        match old_map.get(path) {
            None => changes.push(format!("added {path}")),
            Some(old_size) if old_size != size => changes.push(format!("changed {path}")),
            Some(_) => {}
        }
    }
    for path in old_map.keys() {
        if !new_map.contains_key(path) {
            changes.push(format!("removed {path}"));
        }
    }
    if changes.is_empty() {
        return String::new();
    }
    let shown = changes
        .iter()
        .take(3)
        .cloned()
        .collect::<Vec<_>>()
        .join(", ");
    if changes.len() > 3 {
        format!(" ({shown}, and {} more)", changes.len() - 3)
    } else {
        format!(" ({shown})")
    }
}

/// Held while (re)building a snapshot; removes the lock file on drop.
struct BuildLock<'fs> {
    fs: &'fs dyn StoreFs,
    path: PathBuf,
}

impl Drop for BuildLock<'_> {
    fn drop(&mut self) {
        let _ = self.fs.remove_file(&self.path);
    }
}

/// Temp path the quarantine report is staged in before its rename.
const INGEST_REPORT_TMP: &str = "corpus.ingest-report.tmp";

/// Take the build lock, waiting with backoff and stealing it after the
/// timeout. `None` when the filesystem refuses lock operations — the
/// lock is advisory, so the build proceeds unlocked rather than failing.
fn acquire_lock<'fs>(dir: &Path, opts: &StoreOptions<'fs>) -> Option<BuildLock<'fs>> {
    let path = dir.join(SNAPSHOT_LOCK);
    let deadline = Instant::now() + opts.lock_timeout;
    let mut backoff = Duration::from_millis(5);
    let mut stole = false;
    loop {
        match opts.fs.create_lock(&path) {
            Ok(()) => return Some(BuildLock { fs: opts.fs, path }),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists && !stole => {
                if Instant::now() >= deadline {
                    let _ = opts.fs.remove_file(&path);
                    stole = true;
                    continue;
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(100));
            }
            Err(_) => return None,
        }
    }
}

/// Crash-safe publish: write everything to `tmp` (fsynced by the
/// [`StoreFs`] contract), then atomically rename over `dest`. A crash or
/// fault at any point leaves either the old `dest` or litter at `tmp` —
/// never a torn `dest` (and a torn `dest` from a non-atomic filesystem
/// is caught by snapshot/report validation on the next open).
fn write_atomic(fs: &dyn StoreFs, tmp: &Path, dest: &Path, bytes: &[u8]) -> io::Result<()> {
    let result = fs.write(tmp, bytes).and_then(|()| fs.rename(tmp, dest));
    if result.is_err() {
        let _ = fs.remove_file(tmp);
    }
    result
}

/// Read the persisted quarantine report, if any. Unreadable or torn
/// reports count as absent — they must never block a load.
fn load_persisted_report(dir: &Path, fs: &dyn StoreFs) -> IngestReport {
    fs.read_to_string(&dir.join(INGEST_REPORT_FILE))
        .ok()
        .and_then(|text| IngestReport::from_tsv(&text))
        .unwrap_or_default()
}

impl CorpusStore {
    /// Open `dir` through its snapshot if possible, else parse the RDF
    /// sources on [`default_load_jobs`] threads and write a fresh
    /// snapshot for next time.
    ///
    /// A snapshot is used only when it decodes cleanly (magic, version,
    /// checksum and structural validation) *and* its recorded source
    /// fingerprint still matches the directory; otherwise the store
    /// falls back to a clean rebuild — corruption can cost time, never
    /// correctness. Source files that fail to read or parse are
    /// quarantined (see [`StoreOptions::strict`] to fail fast instead).
    pub fn open_or_build(dir: &Path) -> io::Result<CorpusStore> {
        CorpusStore::open_or_build_opts(dir, &StoreOptions::default())
    }

    /// [`CorpusStore::open_or_build`] with an explicit parser fan-out.
    pub fn open_or_build_with_threads(dir: &Path, jobs: usize) -> io::Result<CorpusStore> {
        CorpusStore::open_or_build_opts(
            dir,
            &StoreOptions {
                jobs,
                ..StoreOptions::default()
            },
        )
    }

    /// [`CorpusStore::open_or_build`] with full control over fan-out,
    /// strictness, lock behavior and the filesystem.
    pub fn open_or_build_opts(dir: &Path, opts: &StoreOptions<'_>) -> io::Result<CorpusStore> {
        let _span = opts.metrics.span("store.open");
        let start = Instant::now();
        let result = CorpusStore::open_or_build_inner(dir, opts);
        if let Ok(store) = &result {
            let mode = if store.provenance.warm {
                "warm"
            } else {
                "cold"
            };
            opts.metrics
                .counter_with(
                    STORE_OPENS_TOTAL,
                    "Corpus store opens, by mode",
                    &[("mode", mode)],
                )
                .inc();
            opts.metrics
                .histogram_with(
                    STORE_OPEN_SECONDS,
                    "Whole store-open wall-clock time, by mode",
                    LATENCY_BUCKETS,
                    &[("mode", mode)],
                )
                .observe_duration(start.elapsed());
        }
        result
    }

    fn open_or_build_inner(dir: &Path, opts: &StoreOptions<'_>) -> io::Result<CorpusStore> {
        let files = collect_corpus_files(dir)?;
        let fingerprint = fingerprint_of(&files, opts.fs);

        // Stale temp files are litter from a crashed build; sweep them
        // before they can be mistaken for anything.
        let _ = opts.fs.remove_file(&dir.join(SNAPSHOT_TMP));
        let _ = opts.fs.remove_file(&dir.join(INGEST_REPORT_TMP));

        let mut rebuild_reason = match CorpusStore::try_warm(dir, &files, fingerprint, opts) {
            Ok(store) => return store.check_strict(opts),
            Err(reason) => reason,
        };

        // Cold: coordinate with concurrent builders through the advisory
        // lock. One caller builds; the others wait (with backoff) for the
        // snapshot it publishes, stealing the lock only after
        // `lock_timeout` (a crashed builder leaves its lock behind).
        let lock_path = dir.join(SNAPSHOT_LOCK);
        let deadline = Instant::now() + opts.lock_timeout;
        let mut backoff = Duration::from_millis(5);
        let mut stole = false;
        let lock = loop {
            match opts.fs.create_lock(&lock_path) {
                Ok(()) => {
                    break Some(BuildLock {
                        fs: opts.fs,
                        path: lock_path,
                    })
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists && !stole => {
                    if Instant::now() >= deadline {
                        // Assume the holder crashed; steal its lock.
                        let _ = opts.fs.remove_file(&lock_path);
                        stole = true;
                        continue;
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(100));
                    // The holder may have published a snapshot meanwhile.
                    match CorpusStore::try_warm(dir, &files, fingerprint, opts) {
                        Ok(store) => return store.check_strict(opts),
                        Err(reason) => rebuild_reason = reason,
                    }
                }
                // The lock is advisory; a filesystem fault here (or a
                // failed steal) must degrade to an unlocked build, never
                // block loading.
                Err(_) => break None,
            }
        };
        // Double-checked: a builder we raced may have published between
        // our last warm attempt and acquiring the lock.
        if lock.is_some() {
            if let Ok(store) = CorpusStore::try_warm(dir, &files, fingerprint, opts) {
                return store.check_strict(opts);
            }
        }
        let store = CorpusStore::build_from_files(dir, &files, opts, rebuild_reason);
        drop(lock);
        store
    }

    /// Attempt a warm load: snapshot present, decodes cleanly, and its
    /// recorded source fingerprint matches the directory. On failure the
    /// `Err` carries the rebuild reason (`None` = no snapshot yet).
    fn try_warm(
        dir: &Path,
        files: &[CorpusFile],
        (source_files, source_bytes): (u64, u64),
        opts: &StoreOptions<'_>,
    ) -> Result<CorpusStore, Option<String>> {
        let path = dir.join(SNAPSHOT_FILE);
        let bytes = match opts.fs.read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(None),
            Err(e) => return Err(Some(format!("unreadable snapshot: {e}"))),
        };
        let decode_start = Instant::now();
        let decoded = snapshot::decode(&bytes);
        opts.metrics
            .histogram(
                SNAPSHOT_DECODE_SECONDS,
                "Binary snapshot decode time",
                LATENCY_BUCKETS,
            )
            .observe_duration(decode_start.elapsed());
        match decoded {
            Ok(decoded)
                if decoded.source_files == source_files && decoded.source_bytes == source_bytes =>
            {
                Ok(CorpusStore {
                    corpus: decoded.corpus,
                    union: decoded.union,
                    provenance: SnapshotProvenance {
                        path,
                        warm: true,
                        version: VERSION,
                        snapshot_bytes: bytes.len() as u64,
                        source_files,
                        source_bytes,
                        rebuild_reason: None,
                    },
                    ingest: {
                        // No persisted report = the build was clean; its
                        // attempt count is the source file count.
                        let mut report = load_persisted_report(dir, opts.fs);
                        if report.attempted == 0 && report.errors.is_empty() {
                            report.attempted = source_files as usize;
                        }
                        report
                    },
                })
            }
            Ok(decoded) => Err(Some(format!(
                "source tree changed: snapshot saw {} files / {} bytes, \
                 directory has {} files / {} bytes{}",
                decoded.source_files,
                decoded.source_bytes,
                source_files,
                source_bytes,
                manifest_diff(&decoded.manifest, &manifest_of(files, opts.fs)),
            ))),
            Err(e) => Err(Some(e.to_string())),
        }
    }

    /// Enforce [`StoreOptions::strict`]: any quarantined file aborts the
    /// open with the first casualty's full position in the message.
    fn check_strict(self, opts: &StoreOptions<'_>) -> io::Result<CorpusStore> {
        if opts.strict {
            if let Some(first) = self.ingest.errors.first() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("strict ingestion: {first} ({})", self.ingest),
                ));
            }
        }
        Ok(self)
    }

    /// Parse the RDF sources unconditionally and (re)write the snapshot.
    /// Used by `provbench snapshot build`.
    pub fn build(dir: &Path, jobs: usize) -> io::Result<CorpusStore> {
        CorpusStore::build_opts(
            dir,
            &StoreOptions {
                jobs,
                ..StoreOptions::default()
            },
        )
    }

    /// [`CorpusStore::build`] with full options.
    pub fn build_opts(dir: &Path, opts: &StoreOptions<'_>) -> io::Result<CorpusStore> {
        let files = collect_corpus_files(dir)?;
        let lock = acquire_lock(dir, opts);
        let store = CorpusStore::build_from_files(dir, &files, opts, None);
        drop(lock);
        store
    }

    fn build_from_files(
        dir: &Path,
        files: &[CorpusFile],
        opts: &StoreOptions<'_>,
        rebuild_reason: Option<String>,
    ) -> io::Result<CorpusStore> {
        let (source_files, source_bytes) = fingerprint_of(files, opts.fs);
        let (parsed, errors) = parse_files(files, opts.jobs, opts.fs, &opts.metrics);
        let report = IngestReport {
            attempted: files.len(),
            errors,
        };
        let mut corpus = LoadedCorpus::default();
        for p in parsed {
            match p {
                ParsedFile::Description(d) => corpus.descriptions.push(d),
                ParsedFile::Trace(t) => corpus.traces.push(t),
            }
        }
        let union = corpus.combined_dataset().union_graph();
        let store = CorpusStore {
            corpus,
            union,
            provenance: SnapshotProvenance {
                path: dir.join(SNAPSHOT_FILE),
                warm: false,
                version: VERSION,
                snapshot_bytes: 0,
                source_files,
                source_bytes,
                rebuild_reason,
            },
            ingest: report,
        }
        .check_strict(opts)?;

        // Publish the quarantine report BEFORE the snapshot: a snapshot
        // may only go live once the quarantine state next to it is
        // accurate, otherwise a later warm load would silently present a
        // partial corpus as complete. All of this is best-effort — a
        // read-only corpus still loads, it just stays cold.
        let report_path = dir.join(INGEST_REPORT_FILE);
        let report_published = if store.ingest.is_clean() {
            match opts.fs.remove_file(&report_path) {
                Ok(()) => true,
                Err(e) => e.kind() == io::ErrorKind::NotFound,
            }
        } else {
            write_atomic(
                opts.fs,
                &dir.join(INGEST_REPORT_TMP),
                &report_path,
                store.ingest.to_tsv().as_bytes(),
            )
            .is_ok()
        };
        let mut store = store;
        if report_published {
            let encode_start = Instant::now();
            let encoded = snapshot::encode(
                &store.corpus,
                source_files,
                source_bytes,
                &manifest_of(files, opts.fs),
            );
            opts.metrics
                .histogram(
                    SNAPSHOT_ENCODE_SECONDS,
                    "Binary snapshot encode time",
                    LATENCY_BUCKETS,
                )
                .observe_duration(encode_start.elapsed());
            let tmp = dir.join(SNAPSHOT_TMP);
            if write_atomic(opts.fs, &tmp, &store.provenance.path, &encoded).is_ok() {
                store.provenance.snapshot_bytes = encoded.len() as u64;
            }
        }
        Ok(store)
    }

    /// The union graph, cloned for engines that take ownership.
    pub fn union_graph(&self) -> Graph {
        self.union.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CorpusSpec;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("provbench-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_corpus() -> Corpus {
        // Include a Wings workflow: workflow #68+ are Wings in catalog
        // order, too deep for a small corpus — so take enough templates.
        let spec = CorpusSpec {
            max_workflows: Some(70),
            total_runs: 72,
            failed_runs: 3,
            ..CorpusSpec::default()
        };
        Corpus::generate(&spec)
    }

    #[test]
    fn save_load_roundtrip() {
        let corpus = small_corpus();
        let dir = tmpdir("roundtrip");
        let saved = save(&corpus, &dir).unwrap();
        // manifest + void.ttl + 70 descriptions + 72 traces.
        assert_eq!(saved.files, 2 + 70 + 72);
        assert!(saved.bytes > 0);

        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.traces.len(), 72);
        assert_eq!(loaded.descriptions.len(), 70);
        // Each loaded trace must match its in-memory counterpart exactly.
        for lt in &loaded.traces {
            let original = corpus
                .traces
                .iter()
                .find(|t| t.run_id == lt.run_id)
                .unwrap_or_else(|| panic!("unknown run {}", lt.run_id));
            assert_eq!(lt.system, original.system);
            assert_eq!(lt.dataset, original.dataset, "mismatch for {}", lt.run_id);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wings_traces_are_trig_with_bundles() {
        let corpus = small_corpus();
        let wings_trace = corpus
            .traces
            .iter()
            .find(|t| t.system == System::Wings)
            .expect("a Wings trace in the corpus");
        let serialized = serialize_trace(wings_trace);
        assert!(serialized.contains('{'), "TriG graph block expected");
        assert_eq!(trace_extension(System::Wings), "prov.trig");
        assert_eq!(trace_extension(System::Taverna), "prov.ttl");
    }

    #[test]
    fn nquads_export_roundtrips() {
        let corpus = small_corpus();
        let nq = export_nquads(&corpus);
        let ds = provbench_rdf::parse_nquads(&nq).unwrap();
        assert_eq!(ds, corpus.combined_dataset());
    }

    #[test]
    fn load_missing_dir_is_empty() {
        let loaded = load(Path::new("/nonexistent/provbench")).unwrap();
        assert!(loaded.traces.is_empty());
    }

    #[test]
    fn parallel_load_matches_sequential() {
        let corpus = small_corpus();
        let dir = tmpdir("parallel");
        save(&corpus, &dir).unwrap();
        let seq_out = load_with_threads(&dir, 1).unwrap();
        let par_out = load_with_threads(&dir, 4).unwrap();
        assert!(seq_out.report.is_clean() && par_out.report.is_clean());
        assert_eq!(seq_out.report.attempted, par_out.report.attempted);
        let (seq, par) = (seq_out.corpus, par_out.corpus);
        assert_eq!(seq.traces.len(), par.traces.len());
        assert_eq!(seq.descriptions.len(), par.descriptions.len());
        for (a, b) in seq.traces.iter().zip(&par.traces) {
            assert_eq!(a.run_id, b.run_id);
            assert_eq!(a.system, b.system);
            assert_eq!(a.template_name, b.template_name);
            assert_eq!(a.dataset, b.dataset);
        }
        for (a, b) in seq.descriptions.iter().zip(&par.descriptions) {
            assert_eq!(a.system, b.system);
            assert_eq!(a.template_name, b.template_name);
            assert_eq!(a.graph, b.graph);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corpus_store_cold_then_warm() {
        let corpus = small_corpus();
        let dir = tmpdir("snapshot");
        save(&corpus, &dir).unwrap();

        let cold = CorpusStore::open_or_build_with_threads(&dir, 2).unwrap();
        assert!(!cold.provenance.warm);
        assert!(cold.provenance.rebuild_reason.is_none());
        assert!(cold.provenance.snapshot_bytes > 0);
        assert!(dir.join(SNAPSHOT_FILE).exists());

        let warm = CorpusStore::open_or_build_with_threads(&dir, 2).unwrap();
        assert!(warm.provenance.warm, "second open must hit the snapshot");
        assert_eq!(warm.union, cold.union);
        assert_eq!(warm.corpus.traces.len(), cold.corpus.traces.len());
        assert_eq!(
            warm.corpus.descriptions.len(),
            cold.corpus.descriptions.len()
        );
        for (a, b) in cold.corpus.traces.iter().zip(&warm.corpus.traces) {
            assert_eq!(a.run_id, b.run_id);
            assert_eq!(a.dataset, b.dataset);
        }
        assert_eq!(warm.union, corpus.combined_dataset().union_graph());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_snapshot_triggers_rebuild() {
        let corpus = small_corpus();
        let dir = tmpdir("corrupt");
        save(&corpus, &dir).unwrap();
        CorpusStore::build(&dir, 2).unwrap();

        // Flip a byte in the middle of the snapshot body.
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let store = CorpusStore::open_or_build_with_threads(&dir, 2).unwrap();
        assert!(!store.provenance.warm);
        assert!(
            store.provenance.rebuild_reason.is_some(),
            "corruption must be reported"
        );
        assert_eq!(store.union, corpus.combined_dataset().union_graph());
        // The rebuild rewrote a valid snapshot.
        let again = CorpusStore::open_or_build_with_threads(&dir, 2).unwrap();
        assert!(again.provenance.warm);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_version_snapshot_triggers_rebuild() {
        let corpus = small_corpus();
        let dir = tmpdir("stale");
        save(&corpus, &dir).unwrap();
        CorpusStore::build(&dir, 2).unwrap();

        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        bytes[6] = 0xFE;
        bytes[7] = 0xFF;
        fs::write(&path, &bytes).unwrap();

        let store = CorpusStore::open_or_build_with_threads(&dir, 2).unwrap();
        assert!(!store.provenance.warm);
        let reason = store.provenance.rebuild_reason.unwrap();
        assert!(reason.contains("version"), "got: {reason}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn changed_sources_invalidate_snapshot() {
        let corpus = small_corpus();
        let dir = tmpdir("changed");
        save(&corpus, &dir).unwrap();
        CorpusStore::build(&dir, 2).unwrap();

        // Append a triple to one trace file: same file count, new bytes.
        let files = collect_corpus_files(&dir).unwrap();
        let trace = files
            .iter()
            .find(|f| f.kind == FileKind::TraceTurtle)
            .unwrap();
        let mut content = fs::read_to_string(&trace.path).unwrap();
        content.push_str("<http://example.org/x> <http://example.org/p> \"new\" .\n");
        fs::write(&trace.path, content).unwrap();

        let store = CorpusStore::open_or_build_with_threads(&dir, 2).unwrap();
        assert!(!store.provenance.warm);
        let reason = store.provenance.rebuild_reason.unwrap();
        assert!(reason.contains("source tree changed"), "got: {reason}");
        // The v2 manifest names exactly the edited file.
        assert!(
            reason.contains(&format!("changed {}", trace.rel)),
            "got: {reason}"
        );
        // And the rebuilt union reflects the edit.
        let subject = provbench_rdf::Iri::new("http://example.org/x")
            .unwrap()
            .into();
        assert_eq!(
            store
                .union
                .triples_matching(Some(&subject), None, None)
                .count(),
            1
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_file_is_quarantined_not_fatal() {
        let corpus = small_corpus();
        let dir = tmpdir("quarantine");
        save(&corpus, &dir).unwrap();
        let reference = CorpusStore::build(&dir, 2).unwrap();
        assert!(reference.ingest.is_clean());

        // Break one Taverna trace mid-file.
        let files = collect_corpus_files(&dir).unwrap();
        let victim = files
            .iter()
            .find(|f| f.kind == FileKind::TraceTurtle)
            .unwrap();
        fs::write(&victim.path, "@prefix e: <http://e/> .\nNOT TURTLE %%%\n").unwrap();

        // Default mode: the rest of the corpus still loads, the casualty
        // is quarantined with an actionable position.
        let store = CorpusStore::open_or_build_with_threads(&dir, 2).unwrap();
        assert!(!store.provenance.warm);
        assert_eq!(store.corpus.traces.len(), reference.corpus.traces.len() - 1);
        assert_eq!(store.ingest.errors.len(), 1);
        assert_eq!(store.ingest.attempted, files.len());
        let e = &store.ingest.errors[0];
        assert_eq!(e.path, victim.rel);
        assert_eq!(e.line, Some(2), "{e}");
        assert!(e.column.is_some() && e.byte_offset.is_some(), "{e}");
        assert!(!e.io);
        assert!(dir.join(INGEST_REPORT_FILE).exists());

        // The quarantine survives a warm reopen via the persisted report.
        let warm = CorpusStore::open_or_build_with_threads(&dir, 2).unwrap();
        assert!(warm.provenance.warm);
        assert_eq!(warm.ingest.errors.len(), 1);
        assert_eq!(warm.corpus.traces.len(), store.corpus.traces.len());

        // Strict mode fails fast, with the position in the message —
        // warm and cold alike.
        let strict = StoreOptions {
            strict: true,
            ..StoreOptions::default()
        };
        let err = CorpusStore::open_or_build_opts(&dir, &strict).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains(&victim.rel) && msg.contains(":2:"), "{msg}");
        fs::remove_file(dir.join(SNAPSHOT_FILE)).unwrap();
        let err = CorpusStore::open_or_build_opts(&dir, &strict).unwrap_err();
        assert!(err.to_string().contains("strict ingestion"), "{err}");

        // Fixing the file changes the fingerprint → rebuild, clean
        // report, report file gone.
        let original = corpus
            .traces
            .iter()
            .find(|t| victim.rel.contains(&t.run_id))
            .unwrap();
        fs::write(&victim.path, serialize_trace(original)).unwrap();
        let fixed = CorpusStore::open_or_build_with_threads(&dir, 2).unwrap();
        assert!(fixed.ingest.is_clean());
        assert_eq!(fixed.union, reference.union);
        assert!(!dir.join(INGEST_REPORT_FILE).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_write_leaves_no_temp_and_survives_stale_litter() {
        let corpus = small_corpus();
        let dir = tmpdir("atomic");
        save(&corpus, &dir).unwrap();

        // Plant litter a crashed builder would leave behind: a stale
        // temp file, a stale lock, and a torn half-written snapshot.
        fs::write(dir.join(SNAPSHOT_TMP), b"half a snapshot").unwrap();
        fs::write(dir.join(SNAPSHOT_LOCK), b"").unwrap();
        fs::write(dir.join(SNAPSHOT_FILE), b"PBSNA").unwrap();

        let opts = StoreOptions {
            jobs: 2,
            lock_timeout: Duration::from_millis(200),
            ..StoreOptions::default()
        };
        let store = CorpusStore::open_or_build_opts(&dir, &opts).unwrap();
        assert!(!store.provenance.warm);
        assert!(store.provenance.rebuild_reason.is_some());
        assert!(store.provenance.snapshot_bytes > 0);
        // No litter after a successful build: tmp swept, stolen lock
        // released, snapshot valid.
        assert!(!dir.join(SNAPSHOT_TMP).exists());
        assert!(!dir.join(SNAPSHOT_LOCK).exists());
        let warm = CorpusStore::open_or_build_opts(&dir, &opts).unwrap();
        assert!(warm.provenance.warm);
        assert_eq!(warm.union, store.union);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_cold_open_one_builds_one_waits() {
        let corpus = small_corpus();
        let dir = tmpdir("concurrent");
        save(&corpus, &dir).unwrap();

        let open = || {
            let dir = dir.clone();
            std::thread::spawn(move || {
                let opts = StoreOptions {
                    jobs: 2,
                    lock_timeout: Duration::from_secs(30),
                    ..StoreOptions::default()
                };
                CorpusStore::open_or_build_opts(&dir, &opts).unwrap()
            })
        };
        let (a, b) = (open(), open());
        let a = a.join().unwrap();
        let b = b.join().unwrap();
        // Exactly one thread built; the other warm-loaded the snapshot
        // the builder published (waiting on the lock, not racing it).
        assert!(
            a.provenance.warm != b.provenance.warm,
            "a.warm={} b.warm={}",
            a.provenance.warm,
            b.provenance.warm
        );
        assert_eq!(a.union, b.union);
        assert_eq!(a.corpus.traces.len(), b.corpus.traces.len());
        assert!(!dir.join(SNAPSHOT_LOCK).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn combined_dataset_from_disk_matches_memory() {
        let corpus = small_corpus();
        let dir = tmpdir("combined");
        save(&corpus, &dir).unwrap();
        let loaded = load(&dir).unwrap();
        let mem = corpus.combined_dataset();
        let disk = loaded.combined_dataset();
        assert_eq!(mem.len(), disk.len());
        assert_eq!(mem.default_graph(), disk.default_graph());
        fs::remove_dir_all(&dir).unwrap();
    }
}
