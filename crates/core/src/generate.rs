//! In-memory corpus generation: run the plan on the two engines and
//! collect every trace.

use crate::spec::{CorpusSpec, RunPlan};
use provbench_rdf::{Dataset, Graph, Iri, Subject};
use provbench_taverna::TavernaEngine;
use provbench_wings::WingsEngine;
use provbench_workflow::execution::fnv1a;
use provbench_workflow::generate::generate_catalog;
use provbench_workflow::{ExecutionConfig, System, WorkflowRun, WorkflowTemplate};

/// One run's complete record: the executed run plus its exported trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Stable run identifier (also the file stem on disk).
    pub run_id: String,
    /// Which system produced it.
    pub system: System,
    /// The executed template's name.
    pub template_name: String,
    /// The template's application domain.
    pub domain: String,
    /// 1-based run number within the template.
    pub run_number: usize,
    /// The raw execution record (inputs for the analysis applications).
    pub run: WorkflowRun,
    /// The exported provenance. Taverna traces live entirely in the
    /// default graph; Wings traces put the account bundle in a named
    /// graph.
    pub dataset: Dataset,
}

impl TraceRecord {
    /// Whether the recorded run failed.
    pub fn failed(&self) -> bool {
        self.run.failed()
    }

    /// All trace triples as a single graph (bundle contents merged).
    pub fn union_graph(&self) -> Graph {
        self.dataset.union_graph()
    }
}

/// The generated corpus.
#[derive(Clone, Debug)]
pub struct Corpus {
    /// The spec it was generated from.
    pub spec: CorpusSpec,
    /// The run plan.
    pub plan: RunPlan,
    /// The workflow catalog `(system, template)`.
    pub templates: Vec<(System, WorkflowTemplate)>,
    /// One workflow-description graph per catalog entry (wfdesc for
    /// Taverna workflows, OPMW for Wings workflows).
    pub descriptions: Vec<Graph>,
    /// One record per run, in plan order.
    pub traces: Vec<TraceRecord>,
}

/// Execute one planned run and record its trace. Pure function of its
/// inputs, which is what makes parallel generation trivially correct.
fn run_one(
    catalog: &[(System, WorkflowTemplate)],
    planned: &crate::spec::PlannedRun,
    value_payload: usize,
) -> TraceRecord {
    let taverna = TavernaEngine::default();
    let wings = WingsEngine::default();
    let (system, template) = &catalog[planned.template_index];
    let config = ExecutionConfig {
        started_at_ms: planned.started_at_ms,
        seed: planned.seed,
        input_seed: planned.input_seed,
        environment_epoch: planned.environment_epoch,
        failure: planned.failure,
        user: planned.user.clone(),
        value_payload,
    };
    let (run, dataset) = match system {
        System::Taverna => {
            let (run, graph) = taverna.run(template, &config, &planned.run_id);
            let mut ds = Dataset::new();
            *ds.default_graph_mut() = graph;
            (run, ds)
        }
        System::Wings => wings.run(template, &config, &planned.run_id),
    };
    TraceRecord {
        run_id: planned.run_id.clone(),
        system: *system,
        template_name: template.name.clone(),
        domain: template.domain.clone(),
        run_number: planned.run_number,
        run,
        dataset,
    }
}

impl Corpus {
    /// Generate the corpus described by `spec` (deterministic).
    pub fn generate(spec: &CorpusSpec) -> Corpus {
        Corpus::generate_with_threads(spec, 1)
    }

    /// Generate on `threads` worker threads. Every run is an independent
    /// pure computation, so the result is bit-identical to the
    /// sequential one regardless of thread count — only wall-clock time
    /// changes (relevant when `value_payload` scales the corpus toward
    /// the paper's 360 MB).
    pub fn generate_with_threads(spec: &CorpusSpec, threads: usize) -> Corpus {
        let mut catalog = generate_catalog(spec.seed);
        if let Some(max) = spec.max_workflows {
            catalog.truncate(max);
        }
        let plan = RunPlan::build(spec, &catalog);
        let taverna = TavernaEngine::default();
        let wings = WingsEngine::default();

        let descriptions = catalog
            .iter()
            .map(|(system, t)| match system {
                System::Taverna => taverna.describe(t),
                System::Wings => wings.describe(t),
            })
            .collect();

        let traces: Vec<TraceRecord> = if threads <= 1 {
            plan.runs
                .iter()
                .map(|p| run_one(&catalog, p, spec.value_payload))
                .collect()
        } else {
            let chunk = plan.runs.len().div_ceil(threads).max(1);
            std::thread::scope(|scope| {
                let catalog = &catalog;
                let payload = spec.value_payload;
                let handles: Vec<_> = plan
                    .runs
                    .chunks(chunk)
                    .map(|chunk| {
                        scope.spawn(move || {
                            chunk
                                .iter()
                                .map(|p| run_one(catalog, p, payload))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("generation worker panicked"))
                    .collect()
            })
        };

        Corpus {
            spec: spec.clone(),
            plan,
            templates: catalog,
            descriptions,
            traces,
        }
    }

    /// All traces of one system.
    pub fn traces_of(&self, system: System) -> impl Iterator<Item = &TraceRecord> {
        self.traces.iter().filter(move |t| t.system == system)
    }

    /// All traces of one template, in run order.
    pub fn runs_of_template(&self, template_name: &str) -> Vec<&TraceRecord> {
        self.traces
            .iter()
            .filter(|t| t.template_name == template_name)
            .collect()
    }

    /// Number of failed runs.
    pub fn failed_count(&self) -> usize {
        self.traces.iter().filter(|t| t.failed()).count()
    }

    /// Merge the entire corpus into one dataset for cross-trace querying:
    /// workflow descriptions go to the default graph; every Taverna trace
    /// becomes a named graph keyed by its run IRI; Wings traces keep
    /// their bundle graphs and contribute their account metadata to the
    /// default graph.
    pub fn combined_dataset(&self) -> Dataset {
        let mut ds = Dataset::new();
        for d in &self.descriptions {
            ds.default_graph_mut().extend_from_graph(d);
        }
        for trace in &self.traces {
            match trace.system {
                System::Taverna => {
                    let name = Subject::Iri(Iri::new_unchecked(format!(
                        "{}graph",
                        provbench_taverna::run_base_iri(&trace.run_id)
                    )));
                    ds.insert_graph(name, trace.dataset.default_graph());
                }
                System::Wings => ds.merge(&trace.dataset),
            }
        }
        ds
    }

    /// One graph with every triple of the corpus (descriptions + traces).
    pub fn combined_graph(&self) -> Graph {
        self.combined_dataset().union_graph()
    }

    /// A merged graph of all traces of one system only (no descriptions)
    /// — the input to the Table 2/3 coverage analysis.
    pub fn system_graph(&self, system: System) -> Graph {
        let mut g = Graph::new();
        for t in self.traces_of(system) {
            g.extend_from_graph(&t.union_graph());
        }
        g
    }

    /// Grow the corpus by `extra` new runs — the paper's §6: "we expect
    /// new provenance traces will continue to be added to this corpus".
    ///
    /// New runs are appended round-robin over the templates, continuing
    /// each template's run series (run numbers, epochs and virtual time
    /// advance past the series' end). Existing traces are untouched, so
    /// downstream consumers see a strict superset; the extension itself
    /// is deterministic in the original spec.
    pub fn extend_with_runs(&mut self, extra: usize) {
        use provbench_workflow::execution::fnv1a;
        let mut per_template: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for planned in &self.plan.runs {
            *per_template.entry(planned.template_index).or_default() += 1;
        }
        let last_time = self
            .plan
            .runs
            .iter()
            .map(|r| r.started_at_ms)
            .max()
            .unwrap_or(0);
        let w = self.templates.len();
        for k in 0..extra {
            let ti = k % w;
            let count = per_template.entry(ti).or_default();
            *count += 1;
            let run_number = *count;
            let template = &self.templates[ti].1;
            let planned = crate::spec::PlannedRun {
                template_index: ti,
                system: self.templates[ti].0,
                run_number,
                // New runs happen strictly after the original corpus.
                started_at_ms: last_time + (k as i64 + 1) * 86_400_000 + ti as i64 * 3_600_000,
                seed: self
                    .spec
                    .seed
                    .wrapping_mul(0xfeed_f00d)
                    .wrapping_add(fnv1a(template.name.as_bytes()))
                    .wrapping_add(run_number as u64),
                input_seed: self.spec.seed.wrapping_add(ti as u64),
                environment_epoch: (run_number - 1) as u64,
                failure: None,
                user: crate::spec::USERS[(ti + run_number - 1) % crate::spec::USERS.len()]
                    .to_owned(),
                run_id: format!("{}-run-{}", template.name, run_number),
            };
            let trace = run_one(&self.templates, &planned, self.spec.value_payload);
            self.plan.runs.push(planned);
            self.traces.push(trace);
        }
    }

    /// A stable fingerprint of the corpus content (used by determinism
    /// tests and the reproduce binary).
    pub fn fingerprint(&self) -> u64 {
        let mut acc = 0u64;
        for t in &self.traces {
            acc ^= fnv1a(t.run_id.as_bytes());
            acc = acc.rotate_left(9) ^ (t.dataset.len() as u64);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CorpusSpec {
        CorpusSpec {
            max_workflows: Some(6),
            total_runs: 10,
            failed_runs: 2,
            ..CorpusSpec::default()
        }
    }

    #[test]
    fn small_corpus_generates() {
        let c = Corpus::generate(&small_spec());
        assert_eq!(c.templates.len(), 6);
        assert_eq!(c.traces.len(), 10);
        assert_eq!(c.failed_count(), 2);
        assert_eq!(c.descriptions.len(), 6);
        assert!(c.traces.iter().all(|t| !t.dataset.is_empty()));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(&small_spec());
        let b = Corpus::generate(&small_spec());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.traces.len(), b.traces.len());
        for (x, y) in a.traces.iter().zip(&b.traces) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn parallel_generation_is_bit_identical() {
        let sequential = Corpus::generate(&small_spec());
        for threads in [2, 4, 7] {
            let parallel = Corpus::generate_with_threads(&small_spec(), threads);
            assert_eq!(parallel.fingerprint(), sequential.fingerprint());
            assert_eq!(parallel.traces, sequential.traces, "threads={threads}");
        }
    }

    #[test]
    fn extension_preserves_existing_traces() {
        let base = Corpus::generate(&small_spec());
        let mut extended = base.clone();
        extended.extend_with_runs(5);
        assert_eq!(extended.traces.len(), base.traces.len() + 5);
        // Prefix unchanged.
        for (a, b) in base.traces.iter().zip(&extended.traces) {
            assert_eq!(a, b);
        }
        // New runs continue the per-template series without id clashes.
        let mut ids: Vec<&str> = extended.traces.iter().map(|t| t.run_id.as_str()).collect();
        ids.sort();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate run ids after extension");
        // New runs are strictly later than the original corpus.
        let last_old = base.traces.iter().map(|t| t.run.started_ms).max().unwrap();
        for t in &extended.traces[base.traces.len()..] {
            assert!(t.run.started_ms > last_old);
        }
        // Extension is deterministic.
        let mut again = base.clone();
        again.extend_with_runs(5);
        assert_eq!(extended.fingerprint(), again.fingerprint());
    }

    #[test]
    fn combined_dataset_has_named_graph_per_trace() {
        let c = Corpus::generate(&small_spec());
        let ds = c.combined_dataset();
        // 6 workflows are all Taverna (catalog starts with Genomics), so
        // every trace contributes one named graph.
        assert_eq!(ds.named_graphs().count(), 10);
        assert!(!ds.default_graph().is_empty()); // descriptions
    }

    #[test]
    fn runs_of_template_ordered() {
        let c = Corpus::generate(&small_spec());
        let name = &c.templates[0].1.name;
        let runs = c.runs_of_template(name);
        assert!(!runs.is_empty());
        assert!(runs.windows(2).all(|w| w[0].run_number < w[1].run_number));
    }

    #[test]
    fn system_graph_merges_traces() {
        let c = Corpus::generate(&small_spec());
        let g = c.system_graph(System::Taverna);
        assert!(!g.is_empty());
        assert!(c.system_graph(System::Wings).is_empty());
    }
}
