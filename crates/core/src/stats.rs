//! Corpus statistics: the data behind the paper's Table 1 and Figure 1.

use crate::generate::Corpus;
use crate::store::{serialize_description, serialize_trace};
use provbench_workflow::domains::DOMAINS;
use provbench_workflow::System;
use std::fmt;

/// One bar pair of Figure 1: a domain and its workflow counts per system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomainRow {
    /// Domain name.
    pub name: String,
    /// Taverna workflows in the domain.
    pub taverna: usize,
    /// Wings workflows in the domain.
    pub wings: usize,
}

/// Aggregate statistics of a generated corpus.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusStats {
    /// Number of workflows.
    pub workflows: usize,
    /// Workflows designed in Taverna.
    pub taverna_workflows: usize,
    /// Workflows designed in Wings.
    pub wings_workflows: usize,
    /// Total runs.
    pub runs: usize,
    /// Failed runs.
    pub failed_runs: usize,
    /// Total process runs recorded across all traces.
    pub process_runs: usize,
    /// Total RDF triples/quads across traces and descriptions.
    pub triples: usize,
    /// Total serialized size in bytes (Turtle + TriG), as it would be
    /// written to disk.
    pub serialized_bytes: u64,
    /// Serialized trace bytes only (no descriptions).
    pub trace_bytes: u64,
    /// Mean serialized size of one run's trace, in bytes; `0` for a
    /// corpus with no runs (never a division by zero).
    pub mean_run_bytes: u64,
    /// Figure 1: domain × system histogram.
    pub domain_histogram: Vec<DomainRow>,
}

impl CorpusStats {
    /// Compute statistics for a corpus.
    pub fn compute(corpus: &Corpus) -> CorpusStats {
        let mut serialized_bytes = 0u64;
        let mut trace_bytes = 0u64;
        let mut triples = 0usize;
        for trace in &corpus.traces {
            trace_bytes += serialize_trace(trace).len() as u64;
            triples += trace.dataset.len();
        }
        serialized_bytes += trace_bytes;
        for description in &corpus.descriptions {
            serialized_bytes += serialize_description(description).len() as u64;
            triples += description.len();
        }
        let process_runs = corpus
            .traces
            .iter()
            .map(|t| {
                t.run
                    .processes
                    .iter()
                    .filter(|p| p.started_ms.is_some())
                    .count()
            })
            .sum();

        let mut domain_histogram: Vec<DomainRow> = DOMAINS
            .iter()
            .map(|d| DomainRow {
                name: d.name.to_owned(),
                taverna: 0,
                wings: 0,
            })
            .collect();
        for (system, template) in &corpus.templates {
            if let Some(row) = domain_histogram
                .iter_mut()
                .find(|r| r.name == template.domain)
            {
                match system {
                    System::Taverna => row.taverna += 1,
                    System::Wings => row.wings += 1,
                }
            }
        }
        // Keep only domains present in this (possibly truncated) corpus.
        domain_histogram.retain(|r| r.taverna + r.wings > 0);

        CorpusStats {
            workflows: corpus.templates.len(),
            taverna_workflows: corpus
                .templates
                .iter()
                .filter(|(s, _)| *s == System::Taverna)
                .count(),
            wings_workflows: corpus
                .templates
                .iter()
                .filter(|(s, _)| *s == System::Wings)
                .count(),
            runs: corpus.traces.len(),
            failed_runs: corpus.failed_count(),
            process_runs,
            triples,
            serialized_bytes,
            trace_bytes,
            // Guarded: an empty corpus reports 0, not a division by zero.
            mean_run_bytes: trace_bytes
                .checked_div(corpus.traces.len() as u64)
                .unwrap_or(0),
            domain_histogram,
        }
    }
}

/// The paper's Table 1, regenerated from a corpus.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table1 {
    /// `(row label, value)` pairs in the paper's order.
    pub rows: Vec<(String, String)>,
}

impl Table1 {
    /// Build Table 1 from corpus statistics.
    pub fn from_stats(stats: &CorpusStats) -> Table1 {
        let size_mb = stats.serialized_bytes as f64 / (1024.0 * 1024.0);
        Table1 {
            rows: vec![
                ("Data format".to_owned(), "RDF".to_owned()),
                ("Data model".to_owned(), "PROV-O".to_owned()),
                (
                    "Size".to_owned(),
                    format!("{size_mb:.1} Megabytes ({} bytes)", stats.serialized_bytes),
                ),
                (
                    "Tools used for generating provenance".to_owned(),
                    "Taverna and Wings provenance plug-ins".to_owned(),
                ),
                (
                    "Domain".to_owned(),
                    format!("{} domains (see Figure 1)", stats.domain_histogram.len()),
                ),
                ("Submission group".to_owned(), "Wf4Ever-Wings".to_owned()),
                (
                    "License".to_owned(),
                    "Creative Commons Attribution 3.0 Unported".to_owned(),
                ),
            ],
        }
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (k, v) in &self.rows {
            writeln!(f, "{k:width$}  {v}")?;
        }
        Ok(())
    }
}

/// The corpus's Table 1 metadata as a VoID dataset description —
/// how ProvBench datasets were actually published on the web of data.
pub fn void_description(stats: &CorpusStats) -> provbench_rdf::Graph {
    use provbench_rdf::{Graph, Iri, Literal, Triple};
    use provbench_vocab::{self as vocab, dcterms, void};

    let mut g = Graph::new();
    let ds = Iri::new_unchecked("http://purl.org/provbench/wf4ever-prov");
    let t = |s: Iri, p: Iri, o: provbench_rdf::Term| {
        // local helper to keep the triples readable
        Triple::new(s, p, o)
    };
    g.insert(t(ds.clone(), vocab::rdf_type(), void::dataset().into()));
    g.insert(t(
        ds.clone(),
        dcterms::title(),
        Literal::simple("A Workflow PROV-Corpus based on Taverna and Wings").into(),
    ));
    g.insert(t(
        ds.clone(),
        dcterms::license(),
        Iri::new_unchecked("http://creativecommons.org/licenses/by/3.0/").into(),
    ));
    g.insert(t(
        ds.clone(),
        void::triples(),
        Literal::integer(stats.triples as i64).into(),
    ));
    g.insert(t(
        ds.clone(),
        void::entities(),
        Literal::integer((stats.runs + stats.workflows) as i64).into(),
    ));
    g.insert(t(
        ds.clone(),
        void::data_dump(),
        Iri::new_unchecked("https://github.com/provbench/Wf4Ever-PROV").into(),
    ));
    for vocabulary in [
        provbench_vocab::prov::NS,
        provbench_vocab::wfprov::NS,
        provbench_vocab::wfdesc::NS,
        provbench_vocab::opmw::NS,
        provbench_vocab::ro::NS,
    ] {
        g.insert(t(
            ds.clone(),
            void::vocabulary(),
            Iri::new_unchecked(vocabulary).into(),
        ));
    }
    // Subsets: one per system.
    for (name, runs) in [
        ("taverna", stats.taverna_workflows),
        ("wings", stats.wings_workflows),
    ] {
        let sub = Iri::new_unchecked(format!("http://purl.org/provbench/wf4ever-prov/{name}"));
        g.insert(t(ds.clone(), void::subset(), sub.clone().into()));
        g.insert(t(sub.clone(), vocab::rdf_type(), void::dataset().into()));
        g.insert(t(
            sub,
            dcterms::description(),
            Literal::simple(format!("{runs} workflows designed in {name}")).into(),
        ));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CorpusSpec;

    fn small_corpus() -> Corpus {
        Corpus::generate(&CorpusSpec {
            max_workflows: Some(8),
            total_runs: 12,
            failed_runs: 2,
            ..CorpusSpec::default()
        })
    }

    #[test]
    fn stats_reflect_the_corpus() {
        let c = small_corpus();
        let s = CorpusStats::compute(&c);
        assert_eq!(s.workflows, 8);
        assert_eq!(s.runs, 12);
        assert_eq!(s.failed_runs, 2);
        assert!(s.triples > 0);
        assert!(s.serialized_bytes > 0);
        assert!(s.process_runs > 0);
        assert_eq!(s.taverna_workflows + s.wings_workflows, 8);
    }

    #[test]
    fn histogram_covers_only_present_domains() {
        let c = small_corpus();
        let s = CorpusStats::compute(&c);
        // 8 genomics workflows → exactly one histogram row.
        assert_eq!(s.domain_histogram.len(), 1);
        assert_eq!(s.domain_histogram[0].name, "Genomics");
        assert_eq!(s.domain_histogram[0].taverna, 8);
    }

    #[test]
    fn table1_has_paper_shape() {
        let c = small_corpus();
        let t1 = Table1::from_stats(&CorpusStats::compute(&c));
        assert_eq!(t1.rows.len(), 7);
        assert_eq!(t1.rows[0], ("Data format".to_owned(), "RDF".to_owned()));
        assert_eq!(t1.rows[1].1, "PROV-O");
        assert!(t1.rows[2].1.contains("Megabytes"));
        assert!(t1.to_string().contains("Creative Commons"));
    }

    #[test]
    fn void_description_is_well_formed() {
        let c = small_corpus();
        let stats = CorpusStats::compute(&c);
        let g = void_description(&stats);
        use provbench_vocab::{dcterms, void};
        let ds: provbench_rdf::Subject =
            provbench_rdf::Iri::new_unchecked("http://purl.org/provbench/wf4ever-prov").into();
        assert!(g.object(&ds, &dcterms::title()).is_some());
        assert_eq!(g.objects(&ds, &void::vocabulary()).count(), 5);
        assert_eq!(g.objects(&ds, &void::subset()).count(), 2);
        let triples = g
            .object(&ds, &void::triples())
            .and_then(|t| t.as_literal().and_then(|l| l.as_integer()))
            .unwrap();
        assert_eq!(triples as usize, stats.triples);
        // And it serializes as Turtle.
        let ttl = provbench_rdf::write_turtle(&g, &provbench_rdf::PrefixMap::common());
        assert!(provbench_rdf::parse_turtle(&ttl).is_ok());
    }

    #[test]
    fn empty_corpus_stats_are_finite() {
        // A corpus with no templates and no runs: every statistic must
        // come out zero — no division by zero, no NaN in Table 1.
        let empty = Corpus {
            spec: CorpusSpec::default(),
            plan: crate::spec::RunPlan { runs: vec![] },
            templates: vec![],
            descriptions: vec![],
            traces: vec![],
        };
        let s = CorpusStats::compute(&empty);
        assert_eq!(s.runs, 0);
        assert_eq!(s.serialized_bytes, 0);
        assert_eq!(s.mean_run_bytes, 0);
        assert!(s.domain_histogram.is_empty());
        let t1 = Table1::from_stats(&s);
        let size = &t1.rows[2].1;
        assert_eq!(size, "0.0 Megabytes (0 bytes)");
        assert!(!size.contains("NaN") && !size.contains("inf"), "{size}");
    }

    #[test]
    fn size_row_reports_exact_bytes() {
        let c = small_corpus();
        let s = CorpusStats::compute(&c);
        let t1 = Table1::from_stats(&s);
        assert!(
            t1.rows[2]
                .1
                .contains(&format!("({} bytes)", s.serialized_bytes)),
            "{}",
            t1.rows[2].1
        );
        assert_eq!(s.mean_run_bytes, s.trace_bytes / s.runs as u64);
        assert!(s.trace_bytes <= s.serialized_bytes);
    }

    #[test]
    fn payload_scales_size() {
        let mut spec = CorpusSpec {
            max_workflows: Some(2),
            total_runs: 2,
            failed_runs: 0,
            ..CorpusSpec::default()
        };
        let small = CorpusStats::compute(&Corpus::generate(&spec)).serialized_bytes;
        spec.value_payload = 10_000;
        let big = CorpusStats::compute(&Corpus::generate(&spec)).serialized_bytes;
        assert!(
            big > small * 5,
            "payload must dominate size ({small} -> {big})"
        );
    }
}
