//! Quarantine ingestion: the structured record of corpus files that
//! failed to load.
//!
//! The paper's corpus deliberately contains failure (30 of 198 runs
//! failed), and a production loader has to extend the same courtesy to
//! its own inputs: one malformed Turtle file must not take down the
//! other 197. Files that fail to read or parse are *quarantined* — the
//! rest of the corpus still builds, and every casualty is recorded in an
//! [`IngestReport`] persisted next to the snapshot
//! ([`INGEST_REPORT_FILE`]) so `provbench snapshot info`, the endpoint's
//! `/readyz` route and scripts can gate on corpus health.

use std::fmt;

/// File name of the persisted report, at the corpus directory root.
pub const INGEST_REPORT_FILE: &str = "corpus.ingest-report.tsv";

/// Header line identifying the persisted report format.
const REPORT_HEADER: &str = "# provbench ingest report v1";

/// One corpus file that could not be loaded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestError {
    /// Path relative to the corpus directory.
    pub path: String,
    /// What went wrong. For parse errors this includes `line:column`.
    pub message: String,
    /// 1-based line of a parse error, when known.
    pub line: Option<usize>,
    /// 1-based column of a parse error, when known.
    pub column: Option<usize>,
    /// Byte offset of the error position in the file, when known.
    pub byte_offset: Option<u64>,
    /// `true` for I/O failures (read errors), `false` for parse errors.
    pub io: bool,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.path)?;
        if let (Some(line), Some(column)) = (self.line, self.column) {
            write!(f, ":{line}:{column}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(off) = self.byte_offset {
            write!(f, " (byte {off})")?;
        }
        Ok(())
    }
}

/// Outcome of one ingestion pass: how many files were attempted and
/// which of them were quarantined.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// RDF files the loader attempted to read.
    pub attempted: usize,
    /// Files that failed and were quarantined, in walk order.
    pub errors: Vec<IngestError>,
}

impl IngestReport {
    /// `true` when every attempted file loaded.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Number of files that loaded successfully.
    pub fn loaded(&self) -> usize {
        self.attempted - self.errors.len()
    }

    /// Serialize for persistence: a header, a count line, then one
    /// tab-separated line per quarantined file (`-` for unknown fields;
    /// tabs/newlines/backslashes in messages are escaped).
    pub fn to_tsv(&self) -> String {
        let mut out = format!("{REPORT_HEADER}\n# attempted {}\n", self.attempted);
        for e in &self.errors {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\n",
                escape(&e.path),
                opt(e.line),
                opt(e.column),
                opt(e.byte_offset),
                if e.io { "io" } else { "parse" },
                escape(&e.message),
            ));
        }
        out
    }

    /// Parse a persisted report. `None` when the text is not a report
    /// this build understands (treated as "no report" by callers — a
    /// torn report file must never block loading).
    pub fn from_tsv(text: &str) -> Option<IngestReport> {
        let mut lines = text.lines();
        if lines.next()? != REPORT_HEADER {
            return None;
        }
        let attempted = lines.next()?.strip_prefix("# attempted ")?.parse().ok()?;
        let mut errors = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 6 {
                return None;
            }
            errors.push(IngestError {
                path: unescape(fields[0]),
                line: parse_opt(fields[1])?,
                column: parse_opt(fields[2])?,
                byte_offset: parse_opt(fields[3])?,
                io: match fields[4] {
                    "io" => true,
                    "parse" => false,
                    _ => return None,
                },
                message: unescape(fields[5]),
            });
        }
        Some(IngestReport { attempted, errors })
    }
}

impl fmt::Display for IngestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} files quarantined",
            self.errors.len(),
            self.attempted
        )
    }
}

fn opt<T: fmt::Display>(v: Option<T>) -> String {
    v.map_or_else(|| "-".to_owned(), |v| v.to_string())
}

fn parse_opt<T: std::str::FromStr>(s: &str) -> Option<Option<T>> {
    if s == "-" {
        Some(None)
    } else {
        s.parse().ok().map(Some)
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IngestReport {
        IngestReport {
            attempted: 42,
            errors: vec![
                IngestError {
                    path: "taverna/t1/run-1.prov.ttl".into(),
                    message: "expected '.' after object".into(),
                    line: Some(12),
                    column: Some(7),
                    byte_offset: Some(345),
                    io: false,
                },
                IngestError {
                    path: "wings/w1/run-9.prov.trig".into(),
                    message: "read interrupted\twith tab".into(),
                    line: None,
                    column: None,
                    byte_offset: None,
                    io: true,
                },
            ],
        }
    }

    #[test]
    fn tsv_roundtrip() {
        let report = sample();
        let text = report.to_tsv();
        assert_eq!(IngestReport::from_tsv(&text), Some(report));
    }

    #[test]
    fn garbage_is_not_a_report() {
        assert_eq!(IngestReport::from_tsv("not a report"), None);
        assert_eq!(IngestReport::from_tsv(""), None);
        // A torn (truncated) report: header survives, a data line is cut
        // mid-fields — rejected, not misparsed.
        let text = sample().to_tsv();
        let cut = &text[..text.len() - 30];
        assert!(IngestReport::from_tsv(cut).is_none() || cut.lines().count() < 4);
    }

    #[test]
    fn display_is_actionable() {
        let report = sample();
        let line = report.errors[0].to_string();
        assert!(line.contains("run-1.prov.ttl:12:7"), "{line}");
        assert!(line.contains("byte 345"), "{line}");
        assert_eq!(report.to_string(), "2 of 42 files quarantined");
        assert!(!report.is_clean());
        assert_eq!(report.loaded(), 40);
    }
}
