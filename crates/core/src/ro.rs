//! Research Object packaging (the paper's reference \[1\] and §6).
//!
//! The original corpus was published as Wf4Ever research objects: each
//! workflow's template description and run traces are aggregated into an
//! `ro:ResearchObject` with annotations tying traces back to the
//! workflow they describe. This module regenerates those manifests.

use crate::generate::Corpus;
use provbench_rdf::{Graph, Iri, Literal, Triple};
use provbench_vocab::{self as vocab, dcterms, ro};
use provbench_workflow::System;

/// The research-object IRI for a workflow.
pub fn research_object_iri(template_name: &str) -> Iri {
    Iri::new_unchecked(format!(
        "http://www.wf4ever-project.org/ro/provbench/{template_name}"
    ))
}

/// The aggregated resource IRI of one run's trace.
pub fn trace_resource_iri(system: System, run_id: &str) -> Iri {
    match system {
        System::Taverna => {
            Iri::new_unchecked(format!("{}graph", provbench_taverna::run_base_iri(run_id)))
        }
        System::Wings => provbench_wings::account_iri(run_id),
    }
}

/// Build the RO manifest graph for one workflow: the research object
/// aggregates the workflow description and every run trace, with an
/// annotation per trace naming the workflow it annotates.
pub fn research_object_for(corpus: &Corpus, template_name: &str) -> Option<Graph> {
    let (system, template) = corpus
        .templates
        .iter()
        .find(|(_, t)| t.name == template_name)?;
    let mut g = Graph::new();
    let ro_iri = research_object_iri(template_name);
    g.insert(Triple::new(
        ro_iri.clone(),
        vocab::rdf_type(),
        ro::research_object(),
    ));
    g.insert(Triple::new(
        ro_iri.clone(),
        dcterms::title(),
        Literal::simple(format!("Research object of {}", template.title)),
    ));
    g.insert(Triple::new(
        ro_iri.clone(),
        dcterms::subject(),
        Literal::simple(&template.domain),
    ));
    g.insert(Triple::new(
        ro_iri.clone(),
        dcterms::license(),
        Iri::new_unchecked("http://creativecommons.org/licenses/by/3.0/"),
    ));

    // The workflow description resource.
    let wf = match system {
        System::Taverna => provbench_taverna::export::template_iri(template_name),
        System::Wings => provbench_wings::template_iri(template_name),
    };
    g.insert(Triple::new(ro_iri.clone(), ro::aggregates(), wf.clone()));
    g.insert(Triple::new(wf.clone(), vocab::rdf_type(), ro::resource()));

    // Every run trace, with an annotation pointing back at the workflow.
    for (i, trace) in corpus.runs_of_template(template_name).iter().enumerate() {
        let resource = trace_resource_iri(trace.system, &trace.run_id);
        g.insert(Triple::new(
            ro_iri.clone(),
            ro::aggregates(),
            resource.clone(),
        ));
        g.insert(Triple::new(
            resource.clone(),
            vocab::rdf_type(),
            ro::resource(),
        ));
        let ann = Iri::new_unchecked(format!("{}/annotation/{}", ro_iri.as_str(), i));
        g.insert(Triple::new(
            ann.clone(),
            vocab::rdf_type(),
            ro::aggregated_annotation(),
        ));
        g.insert(Triple::new(
            ann.clone(),
            ro::annotates_aggregated_resource(),
            resource,
        ));
        g.insert(Triple::new(ann, vocab::rdfs::see_also(), wf.clone()));
    }
    Some(g)
}

/// RO manifests for every workflow of the corpus.
pub fn corpus_research_objects(corpus: &Corpus) -> Vec<(String, Graph)> {
    corpus
        .templates
        .iter()
        .filter_map(|(_, t)| research_object_for(corpus, &t.name).map(|g| (t.name.clone(), g)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CorpusSpec;
    use provbench_rdf::Term;

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusSpec {
            max_workflows: Some(70),
            total_runs: 75,
            failed_runs: 3,
            ..CorpusSpec::default()
        })
    }

    #[test]
    fn manifest_aggregates_description_and_traces() {
        let c = corpus();
        let name = &c.templates[0].1.name;
        let g = research_object_for(&c, name).unwrap();
        let ro_subject = research_object_iri(name).into();
        let aggregated = g
            .triples_matching(Some(&ro_subject), Some(&ro::aggregates()), None)
            .count();
        // 1 workflow description + one resource per run.
        assert_eq!(aggregated, 1 + c.runs_of_template(name).len());
        // Annotations link each trace to the workflow.
        let anns: Term = ro::aggregated_annotation().into();
        assert_eq!(
            g.triples_matching(None, Some(&vocab::rdf_type()), Some(&anns))
                .count(),
            c.runs_of_template(name).len()
        );
    }

    #[test]
    fn every_workflow_gets_a_manifest() {
        let c = corpus();
        let manifests = corpus_research_objects(&c);
        assert_eq!(manifests.len(), c.templates.len());
        for (_, g) in &manifests {
            assert!(!g.is_empty());
        }
    }

    #[test]
    fn wings_manifests_point_at_accounts() {
        let c = corpus();
        let wings = c
            .traces_of(System::Wings)
            .next()
            .expect("corpus spans both systems");
        let g = research_object_for(&c, &wings.template_name).unwrap();
        let account: Term = provbench_wings::account_iri(&wings.run_id).into();
        assert!(g
            .triples_matching(None, Some(&ro::aggregates()), Some(&account))
            .next()
            .is_some());
    }

    #[test]
    fn unknown_template_yields_none() {
        assert!(research_object_for(&corpus(), "nope").is_none());
    }
}
