//! The store's filesystem seam.
//!
//! Every file read or write the corpus store performs goes through the
//! [`StoreFs`] trait so that tests can interpose faults deterministically.
//! Production code uses [`RealFs`] (plain `std::fs` plus fsync on
//! durable writes); the `fault-inject` feature adds [`FaultFs`], a shim
//! that injects `Interrupted` errors, short writes and torn renames on a
//! seeded schedule. Directory walks (`read_dir`) are deliberately *not*
//! interposed: they enumerate names only, and a failed walk surfaces as
//! an ordinary `io::Error` with nothing on disk to corrupt.

use std::fs;
use std::io;
use std::path::Path;

/// Filesystem operations the corpus store depends on. `Sync` because the
/// parallel ingestion workers share one instance across scoped threads.
pub trait StoreFs: Sync {
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Read a whole file as UTF-8.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;

    /// Durable write: create/truncate, write all bytes, fsync. Callers
    /// that need crash atomicity write to a temp path and [`StoreFs::rename`].
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Atomically replace `to` with `from` (POSIX rename semantics).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Delete a file. Absence is not an error for callers that use this
    /// for cleanup; they ignore the result.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Size of a file in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;

    /// Create `path` exclusively (advisory lock). Fails with
    /// [`io::ErrorKind::AlreadyExists`] when another process holds it.
    fn create_lock(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem. Durable writes fsync before returning so that a
/// rename afterwards publishes fully-written bytes or nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealFs;

/// Shared default instance for [`crate::store::StoreOptions::default`].
pub static REAL_FS: RealFs = RealFs;

impl StoreFs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        fs::read_to_string(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use io::Write;
        let mut f = fs::File::create(path)?;
        f.write_all(data)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        fs::metadata(path).map(|m| m.len())
    }

    fn create_lock(&self, path: &Path) -> io::Result<()> {
        fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map(|_| ())
    }
}

#[cfg(feature = "fault-inject")]
pub use fault::{FaultFs, FaultKind, FaultPlan};

#[cfg(feature = "fault-inject")]
mod fault {
    use super::{RealFs, StoreFs};
    use std::io;
    use std::path::Path;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// What kind of fault to inject at a chosen operation.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum FaultKind {
        /// A read fails with `ErrorKind::Interrupted`.
        ReadError,
        /// Any operation fails with `ErrorKind::Interrupted` before it
        /// touches the disk.
        Interrupted,
        /// A write persists only a prefix of the bytes, then errors —
        /// the on-disk file is silently truncated, as after a crash
        /// mid-write.
        ShortWrite,
        /// A rename leaves a *partial* copy at the destination and
        /// removes the source — the worst case on a non-atomic
        /// filesystem interrupted mid-move.
        TornRename,
    }

    /// When to inject.
    #[derive(Debug)]
    pub enum FaultPlan {
        /// Inject `kind` at exactly the `op`-th filesystem operation
        /// (0-based); all other operations pass through.
        Nth { kind: FaultKind, op: usize },
        /// Seeded pseudo-random schedule: each operation faults with
        /// probability `1/rate`, kind drawn from the same stream. Fully
        /// determined by the seed (given a deterministic op order).
        Seeded { state: Mutex<u64>, rate: u64 },
    }

    /// A [`StoreFs`] that wraps [`RealFs`] and injects faults per its
    /// plan. Operation counting is global across all methods, so a plan
    /// index addresses "the k-th thing the store did to the disk".
    #[derive(Debug)]
    pub struct FaultFs {
        inner: RealFs,
        plan: FaultPlan,
        ops: AtomicUsize,
        injected: AtomicUsize,
    }

    impl FaultFs {
        /// Fault exactly the `op`-th operation with `kind`.
        pub fn fail_nth(kind: FaultKind, op: usize) -> Self {
            FaultFs {
                inner: RealFs,
                plan: FaultPlan::Nth { kind, op },
                ops: AtomicUsize::new(0),
                injected: AtomicUsize::new(0),
            }
        }

        /// Seeded random schedule; roughly one in `rate` operations
        /// faults.
        pub fn seeded(seed: u64, rate: u64) -> Self {
            FaultFs {
                inner: RealFs,
                plan: FaultPlan::Seeded {
                    state: Mutex::new(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1),
                    rate: rate.max(1),
                },
                ops: AtomicUsize::new(0),
                injected: AtomicUsize::new(0),
            }
        }

        /// Total filesystem operations attempted so far.
        pub fn ops(&self) -> usize {
            self.ops.load(Ordering::SeqCst)
        }

        /// Faults actually injected so far.
        pub fn injected(&self) -> usize {
            self.injected.load(Ordering::SeqCst)
        }

        /// Decide whether the current operation faults, and how.
        fn fault(&self) -> Option<FaultKind> {
            let op = self.ops.fetch_add(1, Ordering::SeqCst);
            let kind = match &self.plan {
                FaultPlan::Nth { kind, op: target } => (op == *target).then_some(*kind),
                FaultPlan::Seeded { state, rate } => {
                    let mut s = state.lock().unwrap_or_else(|e| e.into_inner());
                    // xorshift64* — tiny, deterministic, good enough.
                    *s ^= *s << 13;
                    *s ^= *s >> 7;
                    *s ^= *s << 17;
                    let draw = s.wrapping_mul(0x2545F4914F6CDD1D);
                    (draw % *rate == 0).then_some(match (draw >> 32) % 4 {
                        0 => FaultKind::ReadError,
                        1 => FaultKind::Interrupted,
                        2 => FaultKind::ShortWrite,
                        _ => FaultKind::TornRename,
                    })
                }
            };
            if kind.is_some() {
                self.injected.fetch_add(1, Ordering::SeqCst);
            }
            kind
        }
    }

    fn interrupted(what: &str, path: &Path) -> io::Error {
        io::Error::new(
            io::ErrorKind::Interrupted,
            format!("injected fault: {what} {} interrupted", path.display()),
        )
    }

    impl StoreFs for FaultFs {
        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            match self.fault() {
                Some(_) => Err(interrupted("read of", path)),
                None => self.inner.read(path),
            }
        }

        fn read_to_string(&self, path: &Path) -> io::Result<String> {
            match self.fault() {
                Some(_) => Err(interrupted("read of", path)),
                None => self.inner.read_to_string(path),
            }
        }

        fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
            match self.fault() {
                Some(FaultKind::ShortWrite) => {
                    // Persist half the bytes, then fail: a torn write.
                    let _ = self.inner.write(path, &data[..data.len() / 2]);
                    Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        format!("injected fault: short write to {}", path.display()),
                    ))
                }
                Some(_) => Err(interrupted("write to", path)),
                None => self.inner.write(path, data),
            }
        }

        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            match self.fault() {
                Some(FaultKind::TornRename) => {
                    // Leave a partial destination and no source — the
                    // worst a non-atomic move can do.
                    if let Ok(bytes) = self.inner.read(from) {
                        let _ = self.inner.write(to, &bytes[..bytes.len() / 2]);
                    }
                    let _ = self.inner.remove_file(from);
                    Err(interrupted("rename of", from))
                }
                Some(_) => Err(interrupted("rename of", from)),
                None => self.inner.rename(from, to),
            }
        }

        fn remove_file(&self, path: &Path) -> io::Result<()> {
            match self.fault() {
                Some(_) => Err(interrupted("remove of", path)),
                None => self.inner.remove_file(path),
            }
        }

        fn file_len(&self, path: &Path) -> io::Result<u64> {
            match self.fault() {
                Some(_) => Err(interrupted("stat of", path)),
                None => self.inner.file_len(path),
            }
        }

        fn create_lock(&self, path: &Path) -> io::Result<()> {
            match self.fault() {
                Some(_) => Err(interrupted("lock of", path)),
                None => self.inner.create_lock(path),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_fs_roundtrip_and_lock() {
        let dir = std::env::temp_dir().join(format!("provbench-fsio-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let f = dir.join("a.bin");
        REAL_FS.write(&f, b"hello").unwrap();
        assert_eq!(REAL_FS.read(&f).unwrap(), b"hello");
        assert_eq!(REAL_FS.read_to_string(&f).unwrap(), "hello");
        assert_eq!(REAL_FS.file_len(&f).unwrap(), 5);
        let g = dir.join("b.bin");
        REAL_FS.rename(&f, &g).unwrap();
        assert!(!f.exists() && g.exists());

        let lock = dir.join("l.lock");
        REAL_FS.create_lock(&lock).unwrap();
        let again = REAL_FS.create_lock(&lock).unwrap_err();
        assert_eq!(again.kind(), io::ErrorKind::AlreadyExists);
        REAL_FS.remove_file(&lock).unwrap();
        REAL_FS.create_lock(&lock).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }
}
