//! # provbench-core
//!
//! The PROV-corpus itself — the paper's contribution. This crate
//! orchestrates the two engine simulators to re-create the corpus's
//! *shape*: 120 workflows over 12 domains, 198 runs of which 30 failed,
//! one RDF file per run (Turtle for Taverna, TriG for Wings) plus one
//! workflow-description file per template, and the statistics behind the
//! paper's Table 1 and Figure 1.
//!
//! * [`spec`] — the corpus specification and the deterministic run plan;
//! * [`generate`] — in-memory corpus generation;
//! * [`store`] — the on-disk layout (save/load round-trip);
//! * [`stats`] — Table 1 / Figure 1 statistics.
//!
//! ## Example
//!
//! ```
//! use provbench_core::{Corpus, CorpusSpec};
//!
//! // A miniature corpus for the doctest (the real one uses `default()`).
//! let spec = CorpusSpec { max_workflows: Some(4), total_runs: 7, failed_runs: 2, ..CorpusSpec::default() };
//! let corpus = Corpus::generate(&spec);
//! assert_eq!(corpus.traces.len(), 7);
//! assert_eq!(corpus.traces.iter().filter(|t| t.failed()).count(), 2);
//! ```

pub mod fsio;
pub mod generate;
pub mod ingest;
pub mod ro;
pub mod snapshot;
pub mod spec;
pub mod stats;
pub mod store;

pub use fsio::{RealFs, StoreFs, REAL_FS};
pub use generate::{Corpus, TraceRecord};
pub use ingest::{IngestError, IngestReport, INGEST_REPORT_FILE};
pub use ro::{corpus_research_objects, research_object_for};
pub use spec::{CorpusSpec, PlannedRun, RunPlan};
pub use stats::{CorpusStats, DomainRow, Table1};
pub use store::{
    CorpusStore, LoadOutcome, LoadedCorpus, LoadedDescription, LoadedTrace, SnapshotProvenance,
    StoreOptions,
};

#[cfg(feature = "fault-inject")]
pub use fsio::{FaultFs, FaultKind};
