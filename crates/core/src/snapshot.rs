//! Binary corpus snapshots.
//!
//! Parsing the full 198-run corpus from Turtle/TriG is the dominant cost
//! of every cold `query`/`serve`/`lint` invocation. A snapshot caches the
//! parsed corpus in one compact binary file (`corpus.snapshot`, at the
//! corpus root) that memory-loads without touching a parser:
//!
//! ```text
//! header   magic "PBSNAP" (6) | version u16 LE | fnv1a-64(body) u64 LE
//! body     source file count, source byte count        (varints)
//!          global term table                           (tagged terms)
//!          descriptions: system, template, slab        (per workflow)
//!          traces: run id, system, template,
//!                  default slab, named-graph slabs     (per run)
//!          union predicate stats: (pred gid, count)    (planner input)
//! ```
//!
//! Slabs hold id-triples over the *global* term table, sorted and
//! delta-compressed (see [`provbench_rdf::codec`]). On load each graph
//! compacts the global ids it uses into a dense local table — an `Arc`
//! clone per term, no string parsing. Every decode path validates:
//! a bad magic, unknown version, checksum mismatch, malformed term,
//! out-of-range id or stats disagreement yields [`SnapshotError`] and the
//! caller falls back to a clean rebuild from the RDF sources — never a
//! panic, never silently wrong data.

use crate::store::{LoadedCorpus, LoadedDescription, LoadedTrace};
use provbench_rdf::codec::{
    read_slab, read_term_table, write_slab, write_string, write_term_table, Reader,
};
use provbench_rdf::{Dataset, Graph, GraphName, Term, TermId};
use provbench_workflow::execution::fnv1a;
use provbench_workflow::System;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Snapshot file name, stored at the corpus directory root.
pub const SNAPSHOT_FILE: &str = "corpus.snapshot";

/// File magic: identifies a ProvBench snapshot regardless of version.
pub const MAGIC: [u8; 6] = *b"PBSNAP";

/// Current format version. Bump on any body-layout change; older readers
/// reject newer files (and vice versa) and rebuild from source.
pub const VERSION: u16 = 1;

/// Fixed header length: magic + version + checksum.
pub const HEADER_LEN: usize = 6 + 2 + 8;

/// Why a snapshot could not be used. Every variant is recoverable — the
/// caller rebuilds from the RDF sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// File shorter than the fixed header.
    Truncated,
    /// The first six bytes are not [`MAGIC`].
    BadMagic,
    /// Version field differs from [`VERSION`].
    Version(u16),
    /// Body bytes do not hash to the checksum in the header.
    Checksum,
    /// The body failed structural validation (bad term, id out of range,
    /// stats mismatch, trailing bytes, …).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "file shorter than the {HEADER_LEN}-byte header"),
            SnapshotError::BadMagic => write!(f, "not a ProvBench snapshot (bad magic)"),
            SnapshotError::Version(v) => {
                write!(f, "snapshot version {v} (this build reads {VERSION})")
            }
            SnapshotError::Checksum => write!(f, "body checksum mismatch"),
            SnapshotError::Corrupt(m) => write!(f, "corrupt snapshot body: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

/// A decoded snapshot: the corpus, the pre-merged union graph, and the
/// source fingerprint recorded at build time.
#[derive(Debug, Clone)]
pub struct DecodedSnapshot {
    /// The corpus exactly as [`crate::store::load`] would return it.
    pub corpus: LoadedCorpus,
    /// Union of every graph (same as
    /// `corpus.combined_dataset().union_graph()`), rebuilt from the slabs
    /// and cross-checked against the persisted predicate statistics.
    pub union: Graph,
    /// Number of source RDF files when the snapshot was built.
    pub source_files: u64,
    /// Total size in bytes of those files.
    pub source_bytes: u64,
}

fn system_tag(system: System) -> u8 {
    match system {
        System::Taverna => 0,
        System::Wings => 1,
    }
}

fn system_from_tag(tag: u8) -> Result<System, SnapshotError> {
    match tag {
        0 => Ok(System::Taverna),
        1 => Ok(System::Wings),
        other => Err(corrupt(format!("unknown system tag {other}"))),
    }
}

/// Interner over the whole corpus: every graph's slab shares one table.
#[derive(Default)]
struct GlobalTable {
    ids: HashMap<Term, u32>,
    terms: Vec<Term>,
}

impl GlobalTable {
    fn intern(&mut self, term: &Term) -> u32 {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = u32::try_from(self.terms.len()).expect("term table overflow");
        self.ids.insert(term.clone(), id);
        self.terms.push(term.clone());
        id
    }
}

/// One graph as sorted global-id triples.
type Slab = Vec<(u32, u32, u32)>;

/// Remap one graph's local ids to global ids and return its sorted slab.
fn global_slab(graph: &Graph, table: &mut GlobalTable) -> Slab {
    let gids: Vec<u32> = graph
        .interned_terms()
        .iter()
        .map(|t| table.intern(t))
        .collect();
    let mut slab: Slab = graph
        .ids_matching(None, None, None)
        .map(|(s, p, o)| {
            (
                gids[s.to_u32() as usize],
                gids[p.to_u32() as usize],
                gids[o.to_u32() as usize],
            )
        })
        .collect();
    slab.sort_unstable();
    slab
}

/// Reusable global→local id scratch table: one slot per global term,
/// generation-stamped so clearing between graphs is O(1) instead of a
/// re-allocation or a hash map per slab.
struct Compactor {
    slots: Vec<(u32, u32)>,
    generation: u32,
}

impl Compactor {
    fn new(table_len: usize) -> Self {
        Compactor {
            slots: vec![(0, 0); table_len],
            generation: 0,
        }
    }
}

/// Rebuild a graph from a global-id slab: compact the global ids it uses
/// into a dense local table (first-seen order), then hand off to the
/// validating [`Graph::from_interned`].
fn graph_from_slab(
    terms: &[Term],
    slab: &[(u32, u32, u32)],
    scratch: &mut Compactor,
) -> Result<Graph, SnapshotError> {
    scratch.generation += 1;
    let generation = scratch.generation;
    let mut local_terms: Vec<Term> = Vec::new();
    let mut local_triples = Vec::with_capacity(slab.len());
    {
        let mut local = |gid: u32| -> Result<u32, SnapshotError> {
            let slot = scratch
                .slots
                .get_mut(gid as usize)
                .ok_or_else(|| corrupt(format!("term id {gid} beyond table")))?;
            if slot.0 == generation {
                return Ok(slot.1);
            }
            let l = u32::try_from(local_terms.len()).expect("local table overflow");
            local_terms.push(terms[gid as usize].clone());
            *slot = (generation, l);
            Ok(l)
        };
        for &(s, p, o) in slab {
            local_triples.push((local(s)?, local(p)?, local(o)?));
        }
    }
    Graph::from_interned(local_terms, local_triples).map_err(|e| corrupt(e.to_string()))
}

/// Serialize a corpus into a complete snapshot file (header + body).
///
/// `source_files`/`source_bytes` fingerprint the RDF tree the corpus was
/// parsed from; [`decode`] hands them back so the loader can detect a
/// changed source tree and rebuild.
pub fn encode(corpus: &LoadedCorpus, source_files: u64, source_bytes: u64) -> Vec<u8> {
    let mut table = GlobalTable::default();
    let mut union: BTreeSet<(u32, u32, u32)> = BTreeSet::new();

    // Intern every graph first so the term table can be written before
    // the slabs. Slab order mirrors the corpus vectors.
    let description_slabs: Vec<Slab> = corpus
        .descriptions
        .iter()
        .map(|d| global_slab(&d.graph, &mut table))
        .collect();
    let trace_slabs: Vec<(Slab, Vec<(u32, Slab)>)> = corpus
        .traces
        .iter()
        .map(|t| {
            let default = global_slab(t.dataset.default_graph(), &mut table);
            let named: Vec<(u32, Slab)> = t
                .dataset
                .named_graphs()
                .map(|(name, g)| {
                    let name_id = table.intern(&Term::from(name.clone()));
                    (name_id, global_slab(g, &mut table))
                })
                .collect();
            (default, named)
        })
        .collect();
    for slab in description_slabs
        .iter()
        .chain(trace_slabs.iter().flat_map(|(default, named)| {
            std::iter::once(default).chain(named.iter().map(|(_, slab)| slab))
        }))
    {
        union.extend(slab.iter().copied());
    }

    // Union predicate statistics — the planner's cardinality input,
    // persisted so a warm load can serve it without a counting pass and
    // verified on load as an integrity check.
    let mut stats: BTreeMap<u32, u64> = BTreeMap::new();
    for &(_, p, _) in &union {
        *stats.entry(p).or_insert(0) += 1;
    }

    let mut body = Vec::new();
    provbench_rdf::codec::write_varint(&mut body, source_files);
    provbench_rdf::codec::write_varint(&mut body, source_bytes);
    write_term_table(&mut body, &table.terms);
    provbench_rdf::codec::write_varint(&mut body, corpus.descriptions.len() as u64);
    for (d, slab) in corpus.descriptions.iter().zip(&description_slabs) {
        body.push(system_tag(d.system));
        write_string(&mut body, &d.template_name);
        write_slab(&mut body, slab);
    }
    provbench_rdf::codec::write_varint(&mut body, corpus.traces.len() as u64);
    for (t, (default, named)) in corpus.traces.iter().zip(&trace_slabs) {
        write_string(&mut body, &t.run_id);
        body.push(system_tag(t.system));
        write_string(&mut body, &t.template_name);
        write_slab(&mut body, default);
        provbench_rdf::codec::write_varint(&mut body, named.len() as u64);
        for (name_id, slab) in named {
            provbench_rdf::codec::write_varint(&mut body, u64::from(*name_id));
            write_slab(&mut body, slab);
        }
    }
    provbench_rdf::codec::write_varint(&mut body, stats.len() as u64);
    for (p, count) in &stats {
        provbench_rdf::codec::write_varint(&mut body, u64::from(*p));
        provbench_rdf::codec::write_varint(&mut body, *count);
    }

    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&fnv1a(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

fn read_byte(r: &mut Reader<'_>) -> Result<u8, SnapshotError> {
    let v = r.read_varint().map_err(|e| corrupt(e.to_string()))?;
    u8::try_from(v).map_err(|_| corrupt(format!("tag value {v} exceeds one byte")))
}

/// Decode and fully validate a snapshot file.
pub fn decode(bytes: &[u8]) -> Result<DecodedSnapshot, SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..6] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[6], bytes[7]]);
    if version != VERSION {
        return Err(SnapshotError::Version(version));
    }
    let checksum = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let body = &bytes[HEADER_LEN..];
    if fnv1a(body) != checksum {
        return Err(SnapshotError::Checksum);
    }

    let c = |e: provbench_rdf::RdfError| corrupt(e.to_string());
    let mut r = Reader::new(body);
    let source_files = r.read_varint().map_err(c)?;
    let source_bytes = r.read_varint().map_err(c)?;
    let terms = read_term_table(&mut r).map_err(c)?;

    let mut corpus = LoadedCorpus::default();
    // Slabs are individually sorted; collect them all and sort + dedup
    // once instead of maintaining an ordered set incrementally.
    let mut union_slab: Vec<(u32, u32, u32)> = Vec::new();
    let mut scratch = Compactor::new(terms.len());

    let description_count = r.read_varint().map_err(c)? as usize;
    for _ in 0..description_count {
        let system = system_from_tag(read_byte(&mut r)?)?;
        let template_name = r.read_string().map_err(c)?;
        let slab = read_slab(&mut r).map_err(c)?;
        let graph = graph_from_slab(&terms, &slab, &mut scratch)?;
        union_slab.extend_from_slice(&slab);
        corpus.descriptions.push(LoadedDescription {
            system,
            template_name,
            graph,
        });
    }

    let trace_count = r.read_varint().map_err(c)? as usize;
    for _ in 0..trace_count {
        let run_id = r.read_string().map_err(c)?;
        let system = system_from_tag(read_byte(&mut r)?)?;
        let template_name = r.read_string().map_err(c)?;
        let default_slab = read_slab(&mut r).map_err(c)?;
        let mut dataset = Dataset::new();
        *dataset.default_graph_mut() = graph_from_slab(&terms, &default_slab, &mut scratch)?;
        union_slab.extend_from_slice(&default_slab);
        let named_count = r.read_varint().map_err(c)? as usize;
        for _ in 0..named_count {
            let name_id = r.read_u32().map_err(c)?;
            let name: GraphName = match terms.get(name_id as usize) {
                Some(Term::Iri(i)) => i.clone().into(),
                Some(Term::Blank(b)) => b.clone().into(),
                Some(Term::Literal(_)) => {
                    return Err(corrupt(format!("literal graph name (id {name_id})")))
                }
                None => return Err(corrupt(format!("graph name id {name_id} beyond table"))),
            };
            let slab = read_slab(&mut r).map_err(c)?;
            let graph = graph_from_slab(&terms, &slab, &mut scratch)?;
            union_slab.extend_from_slice(&slab);
            if dataset.named_graph(&name).is_some() {
                return Err(corrupt(format!("duplicate named graph {name:?}")));
            }
            *dataset.named_graph_mut(name) = graph;
        }
        corpus.traces.push(LoadedTrace {
            run_id,
            system,
            template_name,
            dataset,
        });
    }

    // The union graph keeps the global id space (terms table as-is), so
    // the persisted stats can be checked id-for-id.
    union_slab.sort_unstable();
    union_slab.dedup();
    let union = Graph::from_interned(terms, union_slab).map_err(|e| corrupt(e.to_string()))?;

    let stats_count = r.read_varint().map_err(c)? as usize;
    let mut seen_preds = 0usize;
    for _ in 0..stats_count {
        let p = r.read_u32().map_err(c)?;
        let count = r.read_varint().map_err(c)?;
        let actual = union.predicate_cardinality(TermId::from_u32(p)) as u64;
        if actual != count {
            return Err(corrupt(format!(
                "stats claim predicate {p} occurs {count} times, slabs say {actual}"
            )));
        }
        seen_preds += 1;
    }
    if seen_preds != union.predicates().len() {
        return Err(corrupt(format!(
            "stats cover {seen_preds} predicates, union graph has {}",
            union.predicates().len()
        )));
    }
    if !r.is_empty() {
        return Err(corrupt(format!("{} trailing bytes", r.remaining())));
    }

    Ok(DecodedSnapshot {
        corpus,
        union,
        source_files,
        source_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CorpusSpec;
    use crate::store;
    use provbench_rdf::{Iri, Literal, Triple};

    fn sample_corpus() -> LoadedCorpus {
        // Generate in memory and convert via the loaded types so the
        // snapshot sees exactly what disk loading produces.
        let spec = CorpusSpec {
            max_workflows: Some(70),
            total_runs: 72,
            failed_runs: 1,
            ..CorpusSpec::default()
        };
        let corpus = crate::Corpus::generate(&spec);
        LoadedCorpus {
            descriptions: corpus
                .templates
                .iter()
                .zip(&corpus.descriptions)
                .map(|((system, t), g)| LoadedDescription {
                    system: *system,
                    template_name: t.name.clone(),
                    graph: g.clone(),
                })
                .collect(),
            traces: corpus
                .traces
                .iter()
                .map(|t| LoadedTrace {
                    run_id: t.run_id.clone(),
                    system: t.system,
                    template_name: t.template_name.clone(),
                    dataset: t.dataset.clone(),
                })
                .collect(),
        }
    }

    #[test]
    fn roundtrip_preserves_corpus_and_union() {
        let corpus = sample_corpus();
        let bytes = encode(&corpus, 42, 1234);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.source_files, 42);
        assert_eq!(decoded.source_bytes, 1234);
        assert_eq!(decoded.corpus.descriptions.len(), corpus.descriptions.len());
        assert_eq!(decoded.corpus.traces.len(), corpus.traces.len());
        for (a, b) in corpus.descriptions.iter().zip(&decoded.corpus.descriptions) {
            assert_eq!(a.system, b.system);
            assert_eq!(a.template_name, b.template_name);
            assert_eq!(a.graph, b.graph);
        }
        for (a, b) in corpus.traces.iter().zip(&decoded.corpus.traces) {
            assert_eq!(a.run_id, b.run_id);
            assert_eq!(a.system, b.system);
            assert_eq!(a.template_name, b.template_name);
            assert_eq!(a.dataset, b.dataset);
        }
        assert_eq!(decoded.union, corpus.combined_dataset().union_graph());
    }

    #[test]
    fn encoding_is_deterministic() {
        let corpus = sample_corpus();
        assert_eq!(encode(&corpus, 1, 2), encode(&corpus, 1, 2));
    }

    #[test]
    fn header_validation() {
        let corpus = sample_corpus();
        let bytes = encode(&corpus, 1, 2);

        assert_eq!(decode(&bytes[..10]).unwrap_err(), SnapshotError::Truncated);

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode(&bad_magic).unwrap_err(), SnapshotError::BadMagic);

        let mut bad_version = bytes.clone();
        bad_version[6] = 0xFF;
        bad_version[7] = 0xFF;
        assert_eq!(
            decode(&bad_version).unwrap_err(),
            SnapshotError::Version(0xFFFF)
        );

        // Flip one body byte: checksum must catch it.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert_eq!(decode(&flipped).unwrap_err(), SnapshotError::Checksum);

        // Truncating the body is also a checksum failure, not a panic.
        let cut = &bytes[..bytes.len() - 20];
        assert_eq!(decode(cut).unwrap_err(), SnapshotError::Checksum);
    }

    #[test]
    fn corrupt_body_with_fixed_checksum_is_rejected() {
        // Re-seal a tampered body with a valid checksum: structural
        // validation has to catch what the checksum no longer can.
        let corpus = sample_corpus();
        let bytes = encode(&corpus, 1, 2);
        let mut body = bytes[HEADER_LEN..].to_vec();
        let last = body.len() - 1;
        body[last] = body[last].wrapping_add(1);
        let mut resealed = bytes[..8].to_vec();
        resealed.extend_from_slice(&fnv1a(&body).to_le_bytes());
        resealed.extend_from_slice(&body);
        assert!(matches!(
            decode(&resealed).unwrap_err(),
            SnapshotError::Corrupt(_) | SnapshotError::Checksum
        ));
    }

    #[test]
    fn stats_mismatch_is_corrupt() {
        // Hand-build a snapshot of one tiny graph, then tamper with the
        // stats section and re-seal the checksum.
        let mut g = Graph::new();
        g.insert(Triple::new(
            Iri::new("http://e/s").unwrap(),
            Iri::new("http://e/p").unwrap(),
            Literal::simple("x"),
        ));
        let corpus = LoadedCorpus {
            descriptions: vec![LoadedDescription {
                system: System::Taverna,
                template_name: "t".into(),
                graph: g,
            }],
            traces: vec![],
        };
        let bytes = encode(&corpus, 0, 0);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.union.len(), 1);

        let mut body = bytes[HEADER_LEN..].to_vec();
        // The stats section is the tail: (pred gid varint, count varint).
        // One predicate with count 1 → last byte is the count. Bump it.
        let last = body.len() - 1;
        assert_eq!(body[last], 1);
        body[last] = 2;
        let mut resealed = bytes[..8].to_vec();
        resealed.extend_from_slice(&fnv1a(&body).to_le_bytes());
        resealed.extend_from_slice(&body);
        let err = decode(&resealed).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Corrupt(ref m) if m.contains("stats")),
            "{err}"
        );
    }

    #[test]
    fn snapshot_is_much_smaller_than_turtle() {
        let corpus = sample_corpus();
        let turtle_bytes: usize = corpus
            .descriptions
            .iter()
            .map(|d| store::serialize_description(&d.graph).len())
            .sum::<usize>()
            + corpus
                .traces
                .iter()
                .map(|t| {
                    provbench_rdf::write_trig(&t.dataset, &provbench_rdf::PrefixMap::common()).len()
                })
                .sum::<usize>();
        let snapshot_bytes = encode(&corpus, 0, 0).len();
        assert!(
            snapshot_bytes < turtle_bytes,
            "snapshot {snapshot_bytes} B should beat Turtle {turtle_bytes} B"
        );
    }
}
