//! Binary corpus snapshots.
//!
//! Parsing the full 198-run corpus from Turtle/TriG is the dominant cost
//! of every cold `query`/`serve`/`lint` invocation. A snapshot caches the
//! parsed corpus in one compact binary file (`corpus.snapshot`, at the
//! corpus root) that memory-loads without touching a parser:
//!
//! ```text
//! header   magic "PBSNAP" (6) | version u16 LE | fnv1a-64(body) u64 LE
//! body     source file count, source byte count        (varints)
//!          source manifest: (rel path, byte size)      (per source file)
//!          global term table                           (tagged terms)
//!          descriptions: system, template, slab        (per workflow)
//!          traces: run id, system, template,
//!                  default slab, named-graph slabs     (per run)
//!          union predicate stats: (pred gid, count)    (planner input)
//! ```
//!
//! Slabs hold id-triples over the *global* term table, sorted and
//! delta-compressed (see [`provbench_rdf::codec`]). On load each graph
//! compacts the global ids it uses into a dense local table — an `Arc`
//! clone per term, no string parsing. Every decode path validates:
//! a bad magic, unknown version, checksum mismatch, malformed term,
//! out-of-range id or stats disagreement yields [`SnapshotError`] and the
//! caller falls back to a clean rebuild from the RDF sources — never a
//! panic, never silently wrong data.

use crate::store::{LoadedCorpus, LoadedDescription, LoadedTrace};
use provbench_rdf::codec::{
    read_slab, read_term_table, write_slab, write_string, write_term_table, Reader,
};
use provbench_rdf::{Dataset, Graph, GraphName, Term, TermId};
use provbench_workflow::execution::fnv1a;
use provbench_workflow::System;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Snapshot file name, stored at the corpus directory root.
pub const SNAPSHOT_FILE: &str = "corpus.snapshot";

/// File magic: identifies a ProvBench snapshot regardless of version.
pub const MAGIC: [u8; 6] = *b"PBSNAP";

/// Current format version. Bump on any body-layout change; older readers
/// reject newer files (and vice versa) and rebuild from source.
///
/// History: v1 had no source manifest; v2 adds the per-file
/// `(relative path, byte size)` manifest so a stale-snapshot rebuild can
/// name exactly which files changed.
pub const VERSION: u16 = 2;

/// Fixed header length: magic + version + checksum.
pub const HEADER_LEN: usize = 6 + 2 + 8;

/// Why a snapshot could not be used. Every variant is recoverable — the
/// caller rebuilds from the RDF sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// File shorter than the fixed header.
    Truncated,
    /// The first six bytes are not [`MAGIC`].
    BadMagic,
    /// Version field differs from [`VERSION`].
    Version(u16),
    /// Body bytes do not hash to the checksum in the header.
    Checksum,
    /// The body failed structural validation (bad term, id out of range,
    /// stats mismatch, trailing bytes, …).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "file shorter than the {HEADER_LEN}-byte header"),
            SnapshotError::BadMagic => write!(f, "not a ProvBench snapshot (bad magic)"),
            SnapshotError::Version(v) => {
                write!(f, "snapshot version {v} (this build reads {VERSION})")
            }
            SnapshotError::Checksum => write!(f, "body checksum mismatch"),
            SnapshotError::Corrupt(m) => write!(f, "corrupt snapshot body: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

/// A decoded snapshot: the corpus, the pre-merged union graph, and the
/// source fingerprint recorded at build time.
#[derive(Debug, Clone)]
pub struct DecodedSnapshot {
    /// The corpus exactly as [`crate::store::load`] would return it.
    pub corpus: LoadedCorpus,
    /// Union of every graph (same as
    /// `corpus.combined_dataset().union_graph()`), rebuilt from the slabs
    /// and cross-checked against the persisted predicate statistics.
    pub union: Graph,
    /// Number of source RDF files when the snapshot was built.
    pub source_files: u64,
    /// Total size in bytes of those files.
    pub source_bytes: u64,
    /// `(relative path, byte size)` of every source file at build time,
    /// sorted by path — lets the loader report *which* files changed
    /// when it decides to rebuild.
    pub manifest: Vec<(String, u64)>,
}

fn system_tag(system: System) -> u8 {
    match system {
        System::Taverna => 0,
        System::Wings => 1,
    }
}

fn system_from_tag(tag: u8) -> Result<System, SnapshotError> {
    match tag {
        0 => Ok(System::Taverna),
        1 => Ok(System::Wings),
        other => Err(corrupt(format!("unknown system tag {other}"))),
    }
}

/// Interner over the whole corpus: every graph's slab shares one table.
#[derive(Default)]
struct GlobalTable {
    ids: HashMap<Term, u32>,
    terms: Vec<Term>,
}

impl GlobalTable {
    fn intern(&mut self, term: &Term) -> u32 {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = u32::try_from(self.terms.len()).expect("term table overflow");
        self.ids.insert(term.clone(), id);
        self.terms.push(term.clone());
        id
    }
}

/// One graph as sorted global-id triples.
type Slab = Vec<(u32, u32, u32)>;

/// Remap one graph's local ids to global ids and return its sorted slab.
fn global_slab(graph: &Graph, table: &mut GlobalTable) -> Slab {
    let gids: Vec<u32> = graph
        .interned_terms()
        .iter()
        .map(|t| table.intern(t))
        .collect();
    let mut slab: Slab = graph
        .ids_matching(None, None, None)
        .map(|(s, p, o)| {
            (
                gids[s.to_u32() as usize],
                gids[p.to_u32() as usize],
                gids[o.to_u32() as usize],
            )
        })
        .collect();
    slab.sort_unstable();
    slab
}

/// Reusable global→local id scratch table: one slot per global term,
/// generation-stamped so clearing between graphs is O(1) instead of a
/// re-allocation or a hash map per slab.
struct Compactor {
    slots: Vec<(u32, u32)>,
    generation: u32,
}

impl Compactor {
    fn new(table_len: usize) -> Self {
        Compactor {
            slots: vec![(0, 0); table_len],
            generation: 0,
        }
    }
}

/// Rebuild a graph from a global-id slab: compact the global ids it uses
/// into a dense local table (first-seen order), then hand off to the
/// validating [`Graph::from_interned`].
fn graph_from_slab(
    terms: &[Term],
    slab: &[(u32, u32, u32)],
    scratch: &mut Compactor,
) -> Result<Graph, SnapshotError> {
    scratch.generation += 1;
    let generation = scratch.generation;
    let mut local_terms: Vec<Term> = Vec::new();
    let mut local_triples = Vec::with_capacity(slab.len());
    {
        let mut local = |gid: u32| -> Result<u32, SnapshotError> {
            let slot = scratch
                .slots
                .get_mut(gid as usize)
                .ok_or_else(|| corrupt(format!("term id {gid} beyond table")))?;
            if slot.0 == generation {
                return Ok(slot.1);
            }
            let l = u32::try_from(local_terms.len()).expect("local table overflow");
            local_terms.push(terms[gid as usize].clone());
            *slot = (generation, l);
            Ok(l)
        };
        for &(s, p, o) in slab {
            local_triples.push((local(s)?, local(p)?, local(o)?));
        }
    }
    Graph::from_interned(local_terms, local_triples).map_err(|e| corrupt(e.to_string()))
}

/// Serialize a corpus into a complete snapshot file (header + body).
///
/// `source_files`/`source_bytes` fingerprint the RDF tree the corpus was
/// parsed from and `manifest` records the per-file breakdown (may be
/// empty when the corpus never touched disk); [`decode`] hands them back
/// so the loader can detect a changed source tree, name the changed
/// files, and rebuild.
pub fn encode(
    corpus: &LoadedCorpus,
    source_files: u64,
    source_bytes: u64,
    manifest: &[(String, u64)],
) -> Vec<u8> {
    let mut table = GlobalTable::default();
    let mut union: BTreeSet<(u32, u32, u32)> = BTreeSet::new();

    // Intern every graph first so the term table can be written before
    // the slabs. Slab order mirrors the corpus vectors.
    let description_slabs: Vec<Slab> = corpus
        .descriptions
        .iter()
        .map(|d| global_slab(&d.graph, &mut table))
        .collect();
    let trace_slabs: Vec<(Slab, Vec<(u32, Slab)>)> = corpus
        .traces
        .iter()
        .map(|t| {
            let default = global_slab(t.dataset.default_graph(), &mut table);
            let named: Vec<(u32, Slab)> = t
                .dataset
                .named_graphs()
                .map(|(name, g)| {
                    let name_id = table.intern(&Term::from(name.clone()));
                    (name_id, global_slab(g, &mut table))
                })
                .collect();
            (default, named)
        })
        .collect();
    for slab in description_slabs
        .iter()
        .chain(trace_slabs.iter().flat_map(|(default, named)| {
            std::iter::once(default).chain(named.iter().map(|(_, slab)| slab))
        }))
    {
        union.extend(slab.iter().copied());
    }

    // Union predicate statistics — the planner's cardinality input,
    // persisted so a warm load can serve it without a counting pass and
    // verified on load as an integrity check.
    let mut stats: BTreeMap<u32, u64> = BTreeMap::new();
    for &(_, p, _) in &union {
        *stats.entry(p).or_insert(0) += 1;
    }

    let mut body = Vec::new();
    provbench_rdf::codec::write_varint(&mut body, source_files);
    provbench_rdf::codec::write_varint(&mut body, source_bytes);
    provbench_rdf::codec::write_varint(&mut body, manifest.len() as u64);
    for (path, size) in manifest {
        write_string(&mut body, path);
        provbench_rdf::codec::write_varint(&mut body, *size);
    }
    write_term_table(&mut body, &table.terms);
    provbench_rdf::codec::write_varint(&mut body, corpus.descriptions.len() as u64);
    for (d, slab) in corpus.descriptions.iter().zip(&description_slabs) {
        body.push(system_tag(d.system));
        write_string(&mut body, &d.template_name);
        write_slab(&mut body, slab);
    }
    provbench_rdf::codec::write_varint(&mut body, corpus.traces.len() as u64);
    for (t, (default, named)) in corpus.traces.iter().zip(&trace_slabs) {
        write_string(&mut body, &t.run_id);
        body.push(system_tag(t.system));
        write_string(&mut body, &t.template_name);
        write_slab(&mut body, default);
        provbench_rdf::codec::write_varint(&mut body, named.len() as u64);
        for (name_id, slab) in named {
            provbench_rdf::codec::write_varint(&mut body, u64::from(*name_id));
            write_slab(&mut body, slab);
        }
    }
    provbench_rdf::codec::write_varint(&mut body, stats.len() as u64);
    for (p, count) in &stats {
        provbench_rdf::codec::write_varint(&mut body, u64::from(*p));
        provbench_rdf::codec::write_varint(&mut body, *count);
    }

    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&fnv1a(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

fn read_byte(r: &mut Reader<'_>) -> Result<u8, SnapshotError> {
    let v = r.read_varint().map_err(|e| corrupt(e.to_string()))?;
    u8::try_from(v).map_err(|_| corrupt(format!("tag value {v} exceeds one byte")))
}

/// Decode and fully validate a snapshot file.
pub fn decode(bytes: &[u8]) -> Result<DecodedSnapshot, SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..6] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[6], bytes[7]]);
    if version != VERSION {
        return Err(SnapshotError::Version(version));
    }
    let checksum = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let body = &bytes[HEADER_LEN..];
    if fnv1a(body) != checksum {
        return Err(SnapshotError::Checksum);
    }

    let c = |e: provbench_rdf::RdfError| corrupt(e.to_string());
    let mut r = Reader::new(body);
    let source_files = r.read_varint().map_err(c)?;
    let source_bytes = r.read_varint().map_err(c)?;
    let manifest_count = r.read_varint().map_err(c)? as usize;
    let mut manifest = Vec::with_capacity(manifest_count.min(1 << 16));
    for _ in 0..manifest_count {
        let path = r.read_string().map_err(c)?;
        let size = r.read_varint().map_err(c)?;
        manifest.push((path, size));
    }
    let terms = read_term_table(&mut r).map_err(c)?;

    let mut corpus = LoadedCorpus::default();
    // Slabs are individually sorted; collect them all and sort + dedup
    // once instead of maintaining an ordered set incrementally.
    let mut union_slab: Vec<(u32, u32, u32)> = Vec::new();
    let mut scratch = Compactor::new(terms.len());

    let description_count = r.read_varint().map_err(c)? as usize;
    for _ in 0..description_count {
        let system = system_from_tag(read_byte(&mut r)?)?;
        let template_name = r.read_string().map_err(c)?;
        let slab = read_slab(&mut r).map_err(c)?;
        let graph = graph_from_slab(&terms, &slab, &mut scratch)?;
        union_slab.extend_from_slice(&slab);
        corpus.descriptions.push(LoadedDescription {
            system,
            template_name,
            graph,
        });
    }

    let trace_count = r.read_varint().map_err(c)? as usize;
    for _ in 0..trace_count {
        let run_id = r.read_string().map_err(c)?;
        let system = system_from_tag(read_byte(&mut r)?)?;
        let template_name = r.read_string().map_err(c)?;
        let default_slab = read_slab(&mut r).map_err(c)?;
        let mut dataset = Dataset::new();
        *dataset.default_graph_mut() = graph_from_slab(&terms, &default_slab, &mut scratch)?;
        union_slab.extend_from_slice(&default_slab);
        let named_count = r.read_varint().map_err(c)? as usize;
        for _ in 0..named_count {
            let name_id = r.read_u32().map_err(c)?;
            let name: GraphName = match terms.get(name_id as usize) {
                Some(Term::Iri(i)) => i.clone().into(),
                Some(Term::Blank(b)) => b.clone().into(),
                Some(Term::Literal(_)) => {
                    return Err(corrupt(format!("literal graph name (id {name_id})")))
                }
                None => return Err(corrupt(format!("graph name id {name_id} beyond table"))),
            };
            let slab = read_slab(&mut r).map_err(c)?;
            let graph = graph_from_slab(&terms, &slab, &mut scratch)?;
            union_slab.extend_from_slice(&slab);
            if dataset.named_graph(&name).is_some() {
                return Err(corrupt(format!("duplicate named graph {name:?}")));
            }
            *dataset.named_graph_mut(name) = graph;
        }
        corpus.traces.push(LoadedTrace {
            run_id,
            system,
            template_name,
            dataset,
        });
    }

    // The union graph keeps the global id space (terms table as-is), so
    // the persisted stats can be checked id-for-id.
    union_slab.sort_unstable();
    union_slab.dedup();
    let union = Graph::from_interned(terms, union_slab).map_err(|e| corrupt(e.to_string()))?;

    let stats_count = r.read_varint().map_err(c)? as usize;
    let mut seen_preds = 0usize;
    for _ in 0..stats_count {
        let p = r.read_u32().map_err(c)?;
        let count = r.read_varint().map_err(c)?;
        let actual = union.predicate_cardinality(TermId::from_u32(p)) as u64;
        if actual != count {
            return Err(corrupt(format!(
                "stats claim predicate {p} occurs {count} times, slabs say {actual}"
            )));
        }
        seen_preds += 1;
    }
    if seen_preds != union.predicates().len() {
        return Err(corrupt(format!(
            "stats cover {seen_preds} predicates, union graph has {}",
            union.predicates().len()
        )));
    }
    if !r.is_empty() {
        return Err(corrupt(format!("{} trailing bytes", r.remaining())));
    }

    Ok(DecodedSnapshot {
        corpus,
        union,
        source_files,
        source_bytes,
        manifest,
    })
}

// ---------------------------------------------------------------------------
// Lint snapshot (`corpus.lint.snapshot`)
//
// The incremental linter persists, per source file, the content
// fingerprint it analyzed, the per-file diagnostics it produced and the
// compact analysis summary the corpus-wide rules consume. The records
// here are deliberately *plain data* — rule ids are strings, severities
// are small integers — so `provbench-core` stays ignorant of the diag
// crate; `provbench-diag` owns the conversion in both directions.
// ---------------------------------------------------------------------------

/// Lint snapshot file name, stored at the lint root next to
/// [`SNAPSHOT_FILE`] when the lint root is the corpus directory.
pub const LINT_SNAPSHOT_FILE: &str = "corpus.lint.snapshot";

/// File magic of the lint snapshot.
pub const LINT_MAGIC: [u8; 6] = *b"PBLINT";

/// Current lint snapshot format version.
pub const LINT_VERSION: u16 = 1;

/// One event-precedence edge of a summary, in wire form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventEdgeRecord {
    /// Event kind code of the source endpoint (diag's `EventKind`).
    pub from_kind: u8,
    /// IRI of the source endpoint.
    pub from: String,
    /// Event kind code of the target endpoint.
    pub to_kind: u8,
    /// IRI of the target endpoint.
    pub to: String,
    /// Strict (`<`) rather than weak (`≤`) precedence.
    pub strict: bool,
    /// The edge stems from `prov:wasDerivedFrom`.
    pub derivation: bool,
}

/// A per-file analysis summary, in wire form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SummaryRecord {
    /// Non-vocabulary subject IRIs.
    pub declared: Vec<String>,
    /// `prov:used` targets.
    pub used_targets: Vec<String>,
    /// `prov:wasDerivedFrom` targets.
    pub derived_targets: Vec<String>,
    /// All non-vocabulary object IRIs.
    pub references: Vec<String>,
    /// `(derived, source)` pairs.
    pub derivations: Vec<(String, String)>,
    /// Event-precedence edges.
    pub events: Vec<EventEdgeRecord>,
    /// Smallest timestamp literal.
    pub time_min: Option<String>,
    /// Largest timestamp literal.
    pub time_max: Option<String>,
}

/// A secondary location of a diagnostic, in wire form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RelatedRecord {
    /// What the location contributes.
    pub message: String,
    /// File, when known.
    pub file: Option<String>,
    /// `(line, column, end_line, end_column)`, when known.
    pub span: Option<(u64, u64, u64, u64)>,
}

/// One cached diagnostic, in wire form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DiagnosticRecord {
    /// Stable rule id, e.g. `PB0107`.
    pub rule_id: String,
    /// Severity code: 0 info, 1 warning, 2 error.
    pub severity: u8,
    /// Human-readable detail.
    pub message: String,
    /// File label.
    pub file: Option<String>,
    /// `(line, column, end_line, end_column)`, when known.
    pub span: Option<(u64, u64, u64, u64)>,
    /// Offending node IRI.
    pub node: Option<String>,
    /// Secondary locations.
    pub related: Vec<RelatedRecord>,
}

/// One file's cache entry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintEntry {
    /// Corpus-relative label the file was linted under.
    pub path: String,
    /// FNV-1a-64 of the file's bytes at analysis time.
    pub fingerprint: u64,
    /// The per-file analysis summary.
    pub summary: SummaryRecord,
    /// The per-file diagnostics (corpus-rule diagnostics are *not*
    /// cached — they are re-solved from summaries on every run).
    pub diagnostics: Vec<DiagnosticRecord>,
}

/// The whole lint cache: a tool stamp plus one entry per file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintCache {
    /// Hash of the linter's rule catalog and version; a mismatch
    /// invalidates every entry (rule bodies may have changed).
    pub catalog: u64,
    /// Per-file entries, sorted by path.
    pub entries: Vec<LintEntry>,
}

fn write_opt_string(out: &mut Vec<u8>, value: &Option<String>) {
    match value {
        Some(s) => {
            out.push(1);
            write_string(out, s);
        }
        None => out.push(0),
    }
}

fn read_opt_string(r: &mut Reader<'_>) -> Result<Option<String>, SnapshotError> {
    match read_byte(r)? {
        0 => Ok(None),
        1 => Ok(Some(r.read_string().map_err(|e| corrupt(e.to_string()))?)),
        other => Err(corrupt(format!("bad option tag {other}"))),
    }
}

fn write_opt_span(out: &mut Vec<u8>, span: &Option<(u64, u64, u64, u64)>) {
    match span {
        Some((a, b, c, d)) => {
            out.push(1);
            for v in [a, b, c, d] {
                provbench_rdf::codec::write_varint(out, *v);
            }
        }
        None => out.push(0),
    }
}

fn read_opt_span(r: &mut Reader<'_>) -> Result<Option<(u64, u64, u64, u64)>, SnapshotError> {
    let c = |e: provbench_rdf::RdfError| corrupt(e.to_string());
    match read_byte(r)? {
        0 => Ok(None),
        1 => Ok(Some((
            r.read_varint().map_err(c)?,
            r.read_varint().map_err(c)?,
            r.read_varint().map_err(c)?,
            r.read_varint().map_err(c)?,
        ))),
        other => Err(corrupt(format!("bad option tag {other}"))),
    }
}

fn write_string_list(out: &mut Vec<u8>, list: &[String]) {
    provbench_rdf::codec::write_varint(out, list.len() as u64);
    for s in list {
        write_string(out, s);
    }
}

fn read_string_list(r: &mut Reader<'_>) -> Result<Vec<String>, SnapshotError> {
    let c = |e: provbench_rdf::RdfError| corrupt(e.to_string());
    let count = r.read_varint().map_err(c)? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        out.push(r.read_string().map_err(c)?);
    }
    Ok(out)
}

/// Serialize a lint cache into a complete `corpus.lint.snapshot` file.
pub fn encode_lint(cache: &LintCache) -> Vec<u8> {
    let mut body = Vec::new();
    provbench_rdf::codec::write_varint(&mut body, cache.catalog);
    provbench_rdf::codec::write_varint(&mut body, cache.entries.len() as u64);
    for entry in &cache.entries {
        write_string(&mut body, &entry.path);
        provbench_rdf::codec::write_varint(&mut body, entry.fingerprint);
        let s = &entry.summary;
        write_string_list(&mut body, &s.declared);
        write_string_list(&mut body, &s.used_targets);
        write_string_list(&mut body, &s.derived_targets);
        write_string_list(&mut body, &s.references);
        provbench_rdf::codec::write_varint(&mut body, s.derivations.len() as u64);
        for (d, src) in &s.derivations {
            write_string(&mut body, d);
            write_string(&mut body, src);
        }
        provbench_rdf::codec::write_varint(&mut body, s.events.len() as u64);
        for e in &s.events {
            body.push(e.from_kind);
            write_string(&mut body, &e.from);
            body.push(e.to_kind);
            write_string(&mut body, &e.to);
            body.push(u8::from(e.strict) | (u8::from(e.derivation) << 1));
        }
        write_opt_string(&mut body, &s.time_min);
        write_opt_string(&mut body, &s.time_max);
        provbench_rdf::codec::write_varint(&mut body, entry.diagnostics.len() as u64);
        for d in &entry.diagnostics {
            write_string(&mut body, &d.rule_id);
            body.push(d.severity);
            write_string(&mut body, &d.message);
            write_opt_string(&mut body, &d.file);
            write_opt_span(&mut body, &d.span);
            write_opt_string(&mut body, &d.node);
            provbench_rdf::codec::write_varint(&mut body, d.related.len() as u64);
            for rel in &d.related {
                write_string(&mut body, &rel.message);
                write_opt_string(&mut body, &rel.file);
                write_opt_span(&mut body, &rel.span);
            }
        }
    }
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&LINT_MAGIC);
    out.extend_from_slice(&LINT_VERSION.to_le_bytes());
    out.extend_from_slice(&fnv1a(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode and fully validate a lint snapshot. Any failure is
/// recoverable: the linter simply re-analyzes every file.
pub fn decode_lint(bytes: &[u8]) -> Result<LintCache, SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..6] != LINT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[6], bytes[7]]);
    if version != LINT_VERSION {
        return Err(SnapshotError::Version(version));
    }
    let checksum = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let body = &bytes[HEADER_LEN..];
    if fnv1a(body) != checksum {
        return Err(SnapshotError::Checksum);
    }
    let c = |e: provbench_rdf::RdfError| corrupt(e.to_string());
    let mut r = Reader::new(body);
    let catalog = r.read_varint().map_err(c)?;
    let entry_count = r.read_varint().map_err(c)? as usize;
    let mut entries = Vec::with_capacity(entry_count.min(1 << 16));
    for _ in 0..entry_count {
        let path = r.read_string().map_err(c)?;
        let fingerprint = r.read_varint().map_err(c)?;
        let mut summary = SummaryRecord {
            declared: read_string_list(&mut r)?,
            used_targets: read_string_list(&mut r)?,
            derived_targets: read_string_list(&mut r)?,
            references: read_string_list(&mut r)?,
            ..SummaryRecord::default()
        };
        let derivation_count = r.read_varint().map_err(c)? as usize;
        for _ in 0..derivation_count {
            let d = r.read_string().map_err(c)?;
            let s = r.read_string().map_err(c)?;
            summary.derivations.push((d, s));
        }
        let event_count = r.read_varint().map_err(c)? as usize;
        for _ in 0..event_count {
            let from_kind = read_byte(&mut r)?;
            let from = r.read_string().map_err(c)?;
            let to_kind = read_byte(&mut r)?;
            let to = r.read_string().map_err(c)?;
            let flags = read_byte(&mut r)?;
            if flags > 0b11 {
                return Err(corrupt(format!("bad event edge flags {flags}")));
            }
            summary.events.push(EventEdgeRecord {
                from_kind,
                from,
                to_kind,
                to,
                strict: flags & 1 != 0,
                derivation: flags & 2 != 0,
            });
        }
        summary.time_min = read_opt_string(&mut r)?;
        summary.time_max = read_opt_string(&mut r)?;
        let diagnostic_count = r.read_varint().map_err(c)? as usize;
        let mut diagnostics = Vec::with_capacity(diagnostic_count.min(1 << 16));
        for _ in 0..diagnostic_count {
            let rule_id = r.read_string().map_err(c)?;
            let severity = read_byte(&mut r)?;
            if severity > 2 {
                return Err(corrupt(format!("bad severity code {severity}")));
            }
            let message = r.read_string().map_err(c)?;
            let file = read_opt_string(&mut r)?;
            let span = read_opt_span(&mut r)?;
            let node = read_opt_string(&mut r)?;
            let related_count = r.read_varint().map_err(c)? as usize;
            let mut related = Vec::with_capacity(related_count.min(1 << 16));
            for _ in 0..related_count {
                related.push(RelatedRecord {
                    message: r.read_string().map_err(c)?,
                    file: read_opt_string(&mut r)?,
                    span: read_opt_span(&mut r)?,
                });
            }
            diagnostics.push(DiagnosticRecord {
                rule_id,
                severity,
                message,
                file,
                span,
                node,
                related,
            });
        }
        entries.push(LintEntry {
            path,
            fingerprint,
            summary,
            diagnostics,
        });
    }
    if !r.is_empty() {
        return Err(corrupt(format!("{} trailing bytes", r.remaining())));
    }
    Ok(LintCache { catalog, entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CorpusSpec;
    use crate::store;
    use provbench_rdf::{Iri, Literal, Triple};

    fn sample_corpus() -> LoadedCorpus {
        // Generate in memory and convert via the loaded types so the
        // snapshot sees exactly what disk loading produces.
        let spec = CorpusSpec {
            max_workflows: Some(70),
            total_runs: 72,
            failed_runs: 1,
            ..CorpusSpec::default()
        };
        let corpus = crate::Corpus::generate(&spec);
        LoadedCorpus {
            descriptions: corpus
                .templates
                .iter()
                .zip(&corpus.descriptions)
                .map(|((system, t), g)| LoadedDescription {
                    system: *system,
                    template_name: t.name.clone(),
                    graph: g.clone(),
                })
                .collect(),
            traces: corpus
                .traces
                .iter()
                .map(|t| LoadedTrace {
                    run_id: t.run_id.clone(),
                    system: t.system,
                    template_name: t.template_name.clone(),
                    dataset: t.dataset.clone(),
                })
                .collect(),
        }
    }

    #[test]
    fn roundtrip_preserves_corpus_and_union() {
        let corpus = sample_corpus();
        let manifest = vec![("a/b.ttl".to_owned(), 600u64), ("c.trig".to_owned(), 634)];
        let bytes = encode(&corpus, 42, 1234, &manifest);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.source_files, 42);
        assert_eq!(decoded.source_bytes, 1234);
        assert_eq!(decoded.manifest, manifest);
        assert_eq!(decoded.corpus.descriptions.len(), corpus.descriptions.len());
        assert_eq!(decoded.corpus.traces.len(), corpus.traces.len());
        for (a, b) in corpus.descriptions.iter().zip(&decoded.corpus.descriptions) {
            assert_eq!(a.system, b.system);
            assert_eq!(a.template_name, b.template_name);
            assert_eq!(a.graph, b.graph);
        }
        for (a, b) in corpus.traces.iter().zip(&decoded.corpus.traces) {
            assert_eq!(a.run_id, b.run_id);
            assert_eq!(a.system, b.system);
            assert_eq!(a.template_name, b.template_name);
            assert_eq!(a.dataset, b.dataset);
        }
        assert_eq!(decoded.union, corpus.combined_dataset().union_graph());
    }

    #[test]
    fn encoding_is_deterministic() {
        let corpus = sample_corpus();
        assert_eq!(encode(&corpus, 1, 2, &[]), encode(&corpus, 1, 2, &[]));
    }

    #[test]
    fn header_validation() {
        let corpus = sample_corpus();
        let bytes = encode(&corpus, 1, 2, &[]);

        assert_eq!(decode(&bytes[..10]).unwrap_err(), SnapshotError::Truncated);

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode(&bad_magic).unwrap_err(), SnapshotError::BadMagic);

        let mut bad_version = bytes.clone();
        bad_version[6] = 0xFF;
        bad_version[7] = 0xFF;
        assert_eq!(
            decode(&bad_version).unwrap_err(),
            SnapshotError::Version(0xFFFF)
        );

        // Flip one body byte: checksum must catch it.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert_eq!(decode(&flipped).unwrap_err(), SnapshotError::Checksum);

        // Truncating the body is also a checksum failure, not a panic.
        let cut = &bytes[..bytes.len() - 20];
        assert_eq!(decode(cut).unwrap_err(), SnapshotError::Checksum);
    }

    #[test]
    fn corrupt_body_with_fixed_checksum_is_rejected() {
        // Re-seal a tampered body with a valid checksum: structural
        // validation has to catch what the checksum no longer can.
        let corpus = sample_corpus();
        let bytes = encode(&corpus, 1, 2, &[]);
        let mut body = bytes[HEADER_LEN..].to_vec();
        let last = body.len() - 1;
        body[last] = body[last].wrapping_add(1);
        let mut resealed = bytes[..8].to_vec();
        resealed.extend_from_slice(&fnv1a(&body).to_le_bytes());
        resealed.extend_from_slice(&body);
        assert!(matches!(
            decode(&resealed).unwrap_err(),
            SnapshotError::Corrupt(_) | SnapshotError::Checksum
        ));
    }

    #[test]
    fn stats_mismatch_is_corrupt() {
        // Hand-build a snapshot of one tiny graph, then tamper with the
        // stats section and re-seal the checksum.
        let mut g = Graph::new();
        g.insert(Triple::new(
            Iri::new("http://e/s").unwrap(),
            Iri::new("http://e/p").unwrap(),
            Literal::simple("x"),
        ));
        let corpus = LoadedCorpus {
            descriptions: vec![LoadedDescription {
                system: System::Taverna,
                template_name: "t".into(),
                graph: g,
            }],
            traces: vec![],
        };
        let bytes = encode(&corpus, 0, 0, &[]);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.union.len(), 1);

        let mut body = bytes[HEADER_LEN..].to_vec();
        // The stats section is the tail: (pred gid varint, count varint).
        // One predicate with count 1 → last byte is the count. Bump it.
        let last = body.len() - 1;
        assert_eq!(body[last], 1);
        body[last] = 2;
        let mut resealed = bytes[..8].to_vec();
        resealed.extend_from_slice(&fnv1a(&body).to_le_bytes());
        resealed.extend_from_slice(&body);
        let err = decode(&resealed).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Corrupt(ref m) if m.contains("stats")),
            "{err}"
        );
    }

    #[test]
    fn snapshot_is_much_smaller_than_turtle() {
        let corpus = sample_corpus();
        let turtle_bytes: usize = corpus
            .descriptions
            .iter()
            .map(|d| store::serialize_description(&d.graph).len())
            .sum::<usize>()
            + corpus
                .traces
                .iter()
                .map(|t| {
                    provbench_rdf::write_trig(&t.dataset, &provbench_rdf::PrefixMap::common()).len()
                })
                .sum::<usize>();
        let snapshot_bytes = encode(&corpus, 0, 0, &[]).len();
        assert!(
            snapshot_bytes < turtle_bytes,
            "snapshot {snapshot_bytes} B should beat Turtle {turtle_bytes} B"
        );
    }

    fn sample_lint_cache() -> LintCache {
        LintCache {
            catalog: 0xDEAD_BEEF,
            entries: vec![
                LintEntry {
                    path: "examples/taverna/run-1.prov.ttl".into(),
                    fingerprint: 42,
                    summary: SummaryRecord {
                        declared: vec!["http://e/a".into(), "http://e/b".into()],
                        used_targets: vec!["http://e/b".into()],
                        derived_targets: vec![],
                        references: vec!["http://e/b".into()],
                        derivations: vec![("http://e/a".into(), "http://e/b".into())],
                        events: vec![EventEdgeRecord {
                            from_kind: 2,
                            from: "http://e/b".into(),
                            to_kind: 2,
                            to: "http://e/a".into(),
                            strict: true,
                            derivation: true,
                        }],
                        time_min: Some("2013-01-01T00:00:00Z".into()),
                        time_max: None,
                    },
                    diagnostics: vec![DiagnosticRecord {
                        rule_id: "PB0107".into(),
                        severity: 2,
                        message: "impossible cycle".into(),
                        file: Some("examples/taverna/run-1.prov.ttl".into()),
                        span: Some((3, 5, 3, 40)),
                        node: Some("http://e/a".into()),
                        related: vec![RelatedRecord {
                            message: "cycle member".into(),
                            file: None,
                            span: None,
                        }],
                    }],
                },
                LintEntry {
                    path: "examples/wings/run-1.prov.trig".into(),
                    fingerprint: 7,
                    summary: SummaryRecord::default(),
                    diagnostics: vec![],
                },
            ],
        }
    }

    #[test]
    fn lint_cache_round_trips() {
        let cache = sample_lint_cache();
        let bytes = encode_lint(&cache);
        assert_eq!(decode_lint(&bytes).unwrap(), cache);
        // Deterministic bytes.
        assert_eq!(bytes, encode_lint(&cache));
    }

    #[test]
    fn lint_cache_header_validation() {
        let bytes = encode_lint(&sample_lint_cache());
        assert_eq!(
            decode_lint(&bytes[..4]).unwrap_err(),
            SnapshotError::Truncated
        );
        // A corpus snapshot is not a lint snapshot.
        let corpus_bytes = encode(&sample_corpus(), 0, 0, &[]);
        assert_eq!(
            decode_lint(&corpus_bytes).unwrap_err(),
            SnapshotError::BadMagic
        );
        let mut stale = bytes.clone();
        stale[6] = 0xFE;
        stale[7] = 0xFF;
        assert_eq!(
            decode_lint(&stale).unwrap_err(),
            SnapshotError::Version(0xFFFE)
        );
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert_eq!(decode_lint(&flipped).unwrap_err(), SnapshotError::Checksum);
    }

    #[test]
    fn lint_cache_rejects_tampered_body_with_fixed_checksum() {
        let bytes = encode_lint(&sample_lint_cache());
        // Truncate one trailing byte and re-seal: structural validation
        // must catch it.
        let body = &bytes[HEADER_LEN..bytes.len() - 1];
        let mut resealed = bytes[..8].to_vec();
        resealed.extend_from_slice(&fnv1a(body).to_le_bytes());
        resealed.extend_from_slice(body);
        assert!(matches!(
            decode_lint(&resealed).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }
}
