//! Corpus specification and the deterministic run plan.

use provbench_rdf::DateTime;
use provbench_workflow::{FailureKind, FailureSpec, System, WorkflowTemplate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything that parameterizes corpus generation. The default value
/// reproduces the paper's headline numbers.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusSpec {
    /// Master seed; the corpus is a pure function of this spec.
    pub seed: u64,
    /// Total workflow runs (the paper's 198).
    pub total_runs: usize,
    /// How many of them fail (the paper's 30).
    pub failed_runs: usize,
    /// Virtual time of the first run.
    pub corpus_start_ms: i64,
    /// Extra filler bytes per artifact value, to scale the corpus towards
    /// the paper's 360 MB when desired (0 keeps tests fast).
    pub value_payload: usize,
    /// Generate only the first N workflows of the catalog (testing knob;
    /// `None` = all 120).
    pub max_workflows: Option<usize>,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            seed: 42,
            total_runs: 198,
            failed_runs: 30,
            // 2013-01-15T09:00:00Z — the corpus was published early 2013.
            corpus_start_ms: DateTime::from_ymd_hms(2013, 1, 15, 9, 0, 0).unix_millis(),
            value_payload: 0,
            max_workflows: None,
        }
    }
}

/// Pool of user names runs are attributed to (the paper's Q5 needs a
/// "who executed this run" answer for every run).
pub const USERS: &[&str] = &[
    "alice", "bob", "carol", "dana", "erin", "frank", "grace", "heidi",
];

/// One planned run of one workflow.
#[derive(Clone, Debug, PartialEq)]
pub struct PlannedRun {
    /// Index into the template catalog.
    pub template_index: usize,
    /// Which system executes it.
    pub system: System,
    /// 1-based run number within the template (drives decay epochs).
    pub run_number: usize,
    /// Virtual start time.
    pub started_at_ms: i64,
    /// Jitter seed for the executor (unique per run).
    pub seed: u64,
    /// Input-value seed (shared by all runs of the template, so the
    /// longitudinal series consumes identical inputs).
    pub input_seed: u64,
    /// External-world epoch (differs between runs of the same template,
    /// so volatile steps drift — the decay signal).
    pub environment_epoch: u64,
    /// Injected failure, if this run is one of the failed ones.
    pub failure: Option<FailureSpec>,
    /// Who launched it.
    pub user: String,
    /// The stable run identifier used in IRIs and file names.
    pub run_id: String,
}

/// The full plan: which workflow runs when, and which runs fail.
#[derive(Clone, Debug, PartialEq)]
pub struct RunPlan {
    /// All planned runs, in global order.
    pub runs: Vec<PlannedRun>,
}

impl RunPlan {
    /// Build the deterministic plan for a template catalog.
    ///
    /// Every workflow runs at least once ("All workflows were executed at
    /// least one time"); the remaining budget is skewed so that some
    /// templates accumulate 3–4 runs (the longitudinal series decay
    /// detection needs). Failures are spread evenly over the global run
    /// sequence and round-robin over [`FailureKind::ALL`].
    pub fn build(spec: &CorpusSpec, catalog: &[(System, WorkflowTemplate)]) -> RunPlan {
        let w = catalog.len();
        assert!(w > 0, "empty catalog");
        assert!(
            spec.total_runs >= w,
            "total_runs ({}) must cover one run per workflow ({w})",
            spec.total_runs
        );
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x9e37_79b9_7f4a_7c15);

        // Runs per template: start at 1 each, then hand the surplus out
        // in passes of +1 starting from the front; templates earlier in
        // the catalog end up with the longest run series.
        let mut per_template = vec![1usize; w];
        let mut surplus = spec.total_runs - w;
        let mut i = 0usize;
        while surplus > 0 {
            per_template[i % w] += 1;
            i += 1;
            surplus -= 1;
        }

        // Failed run selection: spread over the global sequence.
        let stride = spec.total_runs.max(1) / spec.failed_runs.max(1);
        let failed_global: Vec<usize> = (0..spec.failed_runs)
            .map(|k| (k * stride + stride / 2).min(spec.total_runs - 1))
            .collect();

        let mut runs = Vec::with_capacity(spec.total_runs);
        let mut global = 0usize;
        let mut failure_ordinal = 0usize;
        for (ti, (system, template)) in catalog.iter().enumerate() {
            for j in 0..per_template[ti] {
                let run_number = j + 1;
                // Runs of the same template are spaced ~5 weeks apart
                // (a longitudinal series); templates are staggered ~3h.
                let started_at_ms = spec.corpus_start_ms
                    + ti as i64 * 3 * 3_600_000
                    + j as i64 * 35 * 86_400_000
                    + rng.gen_range(0..3_600_000);
                let failure = if failed_global.contains(&global) {
                    let kind = FailureKind::ALL[failure_ordinal % FailureKind::ALL.len()];
                    failure_ordinal += 1;
                    let processor = rng.gen_range(0..template.processors.len());
                    Some(FailureSpec { processor, kind })
                } else {
                    None
                };
                runs.push(PlannedRun {
                    template_index: ti,
                    system: *system,
                    run_number,
                    started_at_ms,
                    seed: spec
                        .seed
                        .wrapping_mul(0x100_0000_01b3)
                        .wrapping_add(global as u64),
                    input_seed: spec.seed.wrapping_add(ti as u64),
                    environment_epoch: j as u64,
                    failure,
                    user: USERS[(ti + j) % USERS.len()].to_owned(),
                    run_id: format!("{}-run-{}", template.name, run_number),
                });
                global += 1;
            }
        }
        RunPlan { runs }
    }

    /// Number of planned failures.
    pub fn failed_count(&self) -> usize {
        self.runs.iter().filter(|r| r.failure.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_workflow::generate::generate_catalog;

    fn default_plan() -> (CorpusSpec, RunPlan) {
        let spec = CorpusSpec::default();
        let catalog = generate_catalog(spec.seed);
        let plan = RunPlan::build(&spec, &catalog);
        (spec, plan)
    }

    #[test]
    fn plan_matches_paper_headline_numbers() {
        let (_, plan) = default_plan();
        assert_eq!(plan.runs.len(), 198);
        assert_eq!(plan.failed_count(), 30);
    }

    #[test]
    fn every_workflow_runs_at_least_once() {
        let (_, plan) = default_plan();
        let mut seen = [false; 120];
        for r in &plan.runs {
            seen[r.template_index] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn some_templates_have_longitudinal_series() {
        let (_, plan) = default_plan();
        let mut counts = vec![0usize; 120];
        for r in &plan.runs {
            counts[r.template_index] += 1;
        }
        assert!(counts.iter().any(|&c| c >= 2));
        // Series runs are strictly time-ordered.
        for ti in 0..120 {
            let times: Vec<i64> = plan
                .runs
                .iter()
                .filter(|r| r.template_index == ti)
                .map(|r| r.started_at_ms)
                .collect();
            assert!(
                times.windows(2).all(|w| w[0] < w[1]),
                "template {ti} unordered"
            );
        }
    }

    #[test]
    fn failures_hit_both_systems_and_all_kinds() {
        let (_, plan) = default_plan();
        let failed: Vec<_> = plan.runs.iter().filter(|r| r.failure.is_some()).collect();
        assert!(failed.iter().any(|r| r.system == System::Taverna));
        assert!(failed.iter().any(|r| r.system == System::Wings));
        for kind in FailureKind::ALL {
            assert!(
                failed.iter().any(|r| r.failure.unwrap().kind == kind),
                "kind {kind:?} unused"
            );
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let (_, a) = default_plan();
        let (_, b) = default_plan();
        assert_eq!(a, b);
    }

    #[test]
    fn run_ids_are_unique() {
        let (_, plan) = default_plan();
        let mut ids: Vec<_> = plan.runs.iter().map(|r| r.run_id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 198);
    }

    #[test]
    fn every_run_has_a_user() {
        let (_, plan) = default_plan();
        assert!(plan.runs.iter().all(|r| !r.user.is_empty()));
    }

    #[test]
    #[should_panic(expected = "must cover")]
    fn too_few_runs_panics() {
        let spec = CorpusSpec {
            total_runs: 5,
            ..CorpusSpec::default()
        };
        let catalog = generate_catalog(spec.seed);
        RunPlan::build(&spec, &catalog);
    }
}
