//! The engine facade: execute a template and export its provenance in
//! one call, like running Taverna with the PROV plugin enabled.

use crate::export::{export_run, template_description};
use provbench_rdf::Graph;
use provbench_workflow::execution::execute;
use provbench_workflow::{ExecutionConfig, WorkflowRun, WorkflowTemplate};

/// A simulated Taverna installation.
#[derive(Clone, Debug)]
pub struct TavernaEngine {
    /// Engine version, embedded in the engine agent IRI.
    pub version: String,
}

impl Default for TavernaEngine {
    fn default() -> Self {
        TavernaEngine {
            version: "2.4.0".to_owned(),
        }
    }
}

impl TavernaEngine {
    /// A specific engine version.
    pub fn new(version: impl Into<String>) -> Self {
        TavernaEngine {
            version: version.into(),
        }
    }

    /// Execute `template` and export the run's provenance trace.
    pub fn run(
        &self,
        template: &WorkflowTemplate,
        config: &ExecutionConfig,
        run_id: &str,
    ) -> (WorkflowRun, Graph) {
        let run = execute(template, config);
        let graph = export_run(template, &run, run_id, &self.version);
        (run, graph)
    }

    /// The wfdesc description of a template (shared across its runs).
    pub fn describe(&self, template: &WorkflowTemplate) -> Graph {
        template_description(template)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_workflow::domains::example_template;

    #[test]
    fn run_produces_trace_and_run_record() {
        let engine = TavernaEngine::default();
        let t = example_template();
        let config = ExecutionConfig::new(0, 1, "carol");
        let (run, graph) = engine.run(&t, &config, "r1");
        assert!(!run.failed());
        assert!(!graph.is_empty());
        assert!(!engine.describe(&t).is_empty());
    }

    #[test]
    fn version_flows_into_agent_iri() {
        let engine = TavernaEngine::new("2.5.0");
        let t = example_template();
        let config = ExecutionConfig::new(0, 1, "carol");
        let (_, graph) = engine.run(&t, &config, "r1");
        let agent = crate::vocab::engine_iri("2.5.0");
        assert!(graph
            .triples_matching(Some(&agent.into()), None, None)
            .next()
            .is_some());
    }
}
