//! Taverna-specific namespace and terms (the `tavernaprov` extension the
//! real plugin ships for error and content annotations).

use provbench_rdf::Iri;

/// The tavernaprov namespace.
pub const NS: &str = "http://ns.taverna.org.uk/2012/tavernaprov/";

/// `tavernaprov:errorMessage` — attached to failed process runs.
pub fn error_message() -> Iri {
    Iri::new_unchecked(concat!(
        "http://ns.taverna.org.uk/2012/tavernaprov/",
        "errorMessage"
    ))
}

/// `tavernaprov:checksum` — FNV content checksum of an artifact.
pub fn checksum() -> Iri {
    Iri::new_unchecked(concat!(
        "http://ns.taverna.org.uk/2012/tavernaprov/",
        "checksum"
    ))
}

/// `tavernaprov:byteCount` — artifact size.
pub fn byte_count() -> Iri {
    Iri::new_unchecked(concat!(
        "http://ns.taverna.org.uk/2012/tavernaprov/",
        "byteCount"
    ))
}

/// The engine software agent IRI for a given Taverna version.
pub fn engine_iri(version: &str) -> Iri {
    Iri::new_unchecked(format!(
        "http://ns.taverna.org.uk/2011/software/taverna-{version}"
    ))
}

#[cfg(test)]
mod tests {
    #[test]
    fn terms_are_namespaced() {
        assert!(super::error_message().as_str().starts_with(super::NS));
        assert!(super::checksum().as_str().starts_with(super::NS));
        assert!(super::byte_count().as_str().starts_with(super::NS));
        assert!(super::engine_iri("2.4.0")
            .as_str()
            .contains("taverna-2.4.0"));
    }
}
