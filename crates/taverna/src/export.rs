//! The PROV export: [`WorkflowRun`] → PROV-O graph, Taverna profile.

use crate::vocab as tavernaprov;
use provbench_prov::builder::DocumentBuilder;
use provbench_prov::model::{AgentKind, Document};
use provbench_prov::to_rdf::{document_to_graph, ProfileOptions};
use provbench_rdf::{DateTime, Graph, Iri, Literal, Triple};
use provbench_vocab::{self as vocab, dcterms, rdfs, wfdesc, wfprov};
use provbench_workflow::{ExecutedProcess, ProcessStatus, WorkflowRun, WorkflowTemplate};

/// Base IRI under which a run's resources are minted.
pub fn run_base_iri(run_id: &str) -> String {
    format!("http://ns.taverna.org.uk/2011/run/{run_id}/")
}

/// IRI of the myExperiment-style workflow description.
pub fn template_iri(template_name: &str) -> Iri {
    Iri::new_unchecked(format!(
        "http://www.myexperiment.org/workflows/{template_name}"
    ))
}

fn template_process_iri(template_name: &str, process_name: &str) -> Iri {
    Iri::new_unchecked(format!(
        "http://www.myexperiment.org/workflows/{template_name}#process/{process_name}"
    ))
}

fn user_iri(user: &str) -> Iri {
    Iri::new_unchecked(format!("http://www.myexperiment.org/users/{user}"))
}

/// The wfdesc description of a template (one graph per workflow, shared
/// by all of its runs).
pub fn template_description(template: &WorkflowTemplate) -> Graph {
    let mut g = Graph::new();
    let wf = template_iri(&template.name);
    g.insert(Triple::new(
        wf.clone(),
        vocab::rdf_type(),
        wfdesc::workflow(),
    ));
    g.insert(Triple::new(
        wf.clone(),
        rdfs::label(),
        Literal::simple(&template.title),
    ));
    g.insert(Triple::new(
        wf.clone(),
        dcterms::subject(),
        Literal::simple(&template.domain),
    ));
    for port in &template.inputs {
        let p = Iri::new_unchecked(format!("{}#input/{}", wf.as_str(), port.name));
        g.insert(Triple::new(p.clone(), vocab::rdf_type(), wfdesc::input()));
        g.insert(Triple::new(wf.clone(), wfdesc::has_input(), p));
    }
    for port in &template.outputs {
        let p = Iri::new_unchecked(format!("{}#output/{}", wf.as_str(), port.name));
        g.insert(Triple::new(p.clone(), vocab::rdf_type(), wfdesc::output()));
        g.insert(Triple::new(wf.clone(), wfdesc::has_output(), p));
    }
    for proc in &template.processors {
        let p = template_process_iri(&template.name, &proc.name);
        g.insert(Triple::new(p.clone(), vocab::rdf_type(), wfdesc::process()));
        g.insert(Triple::new(
            p.clone(),
            rdfs::label(),
            Literal::simple(&proc.name),
        ));
        g.insert(Triple::new(
            wf.clone(),
            wfdesc::has_sub_process(),
            p.clone(),
        ));
        for port in &proc.inputs {
            let port_iri = Iri::new_unchecked(format!("{}/in/{}", p.as_str(), port.name));
            g.insert(Triple::new(
                port_iri.clone(),
                vocab::rdf_type(),
                wfdesc::input(),
            ));
            g.insert(Triple::new(p.clone(), wfdesc::has_input(), port_iri));
        }
        for port in &proc.outputs {
            let port_iri = Iri::new_unchecked(format!("{}/out/{}", p.as_str(), port.name));
            g.insert(Triple::new(
                port_iri.clone(),
                vocab::rdf_type(),
                wfdesc::output(),
            ));
            g.insert(Triple::new(p.clone(), wfdesc::has_output(), port_iri));
        }
    }
    // The dataflow edges as wfdesc:DataLinks with source/sink ports.
    let port_ref_iri = |r: &provbench_workflow::PortRef| -> Iri {
        use provbench_workflow::PortRef;
        match *r {
            PortRef::WorkflowInput(i) => {
                Iri::new_unchecked(format!("{}#input/{}", wf.as_str(), template.inputs[i].name))
            }
            PortRef::WorkflowOutput(i) => Iri::new_unchecked(format!(
                "{}#output/{}",
                wf.as_str(),
                template.outputs[i].name
            )),
            PortRef::ProcessorInput { processor, port } => Iri::new_unchecked(format!(
                "{}/in/{}",
                template_process_iri(&template.name, &template.processors[processor].name).as_str(),
                template.processors[processor].inputs[port].name
            )),
            PortRef::ProcessorOutput { processor, port } => Iri::new_unchecked(format!(
                "{}/out/{}",
                template_process_iri(&template.name, &template.processors[processor].name).as_str(),
                template.processors[processor].outputs[port].name
            )),
        }
    };
    for (i, link) in template.links.iter().enumerate() {
        let link_iri = Iri::new_unchecked(format!("{}#link/{}", wf.as_str(), i));
        g.insert(Triple::new(
            link_iri.clone(),
            vocab::rdf_type(),
            wfdesc::data_link(),
        ));
        g.insert(Triple::new(
            wf.clone(),
            wfdesc::has_data_link(),
            link_iri.clone(),
        ));
        g.insert(Triple::new(
            link_iri.clone(),
            wfdesc::has_source(),
            port_ref_iri(&link.source),
        ));
        g.insert(Triple::new(
            link_iri,
            wfdesc::has_sink(),
            port_ref_iri(&link.sink),
        ));
    }
    for nested in &template.nested {
        let sub = template_iri(&nested.name);
        g.insert(Triple::new(wf.clone(), wfdesc::has_sub_process(), sub));
        g.extend_from_graph(&template_description(nested));
    }
    g
}

/// Build the PROV [`Document`] for one run (exposed for model-level tests;
/// most callers want [`export_run`]).
pub fn export_run_document(
    template: &WorkflowTemplate,
    run: &WorkflowRun,
    run_id: &str,
    engine_version: &str,
) -> Document {
    let mut b = DocumentBuilder::new(run_base_iri(run_id));
    build_run(&mut b, template, run, run_id, engine_version, None);
    b.build()
}

/// Export one run as a Taverna-profile PROV-O graph.
///
/// Blank-node labels are made unique per `run_id` so that traces can be
/// merged into one corpus dataset without conflating helper nodes.
pub fn export_run(
    template: &WorkflowTemplate,
    run: &WorkflowRun,
    run_id: &str,
    engine_version: &str,
) -> Graph {
    let doc = export_run_document(template, run, run_id, engine_version);
    let disc = provbench_workflow::execution::fnv1a(run_id.as_bytes());
    document_to_graph(
        &doc,
        ProfileOptions::taverna().with_blank_discriminator(disc | 1),
    )
}

/// Recursive worker: fills `b` with one run, returning the run IRI.
/// `informed_by` carries the host process-run of a nested workflow.
fn build_run(
    b: &mut DocumentBuilder,
    template: &WorkflowTemplate,
    run: &WorkflowRun,
    run_id: &str,
    engine_version: &str,
    informed_by: Option<&Iri>,
) -> Iri {
    let wf = template_iri(&template.name);

    // The workflow run activity.
    let run_iri = b
        .activity("workflow-run")
        .typed(wfprov::workflow_run())
        .label(format!("Run of {}", template.title))
        .started(DateTime::from_unix_millis(run.started_ms))
        .ended(DateTime::from_unix_millis(run.ended_ms))
        .id();
    b.other(&run_iri, wfprov::described_by_workflow(), wf.clone());

    // Agents: the engine and the user. Taverna records no delegation and
    // no attribution (Table 2), so those relations never appear.
    let engine = b
        .agent_iri(tavernaprov::engine_iri(engine_version), AgentKind::Software)
        .typed(wfprov::workflow_engine())
        .name(format!("Taverna {engine_version}"))
        .id();
    let user = b
        .agent_iri(user_iri(&run.user), AgentKind::Person)
        .name(run.user.clone())
        .id();
    // The template is declared as an entity (typed by wfdesc, not
    // prov:Plan — Taverna points at it via prov:hadPlan only).
    b.entity_iri(wf.clone()).typed(wfdesc::workflow());
    b.associated(&run_iri, &engine, Some(&wf));
    b.associated(&run_iri, &user, None);
    b.other(&run_iri, wfprov::was_enacted_by(), engine.clone());

    if let Some(host) = informed_by {
        // The paper: wasInformedBy is "used to express the connection
        // between sub-workflows".
        b.informed(&run_iri, host);
    }

    // Artifacts.
    let artifact_iri: Vec<Iri> = run
        .artifacts
        .iter()
        .map(|a| {
            let iri = b
                .entity(&format!("data/{}", a.id))
                .typed(wfprov::artifact())
                .label(a.name.clone())
                .value(Literal::simple(&a.value))
                .attribute(
                    tavernaprov::checksum(),
                    Literal::simple(format!("{:016x}", a.checksum)),
                )
                .attribute(
                    tavernaprov::byte_count(),
                    Literal::integer(a.size_bytes as i64),
                )
                .id();
            iri
        })
        .collect();

    // Workflow-level usage/generation.
    for &aid in &run.inputs {
        b.used(&run_iri, &artifact_iri[aid], None);
    }
    for &aid in &run.outputs {
        b.generated(&artifact_iri[aid], &run_iri, None);
    }

    // Process runs. Skipped processes never happened, so they leave no
    // trace — the debugging application reconstructs them from wfdesc.
    for process in &run.processes {
        if process.status == ProcessStatus::Skipped {
            continue;
        }
        let p_iri = build_process_run(b, template, process, &run_iri, &engine, &artifact_iri);
        // Nested sub-workflow run, recursively exported in the same doc.
        if let Some(sub_run) = &process.sub_run {
            let nested_template = template
                .processors
                .get(process.processor)
                .and_then(|p| p.sub_workflow)
                .and_then(|ni| template.nested.get(ni));
            if let Some(nested_template) = nested_template {
                let mut nested_builder = DocumentBuilder::new(format!(
                    "{}nested/{}/",
                    run_base_iri(run_id),
                    process.name
                ));
                build_run(
                    &mut nested_builder,
                    nested_template,
                    sub_run,
                    run_id,
                    engine_version,
                    Some(&p_iri),
                );
                let nested_doc = nested_builder.build();
                merge_documents(b, nested_doc);
            }
        }
    }
    run_iri
}

/// Merge `other` into the builder's document (same graph, no bundling —
/// Taverna exports one flat graph per run).
fn merge_documents(b: &mut DocumentBuilder, other: Document) {
    for (_, e) in other.entities {
        let mut eb = b.entity_iri(e.id.clone());
        for t in e.types {
            eb = eb.typed(t);
        }
        if let Some(l) = e.label {
            eb = eb.label(l);
        }
        if let Some(v) = e.value {
            eb = eb.value(v);
        }
        for (p, o) in e.attributes {
            eb = eb.attribute(p, o);
        }
        let _ = eb;
    }
    for (_, a) in other.activities {
        let mut ab = b.activity_iri(a.id.clone());
        for t in a.types {
            ab = ab.typed(t);
        }
        if let Some(l) = a.label {
            ab = ab.label(l);
        }
        if let Some(s) = a.started {
            ab = ab.started(s);
        }
        if let Some(e) = a.ended {
            ab = ab.ended(e);
        }
        for (p, o) in a.attributes {
            ab = ab.attribute(p, o);
        }
        let _ = ab;
    }
    for (_, ag) in other.agents {
        let mut gb = b.agent_iri(ag.id.clone(), ag.kind);
        for t in ag.types {
            gb = gb.typed(t);
        }
        if let Some(n) = ag.name {
            gb = gb.name(n);
        }
        let _ = gb;
    }
    for r in other.relations {
        b.relation(r);
    }
}

fn build_process_run(
    b: &mut DocumentBuilder,
    template: &WorkflowTemplate,
    process: &ExecutedProcess,
    run_iri: &Iri,
    engine: &Iri,
    artifact_iri: &[Iri],
) -> Iri {
    let mut ab = b
        .activity(&format!("process/{}", process.name))
        .typed(wfprov::process_run())
        .label(process.name.clone());
    if let Some(s) = process.started_ms {
        ab = ab.started(DateTime::from_unix_millis(s));
    }
    if let Some(e) = process.ended_ms {
        ab = ab.ended(DateTime::from_unix_millis(e));
    }
    if let ProcessStatus::Failed(kind) = process.status {
        ab = ab.attribute(
            tavernaprov::error_message(),
            Literal::simple(kind.description()),
        );
    }
    let p_iri = ab.id();
    b.other(&p_iri, wfprov::was_part_of_workflow_run(), run_iri.clone());
    b.other(
        &p_iri,
        wfprov::described_by_process(),
        template_process_iri(&template.name, &process.name),
    );
    b.associated(&p_iri, engine, None);
    for &aid in &process.inputs {
        b.used(&p_iri, &artifact_iri[aid], None);
        b.other(&p_iri, wfprov::used_input(), artifact_iri[aid].clone());
    }
    for &aid in &process.outputs {
        b.generated(&artifact_iri[aid], &p_iri, None);
        b.other(&artifact_iri[aid], wfprov::was_output_from(), p_iri.clone());
    }
    p_iri
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_prov::inference::{any_instance_of, any_use_of};
    use provbench_vocab::prov;
    use provbench_workflow::domains::example_template;
    use provbench_workflow::execution::{execute, ExecutionConfig, FailureKind, FailureSpec};

    fn run_graph(failure: Option<FailureSpec>) -> Graph {
        let t = example_template();
        let mut c = ExecutionConfig::new(1_358_245_800_000, 7, "alice");
        c.failure = failure;
        let run = execute(&t, &c);
        export_run(&t, &run, "example-1", "2.4.0")
    }

    #[test]
    fn asserts_the_taverna_profile() {
        let g = run_graph(None);
        for class in [prov::entity(), prov::activity(), prov::agent()] {
            assert!(any_instance_of(&g, &class), "missing class {class:?}");
        }
        for p in [
            prov::started_at_time(),
            prov::ended_at_time(),
            prov::used(),
            prov::was_generated_by(),
            prov::was_associated_with(),
            prov::had_plan(),
        ] {
            assert!(any_use_of(&g, &p), "missing property {p:?}");
        }
    }

    #[test]
    fn never_asserts_the_excluded_terms() {
        let g = run_graph(None);
        for p in [
            prov::was_attributed_to(),
            prov::acted_on_behalf_of(),
            prov::was_derived_from(),
            prov::was_influenced_by(),
            prov::had_primary_source(),
            prov::at_location(),
        ] {
            assert!(!any_use_of(&g, &p), "Taverna must not assert {p:?}");
        }
        for c in [prov::plan(), prov::bundle()] {
            assert!(!any_instance_of(&g, &c), "Taverna must not type {c:?}");
        }
    }

    #[test]
    fn failed_run_is_a_partial_trace() {
        let ok = run_graph(None);
        let failed = run_graph(Some(FailureSpec {
            processor: 1,
            kind: FailureKind::ServiceUnavailable,
        }));
        // Fewer process runs and no workflow output generation.
        assert!(failed.len() < ok.len());
        assert!(any_use_of(&failed, &tavernaprov::error_message()));
        let run_iri = Iri::new_unchecked(format!("{}workflow-run", run_base_iri("example-1")));
        assert_eq!(
            failed
                .triples_matching(None, Some(&prov::was_generated_by()), Some(&run_iri.into()))
                .count(),
            0
        );
    }

    #[test]
    fn every_failure_kind_is_recorded_with_its_cause() {
        let t = example_template();
        for (i, kind) in FailureKind::ALL.into_iter().enumerate() {
            let mut c = ExecutionConfig::new(0, 7, "alice");
            c.failure = Some(FailureSpec {
                processor: i % t.processors.len(),
                kind,
            });
            let run = execute(&t, &c);
            let g = export_run(&t, &run, &format!("fk-{i}"), "2.4.0");
            let msg: provbench_rdf::Term =
                provbench_rdf::Literal::simple(kind.description()).into();
            assert!(
                g.triples_matching(None, Some(&tavernaprov::error_message()), Some(&msg))
                    .next()
                    .is_some(),
                "cause {kind:?} not recorded"
            );
        }
    }

    #[test]
    fn nested_runs_are_connected_by_was_informed_by() {
        let mut t = example_template();
        t.nested.push(example_template());
        t.processors[1].sub_workflow = Some(0);
        let c = ExecutionConfig::new(0, 7, "bob");
        let run = execute(&t, &c);
        let g = export_run(&t, &run, "nested-1", "2.4.0");
        assert!(any_use_of(&g, &prov::was_informed_by()));
    }

    #[test]
    fn no_was_informed_by_without_nesting() {
        let g = run_graph(None);
        assert!(!any_use_of(&g, &prov::was_informed_by()));
    }

    #[test]
    fn template_description_covers_structure() {
        let t = example_template();
        let g = template_description(&t);
        assert!(any_instance_of(&g, &wfdesc::workflow()));
        assert!(any_instance_of(&g, &wfdesc::process()));
        assert!(any_instance_of(&g, &wfdesc::input()));
        assert!(any_instance_of(&g, &wfdesc::output()));
        assert_eq!(
            g.triples_matching(None, Some(&wfdesc::has_sub_process()), None)
                .count(),
            3
        );
    }

    #[test]
    fn template_description_includes_data_links() {
        let t = example_template();
        let g = template_description(&t);
        assert_eq!(
            g.triples_matching(None, Some(&wfdesc::has_data_link()), None)
                .count(),
            t.links.len()
        );
        assert_eq!(
            g.triples_matching(None, Some(&wfdesc::has_source()), None)
                .count(),
            t.links.len()
        );
        assert_eq!(
            g.triples_matching(None, Some(&wfdesc::has_sink()), None)
                .count(),
            t.links.len()
        );
        // Processor ports are typed and attached.
        assert!(
            g.triples_matching(None, Some(&wfdesc::has_input()), None)
                .count()
                >= 3
        );
        assert!(
            g.triples_matching(None, Some(&wfdesc::has_output()), None)
                .count()
                >= 3
        );
    }

    #[test]
    fn export_is_deterministic() {
        let a = run_graph(None);
        let b = run_graph(None);
        assert_eq!(a, b);
    }

    #[test]
    fn artifacts_carry_values_and_checksums() {
        let g = run_graph(None);
        assert!(any_use_of(&g, &prov::value()));
        assert!(any_use_of(&g, &tavernaprov::checksum()));
        assert!(any_use_of(&g, &tavernaprov::byte_count()));
        assert!(any_instance_of(&g, &wfprov::artifact()));
    }
}
