//! # provbench-taverna
//!
//! A Taverna-style workflow engine simulator with a PROV export plugin
//! (the stand-in for `taverna-prov`, see DESIGN.md §2).
//!
//! The exporter reproduces the PROV term profile the paper reports for
//! Taverna in Tables 2 and 3:
//!
//! * **asserted**: `prov:Entity`/`Activity`/`Agent` typing,
//!   `prov:startedAtTime`/`endedAtTime` on activities, `prov:used`,
//!   `prov:wasGeneratedBy`, `prov:wasAssociatedWith`,
//!   `prov:wasInformedBy` (connecting nested sub-workflow runs), and
//!   `prov:hadPlan` inside qualified associations;
//! * **never asserted**: `prov:wasAttributedTo` ("no direct attribution
//!   is recorded in Taverna provenance traces"), `prov:actedOnBehalfOf`,
//!   `prov:wasDerivedFrom`, `prov:wasInfluencedBy`, `prov:Plan` typing,
//!   `prov:Bundle`, `prov:hadPrimarySource`, `prov:atLocation`.
//!
//! Traces are additionally decorated with wfprov/wfdesc (Research Object
//! model) terms, mirroring the real plugin.

pub mod engine;
pub mod export;
pub mod vocab;

pub use engine::TavernaEngine;
pub use export::{export_run, export_run_document, run_base_iri, template_description};
