//! Application i (paper §3): identification of dependencies between data
//! products and processes.
//!
//! Works at the RDF level over any trace graph (Taverna or Wings):
//! `prov:wasGeneratedBy` identifies the producing process of a data
//! product, and chaining generation with `prov:used` yields the
//! data-dependency closure the paper describes ("how it was derived from
//! other data products").

use provbench_rdf::{Graph, Iri, Subject, Term};
use provbench_vocab::prov;
use std::collections::BTreeSet;

/// The activities that generated an entity (normally exactly one).
pub fn producers_of(graph: &Graph, entity: &Iri) -> Vec<Iri> {
    graph
        .objects(&Subject::Iri(entity.clone()), &prov::was_generated_by())
        .filter_map(|t| t.as_iri().cloned())
        .collect()
}

/// Direct data dependencies of `entity`: the inputs of its producer(s).
pub fn direct_dependencies(graph: &Graph, entity: &Iri) -> Vec<Iri> {
    let mut out = Vec::new();
    for producer in producers_of(graph, entity) {
        for used in graph.objects(&Subject::Iri(producer), &prov::used()) {
            if let Some(iri) = used.as_iri() {
                if !out.contains(iri) {
                    out.push(iri.clone());
                }
            }
        }
    }
    out
}

/// All entities `entity` transitively depends on.
pub fn upstream_entities(graph: &Graph, entity: &Iri) -> Vec<Iri> {
    let mut seen: BTreeSet<Iri> = BTreeSet::new();
    let mut stack = vec![entity.clone()];
    while let Some(e) = stack.pop() {
        for dep in direct_dependencies(graph, &e) {
            if seen.insert(dep.clone()) {
                stack.push(dep);
            }
        }
    }
    seen.into_iter().collect()
}

/// A materialized data-dependency graph.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LineageGraph {
    /// `(derived entity, source entity, via process)` edges.
    pub edges: Vec<(Iri, Iri, Iri)>,
}

impl LineageGraph {
    /// Entities with no outgoing dependency edge (the original inputs).
    pub fn sources(&self) -> Vec<Iri> {
        let derived: BTreeSet<&Iri> = self.edges.iter().map(|(d, _, _)| d).collect();
        let mut out: Vec<Iri> = self
            .edges
            .iter()
            .map(|(_, s, _)| s.clone())
            .filter(|s| !derived.contains(s))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Number of dependency edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether there are no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Compute every `(derived, source, process)` dependency edge in a trace:
/// for each generation `e2 wasGeneratedBy a` and each usage `a used e1`,
/// `e2` depends on `e1` via `a`.
pub fn dependency_edges(graph: &Graph) -> LineageGraph {
    let mut edges = Vec::new();
    for gen in graph.triples_matching(None, Some(&prov::was_generated_by()), None) {
        let (Subject::Iri(derived), Term::Iri(process)) = (&gen.subject, &gen.object) else {
            continue;
        };
        for used in graph.triples_matching(
            Some(&Subject::Iri(process.clone())),
            Some(&prov::used()),
            None,
        ) {
            if let Term::Iri(source) = &used.object {
                if source != derived {
                    edges.push((derived.clone(), source.clone(), process.clone()));
                }
            }
        }
    }
    edges.sort();
    edges.dedup();
    LineageGraph { edges }
}

/// Corpus-level lineage: the union of [`dependency_edges`] over every
/// graph of a corpus. An edge whose generation is asserted in one
/// document and whose usage is asserted in another only exists at this
/// level — per-trace lineage cannot see it. Edges are deduplicated
/// across documents (two runs asserting the same dependency yield one
/// edge) and sorted for deterministic output.
pub fn corpus_dependency_edges<'a>(graphs: impl IntoIterator<Item = &'a Graph>) -> LineageGraph {
    let mut union = Graph::new();
    for g in graphs {
        for t in g.iter() {
            union.insert(t.clone());
        }
    }
    dependency_edges(&union)
}

impl LineageGraph {
    /// Render the dependency graph in Graphviz DOT syntax: entities as
    /// boxes, dependency edges labelled with the mediating process.
    pub fn to_dot(&self) -> String {
        fn short(iri: &Iri) -> String {
            iri.as_str()
                .rsplit(['/', '#'])
                .next()
                .unwrap_or(iri.as_str())
                .replace('"', "'")
        }
        let mut out = String::from("digraph lineage {\n  rankdir=BT;\n  node [shape=box];\n");
        let mut nodes: BTreeSet<&Iri> = BTreeSet::new();
        for (d, s, _) in &self.edges {
            nodes.insert(d);
            nodes.insert(s);
        }
        for n in nodes {
            out.push_str(&format!("  \"{}\" [label=\"{}\"];\n", n.as_str(), short(n)));
        }
        for (derived, source, process) in &self.edges {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
                source.as_str(),
                derived.as_str(),
                short(process)
            ));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_rdf::Triple;

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    /// in → [p1] → mid → [p2] → out; p2 also uses in2.
    fn chain() -> Graph {
        let mut g = Graph::new();
        let used = prov::used();
        let gen = prov::was_generated_by();
        g.insert(Triple::new(
            iri("http://e/p1"),
            used.clone(),
            iri("http://e/in"),
        ));
        g.insert(Triple::new(
            iri("http://e/mid"),
            gen.clone(),
            iri("http://e/p1"),
        ));
        g.insert(Triple::new(
            iri("http://e/p2"),
            used.clone(),
            iri("http://e/mid"),
        ));
        g.insert(Triple::new(iri("http://e/p2"), used, iri("http://e/in2")));
        g.insert(Triple::new(iri("http://e/out"), gen, iri("http://e/p2")));
        g
    }

    #[test]
    fn producer_identification() {
        let g = chain();
        assert_eq!(
            producers_of(&g, &iri("http://e/out")),
            vec![iri("http://e/p2")]
        );
        assert!(producers_of(&g, &iri("http://e/in")).is_empty());
    }

    #[test]
    fn direct_and_transitive_dependencies() {
        let g = chain();
        assert_eq!(
            direct_dependencies(&g, &iri("http://e/out")),
            vec![iri("http://e/mid"), iri("http://e/in2")]
        );
        let up = upstream_entities(&g, &iri("http://e/out"));
        assert_eq!(
            up,
            vec![iri("http://e/in"), iri("http://e/in2"), iri("http://e/mid")]
        );
    }

    #[test]
    fn dependency_edge_materialization() {
        let lg = dependency_edges(&chain());
        assert_eq!(lg.len(), 3);
        assert!(!lg.is_empty());
        assert_eq!(lg.sources(), vec![iri("http://e/in"), iri("http://e/in2")]);
    }

    #[test]
    fn dot_export_lists_nodes_and_edges() {
        let lg = dependency_edges(&chain());
        let dot = lg.to_dot();
        assert!(dot.starts_with("digraph lineage {"));
        assert!(dot.ends_with("}\n"));
        // 4 entity nodes, 3 labelled edges.
        assert_eq!(dot.matches("[label=").count(), 4 + 3);
        assert!(dot.contains("\"http://e/in\" -> \"http://e/mid\" [label=\"p1\"]"));
    }

    #[test]
    fn corpus_lineage_stitches_edges_across_graphs() {
        // Generation in one graph, usage in another: only the union
        // produces the cross-document dependency edge.
        let mut g1 = Graph::new();
        g1.insert(Triple::new(
            iri("http://e/out"),
            prov::was_generated_by(),
            iri("http://e/p"),
        ));
        let mut g2 = Graph::new();
        g2.insert(Triple::new(
            iri("http://e/p"),
            prov::used(),
            iri("http://e/in"),
        ));
        assert!(dependency_edges(&g1).is_empty());
        assert!(dependency_edges(&g2).is_empty());
        let lg = corpus_dependency_edges([&g1, &g2]);
        assert_eq!(
            lg.edges,
            vec![(iri("http://e/out"), iri("http://e/in"), iri("http://e/p"))]
        );
        // The same assertions repeated in a third graph add no edges.
        let lg2 = corpus_dependency_edges([&g1, &g2, &g1, &g2]);
        assert_eq!(lg, lg2);
    }

    #[test]
    fn empty_graph_has_no_lineage() {
        let lg = dependency_edges(&Graph::new());
        assert!(lg.is_empty());
        assert!(lg.sources().is_empty());
    }
}
