//! Run timeline reconstruction and critical-path analysis.
//!
//! Q4 already retrieves per-process times (Taverna); this module goes a
//! step further, answering the operational questions a workflow engineer
//! asks of provenance: *where did the time go*, and *which chain of
//! steps determined the run's makespan* (the critical path through the
//! usage/generation dependency graph).
//!
//! Works purely at the RDF level: intervals from
//! `prov:startedAtTime`/`endedAtTime`, dependencies from
//! `prov:used`/`prov:wasGeneratedBy`. Wings traces have no activity
//! times, so timelines are a Taverna-only capability — the same
//! asymmetry the paper's Q4 notes.

use provbench_rdf::{DateTime, Graph, Iri, Subject, Term};
use provbench_vocab::{prov, wfprov};
use std::collections::BTreeMap;

/// One process interval of a run's timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineEntry {
    /// The process run.
    pub process: Iri,
    /// Start time.
    pub started: DateTime,
    /// End time.
    pub ended: DateTime,
    /// Duration in milliseconds.
    pub duration_ms: i64,
    /// Direct upstream dependencies (processes whose outputs it used).
    pub depends_on: Vec<Iri>,
}

/// The reconstructed timeline of one workflow run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Timeline {
    /// The workflow run.
    pub run: Iri,
    /// Entries ordered by start time.
    pub entries: Vec<TimelineEntry>,
    /// The run's makespan in milliseconds (max end − min start).
    pub makespan_ms: i64,
    /// The critical path: the dependency chain with the largest total
    /// duration, from first process to last, ordered by time.
    pub critical_path: Vec<Iri>,
}

impl Timeline {
    /// Sum of all process durations (total work, ignoring overlap).
    pub fn total_work_ms(&self) -> i64 {
        self.entries.iter().map(|e| e.duration_ms).sum()
    }

    /// Parallelism ratio: total work / makespan (1.0 = fully serial).
    pub fn parallelism(&self) -> f64 {
        if self.makespan_ms == 0 {
            1.0
        } else {
            self.total_work_ms() as f64 / self.makespan_ms as f64
        }
    }
}

fn time_of(g: &Graph, s: &Subject, p: &Iri) -> Option<DateTime> {
    g.object(s, p)?.as_literal()?.as_date_time()
}

/// Reconstruct the timeline of `run` from its trace graph. Returns
/// `None` when the run has no timed process runs (e.g. a Wings account).
pub fn timeline_of(graph: &Graph, run: &Iri) -> Option<Timeline> {
    // Processes of the run (Taverna shape).
    let run_term: Term = run.clone().into();
    let processes: Vec<Iri> = graph
        .triples_matching(
            None,
            Some(&wfprov::was_part_of_workflow_run()),
            Some(&run_term),
        )
        .filter_map(|t| match t.subject {
            Subject::Iri(i) => Some(i),
            Subject::Blank(_) => None,
        })
        .collect();

    // Producer map: artifact → producing process (within this run).
    let mut producer: BTreeMap<Iri, Iri> = BTreeMap::new();
    for p in &processes {
        for out in graph.subjects_with(&prov::was_generated_by(), &p.clone().into()) {
            if let Subject::Iri(artifact) = out {
                producer.insert(artifact, p.clone());
            }
        }
    }

    let mut entries = Vec::new();
    for p in &processes {
        let s = Subject::Iri(p.clone());
        let (Some(started), Some(ended)) = (
            time_of(graph, &s, &prov::started_at_time()),
            time_of(graph, &s, &prov::ended_at_time()),
        ) else {
            continue;
        };
        let mut depends_on: Vec<Iri> = graph
            .objects(&s, &prov::used())
            .filter_map(|o| o.as_iri().and_then(|a| producer.get(a)).cloned())
            .filter(|d| d != p)
            .collect();
        depends_on.sort();
        depends_on.dedup();
        entries.push(TimelineEntry {
            process: p.clone(),
            duration_ms: ended.millis_since(&started),
            started,
            ended,
            depends_on,
        });
    }
    if entries.is_empty() {
        return None;
    }
    entries.sort_by_key(|e| (e.started, e.process.clone()));

    let first = entries.iter().map(|e| e.started).min().expect("non-empty");
    let last = entries.iter().map(|e| e.ended).max().expect("non-empty");

    // Critical path by longest-path DP over the dependency DAG (entries
    // are start-time ordered, and dependencies always start earlier).
    let index: BTreeMap<&Iri, usize> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| (&e.process, i))
        .collect();
    let mut best: Vec<(i64, Option<usize>)> = vec![(0, None); entries.len()];
    for i in 0..entries.len() {
        let mut cost = entries[i].duration_ms;
        let mut from = None;
        for dep in &entries[i].depends_on {
            if let Some(&j) = index.get(dep) {
                if j < i && best[j].0 + entries[i].duration_ms > cost {
                    cost = best[j].0 + entries[i].duration_ms;
                    from = Some(j);
                }
            }
        }
        best[i] = (cost, from);
    }
    let mut at = (0..entries.len())
        .max_by_key(|&i| best[i].0)
        .expect("non-empty");
    let mut critical_path = vec![entries[at].process.clone()];
    while let Some(prev) = best[at].1 {
        critical_path.push(entries[prev].process.clone());
        at = prev;
    }
    critical_path.reverse();

    Some(Timeline {
        run: run.clone(),
        makespan_ms: last.millis_since(&first),
        entries,
        critical_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_core::{Corpus, CorpusSpec};
    use provbench_workflow::System;

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusSpec {
            max_workflows: Some(70),
            total_runs: 75,
            failed_runs: 0,
            ..CorpusSpec::default()
        })
    }

    fn run_iri(run_id: &str) -> Iri {
        Iri::new_unchecked(format!(
            "{}workflow-run",
            provbench_taverna::run_base_iri(run_id)
        ))
    }

    #[test]
    fn taverna_runs_have_timelines() {
        let c = corpus();
        let trace = c.traces_of(System::Taverna).next().unwrap();
        let tl = timeline_of(&trace.union_graph(), &run_iri(&trace.run_id)).unwrap();
        let executed = trace
            .run
            .processes
            .iter()
            .filter(|p| p.started_ms.is_some())
            .count();
        assert_eq!(tl.entries.len(), executed);
        assert!(tl.makespan_ms > 0);
        assert!(tl.total_work_ms() >= tl.makespan_ms || tl.entries.len() == 1);
        assert!(tl.parallelism() >= 1.0);
        // Entries are time-ordered and durations are consistent.
        for e in &tl.entries {
            assert_eq!(e.duration_ms, e.ended.millis_since(&e.started));
            assert!(e.duration_ms >= 0);
        }
        assert!(tl.entries.windows(2).all(|w| w[0].started <= w[1].started));
    }

    #[test]
    fn critical_path_is_a_dependency_chain_bounding_the_makespan() {
        let c = corpus();
        for trace in c.traces_of(System::Taverna).take(10) {
            let g = trace.union_graph();
            let tl = timeline_of(&g, &run_iri(&trace.run_id)).unwrap();
            assert!(!tl.critical_path.is_empty());
            // Consecutive path elements are true dependencies.
            let entry = |p: &Iri| tl.entries.iter().find(|e| &e.process == p).unwrap();
            for w in tl.critical_path.windows(2) {
                assert!(
                    entry(&w[1]).depends_on.contains(&w[0]),
                    "critical path edge missing in {}",
                    trace.run_id
                );
            }
            // Path duration is ≤ makespan and dominates any single entry.
            let path_work: i64 = tl.critical_path.iter().map(|p| entry(p).duration_ms).sum();
            assert!(path_work <= tl.makespan_ms);
            let longest_single = tl.entries.iter().map(|e| e.duration_ms).max().unwrap();
            assert!(path_work >= longest_single);
        }
    }

    #[test]
    fn wings_accounts_have_no_timeline() {
        let c = corpus();
        let trace = c.traces_of(System::Wings).next().unwrap();
        let account = provbench_wings::account_iri(&trace.run_id);
        assert!(timeline_of(&trace.union_graph(), &account).is_none());
    }
}
