//! PROV term coverage: regenerates the paper's Tables 2 and 3 from the
//! traces themselves.
//!
//! Methodology (matching the paper's):
//!
//! * **Table 2** (starting-point terms) reports *direct assertion* only —
//!   a term is supported by a system iff some trace of that system
//!   asserts it.
//! * **Table 3** (additional terms) additionally reports *inferability*:
//!   a starred entry means the term is not asserted but appears after
//!   running PROV-O schema inference (sub-property closure and
//!   `prov:hadPlan` range typing) over the traces.

use provbench_core::Corpus;
use provbench_prov::inference::{apply_inference, InferenceRules};
use provbench_prov::stats::TermStats;
use provbench_rdf::Graph;
use provbench_vocab::prov::{ProvTermInfo, ADDITIONAL_TERMS, STARTING_POINT_TERMS};
use provbench_workflow::System;
use std::fmt;

/// How a system supports one PROV term.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Support {
    /// Not asserted and (for Table 3) not inferable.
    None,
    /// Directly asserted in the traces.
    Asserted,
    /// Not asserted, but derivable by inference — the paper's `*`.
    Inferred,
}

/// One row of a coverage table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverageRow {
    /// The term, as the paper spells it (`prov:wasGeneratedBy`, …).
    pub term: &'static ProvTermInfo,
    /// Taverna support.
    pub taverna: Support,
    /// Wings support.
    pub wings: Support,
}

impl CoverageRow {
    /// The "Support by the Systems" cell, rendered the way the paper
    /// prints it (`-`, `Taverna`, `Taverna* and Wings`, …).
    pub fn support_cell(&self) -> String {
        let part = |name: &str, s: Support| match s {
            Support::None => None,
            Support::Asserted => Some(name.to_owned()),
            Support::Inferred => Some(format!("{name}*")),
        };
        match (part("Taverna", self.taverna), part("Wings", self.wings)) {
            (None, None) => "-".to_owned(),
            (Some(t), None) => t,
            (None, Some(w)) => w,
            (Some(t), Some(w)) => format!("{t} and {w}"),
        }
    }
}

/// The two coverage tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverageTables {
    /// Table 2: the 12 starting-point terms.
    pub starting_point: Vec<CoverageRow>,
    /// Table 3: the 5 additional terms.
    pub additional: Vec<CoverageRow>,
}

impl fmt::Display for CoverageTables {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 2: Coverage of Starting-point PROV Terms.")?;
        for row in &self.starting_point {
            writeln!(f, "  {:24} {}", row.term.name, row.support_cell())?;
        }
        writeln!(f, "Table 3: Coverage of Additional PROV Terms.")?;
        for row in &self.additional {
            writeln!(f, "  {:24} {}", row.term.name, row.support_cell())?;
        }
        Ok(())
    }
}

fn support_for(
    term: &ProvTermInfo,
    asserted: &TermStats,
    inferred: &TermStats,
    allow_inference: bool,
) -> Support {
    if asserted.uses_term(term) {
        Support::Asserted
    } else if allow_inference && inferred.uses_term(term) {
        Support::Inferred
    } else {
        Support::None
    }
}

/// Compute both coverage tables from one merged trace graph per system.
pub fn analyze_coverage(taverna: &Graph, wings: &Graph) -> CoverageTables {
    let rules = InferenceRules::schema_only();
    let taverna_asserted = TermStats::of_graph(taverna);
    let wings_asserted = TermStats::of_graph(wings);
    let taverna_inferred = TermStats::of_graph(&apply_inference(taverna, &rules));
    let wings_inferred = TermStats::of_graph(&apply_inference(wings, &rules));

    let rows = |terms: &'static [ProvTermInfo], allow_inference: bool| {
        terms
            .iter()
            .map(|term| CoverageRow {
                term,
                taverna: support_for(term, &taverna_asserted, &taverna_inferred, allow_inference),
                wings: support_for(term, &wings_asserted, &wings_inferred, allow_inference),
            })
            .collect()
    };
    CoverageTables {
        starting_point: rows(STARTING_POINT_TERMS, false),
        additional: rows(ADDITIONAL_TERMS, true),
    }
}

/// Compute the coverage tables for a generated corpus.
pub fn coverage_of_corpus(corpus: &Corpus) -> CoverageTables {
    analyze_coverage(
        &corpus.system_graph(System::Taverna),
        &corpus.system_graph(System::Wings),
    )
}

/// The paper's Table 2 cells, in row order, for comparison in tests and
/// EXPERIMENTS.md. (`-` means supported by neither.)
pub const PAPER_TABLE_2: &[(&str, &str)] = &[
    ("prov:Activity", "Taverna and Wings"),
    ("prov:Agent", "Taverna and Wings"),
    ("prov:Entity", "Taverna and Wings"),
    ("prov:actedOnBehalfOf", "-"),
    ("prov:endedAtTime", "Taverna"),
    ("prov:startedAtTime", "Taverna"),
    ("prov:used", "Taverna and Wings"),
    ("prov:wasAssociatedWith", "Taverna and Wings"),
    ("prov:wasAttributedTo", "Wings"),
    ("prov:wasDerivedFrom", "-"),
    ("prov:wasGeneratedBy", "Taverna and Wings"),
    ("prov:wasInformedBy", "Taverna"),
];

/// The paper's Table 3 cells, in row order.
pub const PAPER_TABLE_3: &[(&str, &str)] = &[
    ("prov:Bundle", "Wings"),
    ("prov:Plan", "Taverna* and Wings"),
    ("prov:wasInfluencedBy", "Taverna* and Wings"),
    ("prov:hadPrimarySource", "Wings"),
    ("prov:atLocation", "Wings"),
];

/// Per-term assertion counts by system — the quantitative view behind
/// the boolean tables (useful for "improving the corpus in the light of
/// community feedback", §6).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TermUsageRow {
    /// The term name (`prov:used`, …).
    pub term: &'static str,
    /// How many Taverna triples assert it.
    pub taverna_count: usize,
    /// How many Wings triples assert it.
    pub wings_count: usize,
}

/// Assertion counts for all 17 tracked terms.
pub fn term_usage(taverna: &Graph, wings: &Graph) -> Vec<TermUsageRow> {
    let t = TermStats::of_graph(taverna);
    let w = TermStats::of_graph(wings);
    let count = |stats: &TermStats, info: &ProvTermInfo| match info.kind {
        provbench_vocab::TermKind::Class => {
            stats.class_counts.get(&info.to_iri()).copied().unwrap_or(0)
        }
        provbench_vocab::TermKind::Property => stats
            .predicate_counts
            .get(&info.to_iri())
            .copied()
            .unwrap_or(0),
    };
    STARTING_POINT_TERMS
        .iter()
        .chain(ADDITIONAL_TERMS)
        .map(|info| TermUsageRow {
            term: info.name,
            taverna_count: count(&t, info),
            wings_count: count(&w, info),
        })
        .collect()
}

/// Compare computed tables against the paper's, returning mismatches as
/// `(term, paper cell, computed cell)`.
pub fn diff_against_paper(tables: &CoverageTables) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    for (rows, paper) in [
        (&tables.starting_point, PAPER_TABLE_2),
        (&tables.additional, PAPER_TABLE_3),
    ] {
        for (row, (name, cell)) in rows.iter().zip(paper.iter()) {
            debug_assert_eq!(row.term.name, *name);
            let computed = row.support_cell();
            if computed != *cell {
                out.push((row.term.name.to_owned(), (*cell).to_owned(), computed));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_core::CorpusSpec;

    /// A corpus slice guaranteed to contain Taverna nested workflows
    /// (wasInformedBy) and Wings traces: take the whole catalog but few
    /// extra runs, which keeps this test fast enough while exercising
    /// every exporter feature.
    fn corpus() -> Corpus {
        Corpus::generate(&CorpusSpec {
            total_runs: 120,
            failed_runs: 10,
            ..CorpusSpec::default()
        })
    }

    #[test]
    fn tables_match_the_paper_exactly() {
        let tables = coverage_of_corpus(&corpus());
        let diffs = diff_against_paper(&tables);
        assert!(
            diffs.is_empty(),
            "coverage deviates from the paper: {diffs:?}"
        );
    }

    #[test]
    fn term_usage_counts_are_consistent_with_tables() {
        let c = corpus();
        let taverna = c.system_graph(provbench_workflow::System::Taverna);
        let wings = c.system_graph(provbench_workflow::System::Wings);
        let usage = term_usage(&taverna, &wings);
        assert_eq!(usage.len(), 17);
        let tables = analyze_coverage(&taverna, &wings);
        // A term counted > 0 must be Asserted, and vice versa.
        for (row, table_row) in usage
            .iter()
            .zip(tables.starting_point.iter().chain(&tables.additional))
        {
            assert_eq!(row.term, table_row.term.name);
            assert_eq!(
                row.taverna_count > 0,
                table_row.taverna == Support::Asserted
            );
            assert_eq!(row.wings_count > 0, table_row.wings == Support::Asserted);
        }
        // The workhorse predicates are heavily used.
        let used = usage.iter().find(|r| r.term == "prov:used").unwrap();
        assert!(used.taverna_count > 100 && used.wings_count > 100);
    }

    #[test]
    fn support_cell_rendering() {
        let row = CoverageRow {
            term: &STARTING_POINT_TERMS[0],
            taverna: Support::Inferred,
            wings: Support::Asserted,
        };
        assert_eq!(row.support_cell(), "Taverna* and Wings");
        let none = CoverageRow {
            term: &STARTING_POINT_TERMS[0],
            taverna: Support::None,
            wings: Support::None,
        };
        assert_eq!(none.support_cell(), "-");
        let solo = CoverageRow {
            term: &STARTING_POINT_TERMS[0],
            taverna: Support::Asserted,
            wings: Support::None,
        };
        assert_eq!(solo.support_cell(), "Taverna");
    }

    #[test]
    fn display_contains_both_tables() {
        let tables = analyze_coverage(&Graph::new(), &Graph::new());
        let s = tables.to_string();
        assert!(s.contains("Table 2"));
        assert!(s.contains("Table 3"));
        // Empty graphs support nothing.
        assert!(tables
            .starting_point
            .iter()
            .all(|r| r.support_cell() == "-"));
    }
}
