//! # provbench-analysis
//!
//! Corpus analysis: the PROV-term coverage tables ([`coverage`] — the
//! paper's Tables 2 and 3, *computed* from the traces rather than
//! hard-coded), and the three applications the paper motivates in §3:
//!
//! 1. [`lineage`] — identification of dependencies between data products
//!    and processes;
//! 2. [`debug`] — debugging workflow executions (which process failed,
//!    which steps were affected);
//! 3. [`decay`] — detection of workflow decay across repeated runs of
//!    the same template, and repair from previous runs.

pub mod coverage;
pub mod debug;
pub mod decay;
pub mod enrichment;
pub mod interop;
pub mod lineage;
pub mod lint;
pub mod timeline;

pub use coverage::{analyze_coverage, coverage_of_corpus, CoverageRow, CoverageTables, Support};
pub use debug::{
    diagnose_corpus, diagnose_graph, failed_processes_sparql, FailureReport,
    FAILED_PROCESSES_SPARQL,
};
pub use decay::{
    decay_summary, detect_decay, rdf_trace_diff, repair_candidates, DecayReport, RunObservation,
    TraceDiff,
};
pub use enrichment::{
    derivation_quality, enrich_with_exact_derivations, enrich_with_inferred_derivations,
    exact_derivations, DerivationQuality,
};
pub use interop::{interop_report, Capability, InteropReport, InteropRow};
pub use lineage::{
    corpus_dependency_edges, dependency_edges, producers_of, upstream_entities, LineageGraph,
};
pub use lint::{lint_corpus, lint_trace, LintFinding};
pub use timeline::{timeline_of, Timeline, TimelineEntry};
