//! The paper's §5 "ongoing work": asserting `prov:wasDerivedFrom`.
//!
//! The paper explains why the corpus ships without derivations: "data
//! derivation relationships cannot be asserted easily without a proper
//! understanding of the exact function of each process of a workflow
//! run". This module implements both sides of that observation:
//!
//! * [`enrich_with_inferred_derivations`] — the *approximate* enrichment
//!   available to a consumer who only has the RDF trace: every output of
//!   an activity is assumed to derive from every input (PROV-O
//!   derivation inference). Over-approximates for multi-output steps.
//! * [`exact_derivations`] — the *ground-truth* enrichment available to
//!   the engine, which knows the dataflow: an output derives exactly
//!   from the inputs of the process that produced it, chained through
//!   the run's port graph.
//! * [`DerivationQuality`] — compares the two, quantifying how
//!   over-approximate trace-level inference is (the measurement that
//!   motivates the paper's caution).

use provbench_core::TraceRecord;
use provbench_prov::inference::{apply_inference, InferenceRules};
use provbench_rdf::{Graph, Iri, Triple};
use provbench_vocab::prov;
use provbench_workflow::System;
use std::collections::BTreeSet;

/// Enrich a trace graph with inferred derivations (trace-level view).
pub fn enrich_with_inferred_derivations(graph: &Graph) -> Graph {
    let rules = InferenceRules {
        derivation: true,
        ..InferenceRules::none()
    };
    apply_inference(graph, &rules)
}

/// The artifact IRI an engine minted for a run-local artifact id.
fn artifact_iri(trace: &TraceRecord, id: usize) -> Iri {
    match trace.system {
        System::Taverna => Iri::new_unchecked(format!(
            "{}data/{}",
            provbench_taverna::run_base_iri(&trace.run_id),
            id
        )),
        System::Wings => Iri::new_unchecked(format!(
            "http://www.opmw.org/export/resource/Execution/{}/artifact/{}",
            trace.run_id, id
        )),
    }
}

/// Ground-truth derivations from the engine's dataflow record: each
/// produced artifact `prov:wasDerivedFrom` each input of its producing
/// process (per process, not per run — the precision the trace alone
/// cannot deliver).
pub fn exact_derivations(trace: &TraceRecord) -> Vec<Triple> {
    let mut out = Vec::new();
    for process in &trace.run.processes {
        for &o in &process.outputs {
            for &i in &process.inputs {
                out.push(Triple::new(
                    artifact_iri(trace, o),
                    prov::was_derived_from(),
                    artifact_iri(trace, i),
                ));
            }
        }
    }
    out
}

/// Enrich a trace's graph with the engine's exact derivations.
pub fn enrich_with_exact_derivations(trace: &TraceRecord) -> Graph {
    let mut g = trace.union_graph();
    for t in exact_derivations(trace) {
        g.insert(t);
    }
    g
}

/// Precision/recall of trace-level derivation inference against the
/// engine's ground truth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DerivationQuality {
    /// Derivation pairs produced by trace-level inference.
    pub inferred: usize,
    /// Ground-truth derivation pairs.
    pub exact: usize,
    /// Pairs in both.
    pub correct: usize,
}

impl DerivationQuality {
    /// `correct / inferred` (1.0 when nothing was inferred).
    pub fn precision(&self) -> f64 {
        if self.inferred == 0 {
            1.0
        } else {
            self.correct as f64 / self.inferred as f64
        }
    }

    /// `correct / exact` (1.0 when there is nothing to find).
    pub fn recall(&self) -> f64 {
        if self.exact == 0 {
            1.0
        } else {
            self.correct as f64 / self.exact as f64
        }
    }
}

/// Measure how well trace-level derivation inference approximates the
/// engine's ground truth for one trace.
pub fn derivation_quality(trace: &TraceRecord) -> DerivationQuality {
    let pair = |t: &Triple| (t.subject.clone(), t.object.as_iri().cloned());
    let inferred_graph = enrich_with_inferred_derivations(&trace.union_graph());
    let inferred: BTreeSet<_> = inferred_graph
        .triples_matching(None, Some(&prov::was_derived_from()), None)
        .map(|t| pair(&t))
        .collect();
    let exact: BTreeSet<_> = exact_derivations(trace).iter().map(pair).collect();
    DerivationQuality {
        inferred: inferred.len(),
        exact: exact.len(),
        correct: inferred.intersection(&exact).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_core::{Corpus, CorpusSpec};
    use provbench_prov::inference::any_use_of;

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusSpec {
            max_workflows: Some(70),
            total_runs: 75,
            failed_runs: 4,
            ..CorpusSpec::default()
        })
    }

    #[test]
    fn corpus_traces_carry_no_derivations_until_enriched() {
        let c = corpus();
        for trace in c.traces.iter().take(10) {
            let g = trace.union_graph();
            assert!(
                !any_use_of(&g, &prov::was_derived_from()),
                "{} asserts derivations (the corpus must not)",
                trace.run_id
            );
            let enriched = enrich_with_inferred_derivations(&g);
            assert!(any_use_of(&enriched, &prov::was_derived_from()));
        }
    }

    #[test]
    fn exact_derivations_follow_the_dataflow() {
        let c = corpus();
        let trace = c.traces.iter().find(|t| !t.failed()).unwrap();
        let exact = exact_derivations(trace);
        assert!(!exact.is_empty());
        // Workflow inputs derive from nothing.
        for &input in &trace.run.inputs {
            let input_iri = artifact_iri(trace, input);
            assert!(
                !exact.iter().any(|t| t.subject.as_iri() == Some(&input_iri)),
                "workflow input appears as derived"
            );
        }
        let enriched = enrich_with_exact_derivations(trace);
        assert!(enriched.len() > trace.union_graph().len());
    }

    #[test]
    fn inference_overapproximates_but_is_complete() {
        let c = corpus();
        let mut saw_overapprox = false;
        for trace in c.traces.iter().filter(|t| !t.failed()).take(20) {
            let q = derivation_quality(trace);
            // Inference can only add pairs that include every exact one
            // at the process level… except where the run-level
            // generation (output wasGeneratedBy workflow-run) lets
            // inference connect outputs to run-level inputs as well, so
            // recall is 1.0 and precision ≤ 1.0.
            assert!(
                (q.recall() - 1.0).abs() < f64::EPSILON,
                "inference missed a true derivation in {} ({:?})",
                trace.run_id,
                q
            );
            assert!(q.precision() <= 1.0);
            if q.precision() < 1.0 {
                saw_overapprox = true;
            }
        }
        assert!(
            saw_overapprox,
            "trace-level inference should over-approximate somewhere — \
             that is the paper's stated reason for not asserting derivations"
        );
    }

    #[test]
    fn quality_math() {
        let q = DerivationQuality {
            inferred: 10,
            exact: 5,
            correct: 5,
        };
        assert!((q.precision() - 0.5).abs() < f64::EPSILON);
        assert!((q.recall() - 1.0).abs() < f64::EPSILON);
        let empty = DerivationQuality {
            inferred: 0,
            exact: 0,
            correct: 0,
        };
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
    }
}
