//! Application ii (paper §3): debug workflow executions — "identify the
//! processes that are responsible for workflow failure and detect the
//! steps in the workflow that were affected".
//!
//! Failure markers differ per system (that asymmetry is part of what the
//! corpus teaches): Taverna attaches `tavernaprov:errorMessage` to the
//! failed process run; Wings stamps `opmw:hasStatus "FAILURE"` on the
//! failed step and the account. Affected (never-executed) steps are
//! reconstructed by diffing the workflow description against the process
//! runs actually present in the trace.

use provbench_core::{Corpus, TraceRecord};
use provbench_rdf::{Graph, Iri, Literal, Subject, Term};
use provbench_vocab::{opmw, wfdesc, wfprov};
use provbench_workflow::System;

/// IRI of `tavernaprov:errorMessage` (defined in `provbench-taverna`;
/// duplicated here to keep `analysis` independent of the engine crates).
fn taverna_error_message() -> Iri {
    Iri::new_unchecked("http://ns.taverna.org.uk/2012/tavernaprov/errorMessage")
}

/// Diagnosis of one failed run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureReport {
    /// The failed run's id.
    pub run_id: String,
    /// The failing process run IRI.
    pub failed_process: Iri,
    /// The recorded cause.
    pub cause: String,
    /// Template steps that never executed because of the failure.
    pub affected_steps: Vec<Iri>,
}

/// Diagnose one trace graph (trace + its workflow description merged).
/// Returns `None` when the trace shows no failure.
pub fn diagnose_graph(graph: &Graph, system: System, run_id: &str) -> Option<FailureReport> {
    let (failed_process, cause) = match system {
        System::Taverna => {
            let t = graph
                .triples_matching(None, Some(&taverna_error_message()), None)
                .next()?;
            let Subject::Iri(p) = t.subject else {
                return None;
            };
            let cause = t
                .object
                .as_literal()
                .map(|l| l.lexical().to_owned())
                .unwrap_or_default();
            (p, cause)
        }
        System::Wings => {
            let failure: Term = Literal::simple("FAILURE").into();
            let t = graph
                .triples_matching(None, Some(&opmw::has_status()), Some(&failure))
                .find(|t| {
                    // The account also carries FAILURE; we want the step.
                    graph
                        .triples_matching(
                            Some(&t.subject),
                            Some(&provbench_vocab::rdf_type()),
                            Some(&opmw::workflow_execution_process().into()),
                        )
                        .next()
                        .is_some()
                })?;
            let Subject::Iri(p) = t.subject else {
                return None;
            };
            let cause = graph
                .object(&Subject::Iri(p.clone()), &provbench_vocab::rdfs::comment())
                .and_then(|o| o.as_literal().map(|l| l.lexical().to_owned()))
                .unwrap_or_else(|| "FAILURE".to_owned());
            (p, cause)
        }
    };

    // Affected steps: template steps with no corresponding process run.
    let (described_pred, executed_pred) = match system {
        System::Taverna => (wfdesc::has_sub_process(), wfprov::described_by_process()),
        System::Wings => (
            opmw::corresponds_to_template(),
            opmw::corresponds_to_template_process(),
        ),
    };
    let described: Vec<Iri> = match system {
        System::Taverna => graph
            .triples_matching(None, Some(&described_pred), None)
            .filter_map(|t| t.object.as_iri().cloned())
            // Sub-workflow references are wfdesc:Workflow, not Process.
            .filter(|p| {
                graph
                    .triples_matching(
                        Some(&Subject::Iri(p.clone())),
                        Some(&provbench_vocab::rdf_type()),
                        Some(&wfdesc::process().into()),
                    )
                    .next()
                    .is_some()
            })
            .collect(),
        System::Wings => graph
            .triples_matching(None, Some(&described_pred), None)
            .filter_map(|t| match (&t.subject, ()) {
                (Subject::Iri(s), ()) => Some(s.clone()),
                _ => None,
            })
            .filter(|s| {
                graph
                    .triples_matching(
                        Some(&Subject::Iri(s.clone())),
                        Some(&provbench_vocab::rdf_type()),
                        Some(&opmw::workflow_template_process().into()),
                    )
                    .next()
                    .is_some()
            })
            .collect(),
    };
    let mut affected_steps: Vec<Iri> = described
        .into_iter()
        .filter(|step| {
            graph
                .triples_matching(None, Some(&executed_pred), Some(&step.clone().into()))
                .next()
                .is_none()
        })
        .collect();
    affected_steps.sort();
    affected_steps.dedup();

    Some(FailureReport {
        run_id: run_id.to_owned(),
        failed_process,
        cause,
        affected_steps,
    })
}

/// SPARQL for the failure markers of both systems, used by
/// [`failed_processes_sparql`]. Exposed so callers can feed it to an
/// endpoint or `provbench query` directly.
pub const FAILED_PROCESSES_SPARQL: &str = "\
PREFIX opmw: <http://www.opmw.org/ontology/>
SELECT DISTINCT ?process WHERE {
  { ?process <http://ns.taverna.org.uk/2012/tavernaprov/errorMessage> ?cause }
  UNION
  { ?process a opmw:WorkflowExecutionProcess .
    ?process opmw:hasStatus \"FAILURE\" }
} ORDER BY ?process";

/// Cross-check of [`diagnose_graph`]'s direct index lookups through the
/// query engine: the IRIs of every failed process run in the graph,
/// found declaratively with [`FAILED_PROCESSES_SPARQL`].
pub fn failed_processes_sparql(graph: &Graph) -> Vec<Iri> {
    provbench_query::QueryEngine::new(graph)
        .prepare(FAILED_PROCESSES_SPARQL)
        .and_then(|p| p.select())
        .expect("failure-marker query is well-formed")
        .rows
        .iter()
        .filter_map(|row| row.get("process").and_then(|t| t.as_iri().cloned()))
        .collect()
}

fn trace_with_description(corpus: &Corpus, trace: &TraceRecord) -> Graph {
    let mut g = trace.union_graph();
    if let Some(idx) = corpus
        .templates
        .iter()
        .position(|(_, t)| t.name == trace.template_name)
    {
        g.extend_from_graph(&corpus.descriptions[idx]);
    }
    g
}

/// Diagnose every failed run in a corpus.
pub fn diagnose_corpus(corpus: &Corpus) -> Vec<FailureReport> {
    corpus
        .traces
        .iter()
        .filter(|t| t.failed())
        .filter_map(|t| diagnose_graph(&trace_with_description(corpus, t), t.system, &t.run_id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_core::CorpusSpec;

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusSpec {
            total_runs: 130,
            failed_runs: 12,
            ..CorpusSpec::default()
        })
    }

    #[test]
    fn every_failed_run_is_diagnosable() {
        let c = corpus();
        let reports = diagnose_corpus(&c);
        assert_eq!(reports.len(), c.failed_count());
        for r in &reports {
            assert!(!r.cause.is_empty(), "{} has no cause", r.run_id);
        }
    }

    #[test]
    fn diagnosis_finds_injected_failure() {
        let c = corpus();
        let reports = diagnose_corpus(&c);
        for report in &reports {
            let trace = c.traces.iter().find(|t| t.run_id == report.run_id).unwrap();
            let failed = trace.run.failed_process().expect("run failed");
            assert!(
                report.failed_process.as_str().contains(&failed.name),
                "report {:?} does not name failed step {}",
                report.failed_process,
                failed.name
            );
            // Skipped steps must be reported as affected — including the
            // steps of a nested sub-workflow whose host never ran (or
            // failed before spawning it).
            let template = &c
                .templates
                .iter()
                .find(|(_, t)| t.name == trace.template_name)
                .unwrap()
                .1;
            let expected: usize = trace
                .run
                .processes
                .iter()
                .map(|p| {
                    let never_ran = p.started_ms.is_none();
                    let nested_unspawned = p.sub_run.is_none()
                        && template.processors[p.processor].sub_workflow.is_some();
                    let nested_steps = template.processors[p.processor]
                        .sub_workflow
                        .map(|ni| template.nested[ni].processors.len())
                        .unwrap_or(0);
                    usize::from(never_ran) + if nested_unspawned { nested_steps } else { 0 }
                })
                .sum();
            assert_eq!(
                report.affected_steps.len(),
                expected,
                "affected mismatch for {}",
                report.run_id
            );
        }
    }

    #[test]
    fn successful_runs_yield_no_report() {
        let c = corpus();
        let ok = c.traces.iter().find(|t| !t.failed()).unwrap();
        let g = trace_with_description(&c, ok);
        assert!(diagnose_graph(&g, ok.system, &ok.run_id).is_none());
    }

    #[test]
    fn sparql_cross_check_agrees_with_direct_diagnosis() {
        let c = corpus();
        let reports = diagnose_corpus(&c);
        let mut direct: Vec<Iri> = reports.iter().map(|r| r.failed_process.clone()).collect();
        direct.sort();
        let mut via_sparql = failed_processes_sparql(&c.combined_graph());
        via_sparql.sort();
        assert_eq!(via_sparql, direct);
    }

    #[test]
    fn both_systems_are_diagnosable() {
        let c = corpus();
        let reports = diagnose_corpus(&c);
        let sys_of = |run_id: &str| c.traces.iter().find(|t| t.run_id == run_id).unwrap().system;
        assert!(reports.iter().any(|r| sys_of(&r.run_id) == System::Taverna));
        assert!(reports.iter().any(|r| sys_of(&r.run_id) == System::Wings));
    }
}
