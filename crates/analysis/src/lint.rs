//! Trace linting — corpus QA for the paper's §6 maintenance story
//! ("maintaining the corpus… improve the corpus in the light of
//! community feedback").
//!
//! Beyond generic PROV constraints (`provbench-prov::constraints`), each
//! system's traces must follow its own profile conventions; the linter
//! checks the structural rules a corpus curator would enforce before
//! accepting a new trace into the collection.

use provbench_core::TraceRecord;
use provbench_prov::inference::any_use_of;
use provbench_rdf::{Graph, Iri, Subject, Term};
use provbench_vocab::{self as vocab, opmw, prov, wfprov};
use provbench_workflow::System;
use std::fmt;

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintFinding {
    /// The rule that fired.
    pub rule: &'static str,
    /// The offending node, when the rule points at one.
    pub node: Option<Iri>,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.node {
            Some(n) => write!(f, "[{}] {} ({})", self.rule, self.detail, n),
            None => write!(f, "[{}] {}", self.rule, self.detail),
        }
    }
}

fn finding(rule: &'static str, node: Option<Iri>, detail: impl Into<String>) -> LintFinding {
    LintFinding { rule, node, detail: detail.into() }
}

fn instances<'a>(g: &'a Graph, class: &Iri) -> impl Iterator<Item = Iri> + 'a {
    let class: Term = class.clone().into();
    g.triples_matching(None, Some(&vocab::rdf_type()), Some(&class))
        .filter_map(|t| match t.subject {
            Subject::Iri(i) => Some(i),
            Subject::Blank(_) => None,
        })
        .collect::<Vec<_>>()
        .into_iter()
}

fn lint_taverna(g: &Graph, out: &mut Vec<LintFinding>) {
    // Every process run belongs to exactly one workflow run and has times.
    for p in instances(g, &wfprov::process_run()) {
        let s = Subject::Iri(p.clone());
        let parents = g.objects(&s, &wfprov::was_part_of_workflow_run()).count();
        if parents != 1 {
            out.push(finding(
                "taverna/process-run-parent",
                Some(p.clone()),
                format!("process run has {parents} wasPartOfWorkflowRun links (want 1)"),
            ));
        }
        for time in [prov::started_at_time(), prov::ended_at_time()] {
            if g.object(&s, &time).is_none() {
                out.push(finding(
                    "taverna/process-run-times",
                    Some(p.clone()),
                    format!("missing {}", time.as_str()),
                ));
            }
        }
        if g.object(&s, &wfprov::described_by_process()).is_none() {
            out.push(finding(
                "taverna/process-run-description",
                Some(p.clone()),
                "missing describedByProcess",
            ));
        }
    }
    // Every workflow run names its workflow and both times.
    for r in instances(g, &wfprov::workflow_run()) {
        let s = Subject::Iri(r.clone());
        if g.object(&s, &wfprov::described_by_workflow()).is_none() {
            out.push(finding(
                "taverna/run-description",
                Some(r.clone()),
                "missing describedByWorkflow",
            ));
        }
    }
    // Artifacts carry values.
    for a in instances(g, &wfprov::artifact()) {
        if g.object(&Subject::Iri(a.clone()), &prov::value()).is_none() {
            out.push(finding("taverna/artifact-value", Some(a), "missing prov:value"));
        }
    }
    // The Taverna profile never asserts these (Tables 2–3).
    for p in [prov::was_attributed_to(), prov::at_location(), prov::had_primary_source()] {
        if any_use_of(g, &p) {
            out.push(finding(
                "taverna/profile-purity",
                None,
                format!("Taverna trace asserts {}", p.as_str()),
            ));
        }
    }
}

fn lint_wings(g: &Graph, out: &mut Vec<LintFinding>) {
    for p in instances(g, &opmw::workflow_execution_process()) {
        let s = Subject::Iri(p.clone());
        if g.object(&s, &opmw::belongs_to_account()).is_none() {
            out.push(finding(
                "wings/process-account",
                Some(p.clone()),
                "missing belongsToAccount",
            ));
        }
        if g.object(&s, &opmw::has_executable_component()).is_none() {
            out.push(finding(
                "wings/process-component",
                Some(p.clone()),
                "missing hasExecutableComponent",
            ));
        }
        if g.object(&s, &opmw::has_status()).is_none() {
            out.push(finding("wings/process-status", Some(p.clone()), "missing hasStatus"));
        }
    }
    for a in instances(g, &opmw::workflow_execution_artifact()) {
        let s = Subject::Iri(a.clone());
        if g.object(&s, &prov::at_location()).is_none() {
            out.push(finding("wings/artifact-location", Some(a.clone()), "missing atLocation"));
        }
        if g.object(&s, &opmw::belongs_to_account()).is_none() {
            out.push(finding("wings/artifact-account", Some(a), "missing belongsToAccount"));
        }
    }
    // The Wings profile never asserts per-activity times (Table 2).
    for p in [prov::started_at_time(), prov::ended_at_time(), prov::was_informed_by()] {
        if any_use_of(g, &p) {
            out.push(finding(
                "wings/profile-purity",
                None,
                format!("Wings trace asserts {}", p.as_str()),
            ));
        }
    }
}

/// Lint one trace (its union graph) against its system profile.
pub fn lint_trace(trace: &TraceRecord) -> Vec<LintFinding> {
    let g = trace.union_graph();
    let mut out = Vec::new();
    match trace.system {
        System::Taverna => lint_taverna(&g, &mut out),
        System::Wings => lint_wings(&g, &mut out),
    }
    out
}

/// Lint every trace of a corpus; returns `(run id, findings)` for runs
/// with at least one finding.
pub fn lint_corpus(corpus: &provbench_core::Corpus) -> Vec<(String, Vec<LintFinding>)> {
    corpus
        .traces
        .iter()
        .filter_map(|t| {
            let findings = lint_trace(t);
            (!findings.is_empty()).then(|| (t.run_id.clone(), findings))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_core::{Corpus, CorpusSpec};
    use provbench_rdf::Triple;

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusSpec {
            max_workflows: Some(70),
            total_runs: 80,
            failed_runs: 5,
            ..CorpusSpec::default()
        })
    }

    #[test]
    fn generated_corpus_is_lint_clean() {
        let c = corpus();
        let dirty = lint_corpus(&c);
        assert!(
            dirty.is_empty(),
            "generated traces must pass their own profile lint: {:?}",
            dirty.first()
        );
    }

    #[test]
    fn profile_violations_are_caught() {
        let c = corpus();
        // Corrupt a Taverna trace with a Wings-only assertion.
        let mut trace = c
            .traces
            .iter()
            .find(|t| t.system == System::Taverna)
            .unwrap()
            .clone();
        trace.dataset.default_graph_mut().insert(Triple::new(
            Iri::new_unchecked("http://e/x"),
            prov::was_attributed_to(),
            Iri::new_unchecked("http://e/agent"),
        ));
        let findings = lint_trace(&trace);
        assert!(findings.iter().any(|f| f.rule == "taverna/profile-purity"));
        assert!(findings[0].to_string().contains("taverna/"));
    }

    #[test]
    fn missing_structure_is_caught() {
        let c = corpus();
        let mut trace = c
            .traces
            .iter()
            .find(|t| t.system == System::Wings)
            .unwrap()
            .clone();
        // Declare an execution process with no account/component/status.
        let account = provbench_wings::account_iri(&trace.run_id);
        trace
            .dataset
            .named_graph_mut(account.into())
            .insert(Triple::new(
                Iri::new_unchecked("http://e/orphan"),
                vocab::rdf_type(),
                opmw::workflow_execution_process(),
            ));
        let findings = lint_trace(&trace);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"wings/process-account"));
        assert!(rules.contains(&"wings/process-component"));
        assert!(rules.contains(&"wings/process-status"));
    }
}
