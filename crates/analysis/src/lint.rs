//! Trace linting — corpus QA for the paper's §6 maintenance story
//! ("maintaining the corpus… improve the corpus in the light of
//! community feedback").
//!
//! The actual checks live in `provbench-diag`'s rule packs
//! ([`provbench_diag::rules::profile`]); this module is the
//! corpus-object-level entry point, adapting in-memory [`TraceRecord`]s
//! to the diag engine and its diagnostics back to the historical
//! [`LintFinding`] shape (the `rule` field carries the same slugs the
//! pre-registry linter used, e.g. `taverna/profile-purity`).

use provbench_core::TraceRecord;
use provbench_diag::rules::profile::{TavernaProfile, WingsProfile};
use provbench_diag::{FileContext, Rule};
use provbench_rdf::{Iri, SpanTable};
use provbench_workflow::System;
use std::fmt;

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintFinding {
    /// The rule that fired (a stable slug such as `taverna/artifact-value`).
    pub rule: &'static str,
    /// The offending node, when the rule points at one.
    pub node: Option<Iri>,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.node {
            Some(n) => write!(f, "[{}] {} ({})", self.rule, self.detail, n),
            None => write!(f, "[{}] {}", self.rule, self.detail),
        }
    }
}

/// Lint one trace (its union graph) against its system profile.
pub fn lint_trace(trace: &TraceRecord) -> Vec<LintFinding> {
    let g = trace.union_graph();
    let spans = SpanTable::default();
    let cx = FileContext {
        path: None,
        graph: &g,
        spans: &spans,
        system: Some(trace.system),
    };
    let mut diags = Vec::new();
    match trace.system {
        System::Taverna => TavernaProfile.check(&cx, &mut diags),
        System::Wings => WingsProfile.check(&cx, &mut diags),
    }
    diags
        .into_iter()
        .map(|d| LintFinding {
            rule: d.rule.slug,
            node: d.node,
            detail: d.message,
        })
        .collect()
}

/// Lint every trace of a corpus; returns `(run id, findings)` for runs
/// with at least one finding.
pub fn lint_corpus(corpus: &provbench_core::Corpus) -> Vec<(String, Vec<LintFinding>)> {
    corpus
        .traces
        .iter()
        .filter_map(|t| {
            let findings = lint_trace(t);
            (!findings.is_empty()).then(|| (t.run_id.clone(), findings))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_core::{Corpus, CorpusSpec};
    use provbench_rdf::Triple;
    use provbench_vocab::{self as vocab, opmw, prov};

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusSpec {
            max_workflows: Some(70),
            total_runs: 80,
            failed_runs: 5,
            ..CorpusSpec::default()
        })
    }

    #[test]
    fn generated_corpus_is_lint_clean() {
        let c = corpus();
        let dirty = lint_corpus(&c);
        assert!(
            dirty.is_empty(),
            "generated traces must pass their own profile lint: {:?}",
            dirty.first()
        );
    }

    #[test]
    fn profile_violations_are_caught() {
        let c = corpus();
        // Corrupt a Taverna trace with a Wings-only assertion.
        let mut trace = c
            .traces
            .iter()
            .find(|t| t.system == System::Taverna)
            .unwrap()
            .clone();
        trace.dataset.default_graph_mut().insert(Triple::new(
            Iri::new_unchecked("http://e/x"),
            prov::was_attributed_to(),
            Iri::new_unchecked("http://e/agent"),
        ));
        let findings = lint_trace(&trace);
        assert!(findings.iter().any(|f| f.rule == "taverna/profile-purity"));
        assert!(findings[0].to_string().contains("taverna/"));
    }

    #[test]
    fn missing_structure_is_caught() {
        let c = corpus();
        let mut trace = c
            .traces
            .iter()
            .find(|t| t.system == System::Wings)
            .unwrap()
            .clone();
        // Declare an execution process with no account/component/status.
        let account = provbench_wings::account_iri(&trace.run_id);
        trace
            .dataset
            .named_graph_mut(account.into())
            .insert(Triple::new(
                Iri::new_unchecked("http://e/orphan"),
                vocab::rdf_type(),
                opmw::workflow_execution_process(),
            ));
        let findings = lint_trace(&trace);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"wings/process-account"));
        assert!(rules.contains(&"wings/process-component"));
        assert!(rules.contains(&"wings/process-status"));
    }
}
