//! Interoperability analysis — the paper's §6: "we also intend to
//! investigate further interoperable queries to retrieve provenance
//! results from both workflows systems".
//!
//! A *capability* is something a provenance consumer wants to ask
//! (list runs, get process times, find services, …). Each capability
//! needs certain terms per system; this module derives, from the actual
//! trace graphs, which systems can answer it and whether a cross-system
//! query must UNION two different graph shapes — exactly the situation
//! the six exemplar queries of §4 illustrate.

use provbench_core::Corpus;
use provbench_prov::stats::TermStats;
use provbench_rdf::Iri;
use provbench_vocab::{opmw, prov, wfprov};
use provbench_workflow::System;
use std::fmt;

/// A question a provenance consumer may ask of the corpus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Capability {
    /// List workflow runs (Q1's core).
    RunListing,
    /// Run-level start/end times (Q1's times).
    RunTimes,
    /// Link runs to their workflow template (Q2/Q3).
    TemplateAssociation,
    /// Workflow-level inputs/outputs (Q3).
    RunInputsOutputs,
    /// Process-level start/end times (Q4's note: Taverna-only).
    ProcessTimes,
    /// Who executed a run (Q5).
    Executor,
    /// Services/components invoked (Q6's note: Wings-only).
    Services,
    /// Provenance of staged inputs (primary sources).
    PrimarySources,
    /// Links between nested sub-workflow runs.
    SubWorkflowLinks,
}

impl Capability {
    /// All capabilities, in report order.
    pub const ALL: [Capability; 9] = [
        Capability::RunListing,
        Capability::RunTimes,
        Capability::TemplateAssociation,
        Capability::RunInputsOutputs,
        Capability::ProcessTimes,
        Capability::Executor,
        Capability::Services,
        Capability::PrimarySources,
        Capability::SubWorkflowLinks,
    ];

    /// Human description.
    pub fn description(&self) -> &'static str {
        match self {
            Capability::RunListing => "list workflow runs",
            Capability::RunTimes => "run start/end times",
            Capability::TemplateAssociation => "associate runs with templates",
            Capability::RunInputsOutputs => "workflow-level inputs/outputs",
            Capability::ProcessTimes => "process start/end times",
            Capability::Executor => "who executed a run",
            Capability::Services => "services executed",
            Capability::PrimarySources => "primary sources of inputs",
            Capability::SubWorkflowLinks => "sub-workflow connections",
        }
    }

    /// The terms whose assertion makes a system answer this capability:
    /// `(taverna terms, wings terms)` — any-of semantics within a list,
    /// all-of across the tuple entries that are non-empty.
    fn requirements(&self) -> (Vec<Iri>, Vec<Iri>) {
        match self {
            Capability::RunListing => (
                vec![wfprov::workflow_run()],
                vec![opmw::workflow_execution_account()],
            ),
            Capability::RunTimes => (
                vec![prov::started_at_time(), prov::ended_at_time()],
                vec![opmw::overall_start_time(), opmw::overall_end_time()],
            ),
            Capability::TemplateAssociation => (
                vec![wfprov::described_by_workflow()],
                vec![opmw::corresponds_to_template()],
            ),
            Capability::RunInputsOutputs => (
                vec![prov::used(), prov::was_generated_by()],
                vec![opmw::is_input_of(), opmw::is_output_of()],
            ),
            Capability::ProcessTimes => (
                vec![prov::started_at_time(), prov::ended_at_time()],
                // Wings never records per-activity times under any term.
                vec![],
            ),
            Capability::Executor => (
                vec![prov::was_associated_with()],
                vec![prov::was_attributed_to()],
            ),
            Capability::Services => (vec![], vec![opmw::has_executable_component()]),
            Capability::PrimarySources => (vec![], vec![prov::had_primary_source()]),
            Capability::SubWorkflowLinks => (vec![prov::was_informed_by()], vec![]),
        }
    }
}

/// How each system supports a capability, measured from the traces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InteropRow {
    /// The capability.
    pub capability: Capability,
    /// Whether Taverna traces can answer it.
    pub taverna: bool,
    /// Whether Wings traces can answer it.
    pub wings: bool,
    /// Whether a cross-system query needs a UNION of different graph
    /// shapes (true when both can answer but via different vocabularies).
    pub needs_union: bool,
}

impl InteropRow {
    /// Whether the capability is answerable corpus-wide.
    pub fn interoperable(&self) -> bool {
        self.taverna && self.wings
    }
}

/// The full interoperability report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InteropReport {
    /// One row per capability.
    pub rows: Vec<InteropRow>,
}

impl fmt::Display for InteropReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:34} {:8} {:6} cross-system",
            "capability", "Taverna", "Wings"
        )?;
        for row in &self.rows {
            let cross = if row.interoperable() {
                if row.needs_union {
                    "UNION of two shapes"
                } else {
                    "single shape"
                }
            } else if row.taverna {
                "Taverna only"
            } else if row.wings {
                "Wings only"
            } else {
                "unanswerable"
            };
            writeln!(
                f,
                "{:34} {:8} {:6} {}",
                row.capability.description(),
                if row.taverna { "yes" } else { "-" },
                if row.wings { "yes" } else { "-" },
                cross
            )?;
        }
        Ok(())
    }
}

/// Derive the report from a corpus by scanning each system's traces.
pub fn interop_report(corpus: &Corpus) -> InteropReport {
    let taverna = TermStats::of_graph(&corpus.system_graph(System::Taverna));
    let wings = TermStats::of_graph(&corpus.system_graph(System::Wings));
    // A term "answers" whether asserted as predicate or class.
    let supports = |stats: &TermStats, terms: &[Iri]| {
        !terms.is_empty()
            && terms
                .iter()
                .all(|t| stats.uses_property(t) || stats.uses_class(t))
    };
    let rows = Capability::ALL
        .iter()
        .map(|&capability| {
            let (tav_terms, wgs_terms) = capability.requirements();
            let taverna_ok = supports(&taverna, &tav_terms);
            let wings_ok = supports(&wings, &wgs_terms);
            // A union is needed when the two systems answer via
            // different term sets.
            let needs_union = taverna_ok && wings_ok && tav_terms != wgs_terms;
            InteropRow {
                capability,
                taverna: taverna_ok,
                wings: wings_ok,
                needs_union,
            }
        })
        .collect();
    InteropReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_core::CorpusSpec;

    fn report() -> InteropReport {
        let corpus = Corpus::generate(&CorpusSpec {
            total_runs: 130,
            failed_runs: 8,
            ..CorpusSpec::default()
        });
        interop_report(&corpus)
    }

    fn row(r: &InteropReport, c: Capability) -> InteropRow {
        r.rows.iter().find(|x| x.capability == c).cloned().unwrap()
    }

    #[test]
    fn matches_the_papers_availability_notes() {
        let r = report();
        // Q4's note: process times only in Taverna logs.
        let pt = row(&r, Capability::ProcessTimes);
        assert!(pt.taverna && !pt.wings);
        // Q6's note: services only in Wings logs.
        let sv = row(&r, Capability::Services);
        assert!(!sv.taverna && sv.wings);
        // Primary sources and sub-workflow links are single-system too.
        assert!(!row(&r, Capability::PrimarySources).taverna);
        assert!(row(&r, Capability::PrimarySources).wings);
        assert!(row(&r, Capability::SubWorkflowLinks).taverna);
        assert!(!row(&r, Capability::SubWorkflowLinks).wings);
    }

    #[test]
    fn core_capabilities_are_interoperable_via_union() {
        let r = report();
        for c in [
            Capability::RunListing,
            Capability::RunTimes,
            Capability::TemplateAssociation,
            Capability::RunInputsOutputs,
            Capability::Executor,
        ] {
            let row = row(&r, c);
            assert!(row.interoperable(), "{c:?} should be answerable on both");
            assert!(row.needs_union, "{c:?} needs a UNION of two shapes");
        }
    }

    #[test]
    fn report_covers_all_capabilities_and_prints() {
        let r = report();
        assert_eq!(r.rows.len(), Capability::ALL.len());
        let text = r.to_string();
        assert!(text.contains("services executed"));
        assert!(text.contains("Wings only"));
        assert!(text.contains("UNION of two shapes"));
    }
}
