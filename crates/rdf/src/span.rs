//! Source spans for parsed statements.
//!
//! The Turtle/TriG parsers can optionally record, for every triple they
//! emit, where in the source document that triple was asserted. The
//! recording is a side table keyed by emission order — the hot parse path
//! (used by corpus generation and the query engine) stays allocation-free
//! when spans are not requested.

use crate::term::Subject;
use crate::triple::Triple;
use std::collections::HashMap;

/// A region of source text, 1-based, inclusive of the start of the last
/// token that contributed to the statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// 1-based line of the first token of the statement clause.
    pub line: usize,
    /// 1-based column of the first token of the statement clause.
    pub column: usize,
    /// 1-based line of the last token of the statement clause.
    pub end_line: usize,
    /// 1-based column of the last token of the statement clause.
    pub end_column: usize,
}

impl Span {
    /// A span covering a single point.
    pub fn point(line: usize, column: usize) -> Self {
        Span {
            line,
            column,
            end_line: line,
            end_column: column,
        }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// One parsed statement with its source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpannedStatement {
    /// The named graph the triple was asserted in (`None` = default graph).
    pub graph: Option<Subject>,
    /// The emitted triple.
    pub triple: Triple,
    /// Where in the document the triple's clause appears.
    pub span: Span,
}

/// Side table of statement spans, in emission order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanTable {
    entries: Vec<SpannedStatement>,
}

impl SpanTable {
    /// An empty table.
    pub fn new() -> Self {
        SpanTable::default()
    }

    /// Record one statement (called by the parser).
    pub(crate) fn push(&mut self, entry: SpannedStatement) {
        self.entries.push(entry);
    }

    /// Number of recorded statements (counts duplicates separately).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All recorded statements in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &SpannedStatement> {
        self.entries.iter()
    }

    /// Span of the first occurrence of `triple` in any graph.
    pub fn span_of(&self, triple: &Triple) -> Option<Span> {
        self.entries
            .iter()
            .find(|e| &e.triple == triple)
            .map(|e| e.span)
    }

    /// Build a first-occurrence-wins lookup map over all graphs. Use this
    /// when many lookups will be made against the same document.
    pub fn index(&self) -> HashMap<&Triple, Span> {
        let mut map = HashMap::with_capacity(self.entries.len());
        for e in &self.entries {
            map.entry(&e.triple).or_insert(e.span);
        }
        map
    }

    /// Span of the first recorded statement whose subject is `subject`
    /// (useful for diagnostics about a node rather than a single triple).
    pub fn first_for_subject(&self, subject: &Subject) -> Option<Span> {
        self.entries
            .iter()
            .find(|e| &e.triple.subject == subject)
            .map(|e| e.span)
    }
}

impl<'a> IntoIterator for &'a SpanTable {
    type Item = &'a SpannedStatement;
    type IntoIter = std::slice::Iter<'a, SpannedStatement>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Iri;
    use crate::triple::Triple;

    fn t(s: &str) -> Triple {
        Triple::new(
            Iri::new(format!("http://e/{s}")).unwrap(),
            Iri::new("http://e/p").unwrap(),
            Iri::new("http://e/o").unwrap(),
        )
    }

    #[test]
    fn first_occurrence_wins() {
        let mut table = SpanTable::new();
        table.push(SpannedStatement {
            graph: None,
            triple: t("a"),
            span: Span::point(1, 1),
        });
        table.push(SpannedStatement {
            graph: None,
            triple: t("a"),
            span: Span::point(9, 9),
        });
        table.push(SpannedStatement {
            graph: None,
            triple: t("b"),
            span: Span::point(2, 5),
        });
        assert_eq!(table.span_of(&t("a")), Some(Span::point(1, 1)));
        assert_eq!(table.index()[&t("b")], Span::point(2, 5));
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn subject_lookup() {
        let mut table = SpanTable::new();
        table.push(SpannedStatement {
            graph: None,
            triple: t("a"),
            span: Span::point(3, 2),
        });
        let subj = t("a").subject.clone();
        assert_eq!(table.first_for_subject(&subj), Some(Span::point(3, 2)));
        assert_eq!(table.first_for_subject(&t("x").subject.clone()), None);
    }

    #[test]
    fn display_is_line_colon_column() {
        assert_eq!(Span::point(12, 7).to_string(), "12:7");
    }
}
