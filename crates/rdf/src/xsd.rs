//! XSD datatype IRIs and an `xsd:dateTime` implementation.
//!
//! The corpus relies on `xsd:dateTime` for `prov:startedAtTime` /
//! `prov:endedAtTime`; we implement a UTC-only proleptic-Gregorian
//! date-time from scratch (millisecond precision) rather than pulling in a
//! date/time crate.

use crate::error::RdfError;
use std::fmt;

/// `xsd:string`.
pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
/// `xsd:integer`.
pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
/// `xsd:long`.
pub const LONG: &str = "http://www.w3.org/2001/XMLSchema#long";
/// `xsd:int`.
pub const INT: &str = "http://www.w3.org/2001/XMLSchema#int";
/// `xsd:decimal`.
pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
/// `xsd:double`.
pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
/// `xsd:boolean`.
pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
/// `xsd:dateTime`.
pub const DATE_TIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
/// `xsd:anyURI`.
pub const ANY_URI: &str = "http://www.w3.org/2001/XMLSchema#anyURI";

/// A UTC instant with millisecond precision, printable as `xsd:dateTime`.
///
/// Internally stored as milliseconds since the Unix epoch, which makes
/// ordering and arithmetic trivial; calendar fields are derived on demand
/// with the standard days-from-civil algorithm.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DateTime {
    unix_millis: i64,
}

impl DateTime {
    /// From milliseconds since 1970-01-01T00:00:00Z.
    pub fn from_unix_millis(unix_millis: i64) -> Self {
        DateTime { unix_millis }
    }

    /// Milliseconds since the Unix epoch.
    pub fn unix_millis(&self) -> i64 {
        self.unix_millis
    }

    /// Build from calendar components (UTC). Panics on out-of-range fields
    /// in debug builds; callers in this workspace always pass valid fields.
    pub fn from_ymd_hms(
        year: i32,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: u32,
    ) -> Self {
        debug_assert!((1..=12).contains(&month));
        debug_assert!((1..=31).contains(&day));
        debug_assert!(hour < 24 && minute < 60 && second < 60);
        let days = days_from_civil(year, month, day);
        let secs =
            days * 86_400 + i64::from(hour) * 3_600 + i64::from(minute) * 60 + i64::from(second);
        DateTime {
            unix_millis: secs * 1_000,
        }
    }

    /// Add a number of milliseconds, returning a new instant.
    pub fn plus_millis(&self, delta: i64) -> Self {
        DateTime {
            unix_millis: self.unix_millis + delta,
        }
    }

    /// Signed difference `self - other` in milliseconds.
    pub fn millis_since(&self, other: &DateTime) -> i64 {
        self.unix_millis - other.unix_millis
    }

    /// Parse `YYYY-MM-DDThh:mm:ss(.fff)?(Z|+00:00)?`; offsets other than
    /// UTC are rejected (the corpus is generated in UTC).
    pub fn parse(s: &str) -> Result<Self, RdfError> {
        let err = || RdfError::InvalidLexicalForm {
            lexical: s.to_owned(),
            datatype: DATE_TIME.to_owned(),
        };
        let bytes = s.as_bytes();
        if bytes.len() < 19 {
            return Err(err());
        }
        // Date part: accept an optional leading '-' for negative years.
        let (date, rest) = s.split_at(s.find('T').ok_or_else(err)?);
        let rest = &rest[1..];
        let mut dparts = date.splitn(3, '-');
        let (y, m, d) = if let Some(stripped) = date.strip_prefix('-') {
            let mut p = stripped.splitn(3, '-');
            let y: i32 = p.next().ok_or_else(err)?.parse().map_err(|_| err())?;
            (
                -y,
                p.next().ok_or_else(err)?.parse().map_err(|_| err())?,
                p.next().ok_or_else(err)?.parse().map_err(|_| err())?,
            )
        } else {
            (
                dparts.next().ok_or_else(err)?.parse().map_err(|_| err())?,
                dparts.next().ok_or_else(err)?.parse().map_err(|_| err())?,
                dparts.next().ok_or_else(err)?.parse().map_err(|_| err())?,
            )
        };
        if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
            return Err(err());
        }
        // Time part: hh:mm:ss[.fraction][Z|+00:00|-00:00]
        let (time, zone) = match rest.find(['Z', '+']) {
            Some(i) => rest.split_at(i),
            None => {
                // A '-' after position 0 would be a negative offset.
                match rest.rfind('-') {
                    Some(i) if i > 7 => rest.split_at(i),
                    _ => (rest, ""),
                }
            }
        };
        if !(zone.is_empty() || zone == "Z" || zone == "+00:00" || zone == "-00:00") {
            return Err(err());
        }
        let (hms, frac) = match time.find('.') {
            Some(i) => (&time[..i], &time[i + 1..]),
            None => (time, ""),
        };
        let mut tparts = hms.splitn(3, ':');
        let h: u32 = tparts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let mi: u32 = tparts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let sec: u32 = tparts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if h > 23 || mi > 59 || sec > 59 {
            return Err(err());
        }
        let millis: i64 = if frac.is_empty() {
            0
        } else {
            if !frac.chars().all(|c| c.is_ascii_digit()) {
                return Err(err());
            }
            let padded = format!("{frac:0<3}");
            padded[..3].parse().map_err(|_| err())?
        };
        Ok(DateTime::from_ymd_hms(y, m, d, h, mi, sec).plus_millis(millis))
    }

    /// Calendar components `(year, month, day, hour, minute, second, millis)`.
    pub fn components(&self) -> (i32, u32, u32, u32, u32, u32, u32) {
        let millis = self.unix_millis.rem_euclid(1_000) as u32;
        let total_secs = self.unix_millis.div_euclid(1_000);
        let days = total_secs.div_euclid(86_400);
        let secs_of_day = total_secs.rem_euclid(86_400);
        let (y, m, d) = civil_from_days(days);
        let h = (secs_of_day / 3_600) as u32;
        let mi = ((secs_of_day % 3_600) / 60) as u32;
        let s = (secs_of_day % 60) as u32;
        (y, m, d, h, mi, s, millis)
    }
}

impl fmt::Display for DateTime {
    /// Canonical `xsd:dateTime` lexical form in UTC; milliseconds are
    /// printed only when non-zero.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d, h, mi, s, ms) = self.components();
        if ms == 0 {
            write!(f, "{y:04}-{m:02}-{d:02}T{h:02}:{mi:02}:{s:02}Z")
        } else {
            write!(f, "{y:04}-{m:02}-{d:02}T{h:02}:{mi:02}:{s:02}.{ms:03}Z")
        }
    }
}

impl fmt::Debug for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DateTime({self})")
    }
}

fn is_leap(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Days since 1970-01-01 for a proleptic-Gregorian civil date
/// (Howard Hinnant's `days_from_civil`).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`] (Howard Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        let dt = DateTime::from_ymd_hms(1970, 1, 1, 0, 0, 0);
        assert_eq!(dt.unix_millis(), 0);
        assert_eq!(dt.to_string(), "1970-01-01T00:00:00Z");
    }

    #[test]
    fn known_instant() {
        // 2013-01-15T10:30:00Z == 1358245800 (checked against `date -d`).
        let dt = DateTime::from_ymd_hms(2013, 1, 15, 10, 30, 0);
        assert_eq!(dt.unix_millis(), 1_358_245_800_000);
    }

    #[test]
    fn parse_variants() {
        for s in [
            "2013-01-15T10:30:00Z",
            "2013-01-15T10:30:00",
            "2013-01-15T10:30:00+00:00",
            "2013-01-15T10:30:00.000Z",
        ] {
            assert_eq!(
                DateTime::parse(s).unwrap().unix_millis(),
                1_358_245_800_000,
                "failed for {s}"
            );
        }
        assert_eq!(
            DateTime::parse("2013-01-15T10:30:00.250Z")
                .unwrap()
                .unix_millis(),
            1_358_245_800_250
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "not a date",
            "2013-13-01T00:00:00Z",
            "2013-02-30T00:00:00Z",
            "2013-01-15T25:00:00Z",
            "2013-01-15T10:30:00+02:00",
            "2013-01-15",
        ] {
            assert!(DateTime::parse(s).is_err(), "accepted {s}");
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        for ms in [
            0i64,
            1,
            -1,
            1_358_245_800_123,
            -86_400_000,
            253_402_300_799_000,
        ] {
            let dt = DateTime::from_unix_millis(ms);
            let back = DateTime::parse(&dt.to_string()).unwrap();
            assert_eq!(back, dt, "roundtrip failed for {ms}");
        }
    }

    #[test]
    fn leap_year_handling() {
        assert_eq!(days_in_month(2012, 2), 29);
        assert_eq!(days_in_month(2013, 2), 28);
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
        let dt = DateTime::from_ymd_hms(2012, 2, 29, 12, 0, 0);
        let (y, m, d, ..) = dt.components();
        assert_eq!((y, m, d), (2012, 2, 29));
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = DateTime::from_ymd_hms(2013, 1, 15, 10, 0, 0);
        let b = a.plus_millis(90_000);
        assert!(a < b);
        assert_eq!(b.millis_since(&a), 90_000);
        let (.., mi, s, _) = b.components();
        assert_eq!((mi, s), (1, 30));
    }

    #[test]
    fn civil_days_roundtrip_wide_range() {
        for days in (-800_000..800_000).step_by(9_973) {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days);
        }
    }
}
