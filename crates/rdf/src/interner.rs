//! Term interning: maps terms to dense `u32` symbols so that the graph
//! indexes operate on integers instead of strings.

use crate::term::Term;
use std::collections::HashMap;

/// A dense symbol for an interned [`Term`].
///
/// Ids are per-[`crate::Graph`]: they are assigned in first-seen order by
/// that graph's interner and are meaningless across graphs. The query
/// engine evaluates joins over these integers and only resolves them back
/// to terms at projection time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// The raw index. Dense: every id below [`crate::Graph::term_count`]
    /// resolves.
    pub const fn to_u32(self) -> u32 {
        self.0
    }

    /// Rebuild an id from its raw index (e.g. out of a compact binding
    /// row). Resolving an id that this graph's interner never produced
    /// panics.
    pub const fn from_u32(raw: u32) -> Self {
        TermId(raw)
    }
}

/// Bidirectional `Term` ↔ `TermId` map owned by each [`crate::Graph`].
#[derive(Default, Clone, Debug)]
pub(crate) struct Interner {
    to_id: HashMap<Term, TermId>,
    to_term: Vec<Term>,
}

impl Interner {
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern a term, returning its stable id.
    pub fn intern(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.to_id.get(term) {
            return id;
        }
        let id = TermId(u32::try_from(self.to_term.len()).expect("interner overflow"));
        self.to_id.insert(term.clone(), id);
        self.to_term.push(term.clone());
        id
    }

    /// Look up an id without interning; `None` if never seen.
    pub fn get(&self, term: &Term) -> Option<TermId> {
        self.to_id.get(term).copied()
    }

    /// Resolve an id back to its term. Ids are never removed, so any id
    /// produced by this interner resolves.
    pub fn resolve(&self, id: TermId) -> &Term {
        &self.to_term[id.0 as usize]
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.to_term.len()
    }

    /// The interned terms in id order: id `i` resolves to `terms()[i]`.
    pub fn terms(&self) -> &[Term] {
        &self.to_term
    }

    /// Rebuild an interner from a term table in id order (the inverse of
    /// [`Interner::terms`]). Returns `None` if the table contains a
    /// duplicate term — a table that no interner could have produced.
    pub fn from_terms(terms: Vec<Term>) -> Option<Self> {
        let mut to_id = HashMap::with_capacity(terms.len());
        for (i, term) in terms.iter().enumerate() {
            let id = TermId(u32::try_from(i).ok()?);
            if to_id.insert(term.clone(), id).is_some() {
                return None;
            }
        }
        Some(Interner {
            to_id,
            to_term: terms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Iri, Literal};

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let t: Term = Iri::new("http://ex.org/a").unwrap().into();
        let a = i.intern(&t);
        let b = i.intern(&t);
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
        assert_eq!(i.resolve(a), &t);
    }

    #[test]
    fn distinct_terms_distinct_ids() {
        let mut i = Interner::new();
        let a = i.intern(&Term::Literal(Literal::simple("x")));
        let b = i.intern(&Term::Literal(Literal::lang("x", "en").unwrap()));
        let c = i.intern(&Term::Iri(Iri::new("http://ex.org/x").unwrap()));
        assert!(a != b && b != c && a != c);
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        let t: Term = Literal::simple("y").into();
        assert!(i.get(&t).is_none());
        let id = i.intern(&t);
        assert_eq!(i.get(&t), Some(id));
    }

    #[test]
    fn raw_roundtrip() {
        let mut i = Interner::new();
        let id = i.intern(&Term::Literal(Literal::simple("z")));
        assert_eq!(TermId::from_u32(id.to_u32()), id);
    }
}
