//! An indexed, in-memory RDF graph.
//!
//! Triples are interned into `(u32, u32, u32)` keys and stored in three
//! B-tree indexes (SPO, POS, OSP) so that every triple-pattern shape maps
//! to a contiguous range scan over integers.

use crate::interner::{Interner, TermId};
use crate::term::{Iri, Subject, Term};
use crate::triple::Triple;
use std::collections::BTreeSet;

type Key = (TermId, TermId, TermId);

const MIN: TermId = TermId(0);
const MAX: TermId = TermId(u32::MAX);

/// An in-memory set of triples with SPO/POS/OSP indexes.
#[derive(Default, Clone, Debug)]
pub struct Graph {
    interner: Interner,
    spo: BTreeSet<Key>,
    pos: BTreeSet<Key>,
    osp: BTreeSet<Key>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Whether the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Number of distinct terms appearing in any position.
    pub fn term_count(&self) -> usize {
        self.interner.len()
    }

    /// Insert a triple; returns `true` if it was not already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        let s = self.interner.intern(&Term::from(triple.subject));
        let p = self.interner.intern(&Term::Iri(triple.predicate));
        let o = self.interner.intern(&triple.object);
        let added = self.spo.insert((s, p, o));
        if added {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
        }
        added
    }

    /// Remove a triple; returns `true` if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.interner.get(&Term::from(triple.subject.clone())),
            self.interner.get(&Term::Iri(triple.predicate.clone())),
            self.interner.get(&triple.object),
        ) else {
            return false;
        };
        let removed = self.spo.remove(&(s, p, o));
        if removed {
            self.pos.remove(&(p, o, s));
            self.osp.remove(&(o, s, p));
        }
        removed
    }

    /// Whether the graph contains the triple.
    pub fn contains(&self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.interner.get(&Term::from(triple.subject.clone())),
            self.interner.get(&Term::Iri(triple.predicate.clone())),
            self.interner.get(&triple.object),
        ) else {
            return false;
        };
        self.spo.contains(&(s, p, o))
    }

    /// Insert every triple of `other`.
    pub fn extend_from_graph(&mut self, other: &Graph) {
        for t in other.iter() {
            self.insert(t);
        }
    }

    /// Triples of `self` not present in `other`.
    pub fn difference(&self, other: &Graph) -> Graph {
        self.iter().filter(|t| !other.contains(t)).collect()
    }

    /// Triples present in both graphs.
    pub fn intersection(&self, other: &Graph) -> Graph {
        self.iter().filter(|t| other.contains(t)).collect()
    }

    fn decode(&self, (s, p, o): Key) -> Triple {
        let subject = match self.interner.resolve(s) {
            Term::Iri(i) => Subject::Iri(i.clone()),
            Term::Blank(b) => Subject::Blank(b.clone()),
            Term::Literal(_) => unreachable!("literal interned in subject position"),
        };
        let predicate = match self.interner.resolve(p) {
            Term::Iri(i) => i.clone(),
            _ => unreachable!("non-IRI interned in predicate position"),
        };
        Triple {
            subject,
            predicate,
            object: self.interner.resolve(o).clone(),
        }
    }

    /// Iterate over every triple (in SPO index order).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(move |&k| self.decode(k))
    }

    /// Iterate over triples matching the pattern; `None` is a wildcard.
    ///
    /// Every pattern shape is answered by a single range scan over one of
    /// the three indexes (or a point lookup when fully bound).
    pub fn triples_matching<'a>(
        &'a self,
        s: Option<&Subject>,
        p: Option<&Iri>,
        o: Option<&Term>,
    ) -> Box<dyn Iterator<Item = Triple> + 'a> {
        let sid = match s {
            Some(s) => match self.interner.get(&Term::from(s.clone())) {
                Some(id) => Some(id),
                None => return Box::new(std::iter::empty()),
            },
            None => None,
        };
        let pid = match p {
            Some(p) => match self.interner.get(&Term::Iri(p.clone())) {
                Some(id) => Some(id),
                None => return Box::new(std::iter::empty()),
            },
            None => None,
        };
        let oid = match o {
            Some(o) => match self.interner.get(o) {
                Some(id) => Some(id),
                None => return Box::new(std::iter::empty()),
            },
            None => None,
        };
        match (sid, pid, oid) {
            (Some(s), Some(p), Some(o)) => {
                let hit = self.spo.contains(&(s, p, o));
                Box::new(hit.then(|| self.decode((s, p, o))).into_iter())
            }
            (Some(s), Some(p), None) => Box::new(
                self.spo
                    .range((s, p, MIN)..=(s, p, MAX))
                    .map(move |&k| self.decode(k)),
            ),
            (Some(s), None, None) => Box::new(
                self.spo
                    .range((s, MIN, MIN)..=(s, MAX, MAX))
                    .map(move |&k| self.decode(k)),
            ),
            (None, Some(p), Some(o)) => Box::new(
                self.pos
                    .range((p, o, MIN)..=(p, o, MAX))
                    .map(move |&(p, o, s)| self.decode((s, p, o))),
            ),
            (None, Some(p), None) => Box::new(
                self.pos
                    .range((p, MIN, MIN)..=(p, MAX, MAX))
                    .map(move |&(p, o, s)| self.decode((s, p, o))),
            ),
            (None, None, Some(o)) => Box::new(
                self.osp
                    .range((o, MIN, MIN)..=(o, MAX, MAX))
                    .map(move |&(o, s, p)| self.decode((s, p, o))),
            ),
            (Some(s), None, Some(o)) => Box::new(
                self.osp
                    .range((o, s, MIN)..=(o, s, MAX))
                    .map(move |&(o, s, p)| self.decode((s, p, o))),
            ),
            (None, None, None) => Box::new(self.iter()),
        }
    }

    /// Objects of triples `(s, p, ?)` — the most common navigation step.
    pub fn objects(&self, s: &Subject, p: &Iri) -> impl Iterator<Item = Term> + '_ {
        self.triples_matching(Some(s), Some(p), None)
            .map(|t| t.object)
    }

    /// First object of `(s, p, ?)`, if any.
    pub fn object(&self, s: &Subject, p: &Iri) -> Option<Term> {
        self.objects(s, p).next()
    }

    /// Subjects of triples `(?, p, o)`.
    pub fn subjects_with(&self, p: &Iri, o: &Term) -> impl Iterator<Item = Subject> + '_ {
        self.triples_matching(None, Some(p), Some(o))
            .map(|t| t.subject)
    }

    /// Distinct subjects of the whole graph (in index order).
    pub fn subjects(&self) -> Vec<Subject> {
        let mut out = Vec::new();
        let mut last: Option<TermId> = None;
        for &(s, _, _) in &self.spo {
            if last != Some(s) {
                last = Some(s);
                match self.interner.resolve(s) {
                    Term::Iri(i) => out.push(Subject::Iri(i.clone())),
                    Term::Blank(b) => out.push(Subject::Blank(b.clone())),
                    Term::Literal(_) => unreachable!(),
                }
            }
        }
        out
    }

    /// Distinct predicates of the whole graph.
    pub fn predicates(&self) -> Vec<Iri> {
        let mut out: Vec<Iri> = Vec::new();
        let mut last: Option<TermId> = None;
        for &(p, _, _) in &self.pos {
            if last != Some(p) {
                last = Some(p);
                if let Term::Iri(i) = self.interner.resolve(p) {
                    out.push(i.clone());
                }
            }
        }
        out
    }
}

impl Extend<Triple> for Graph {
    fn extend<T: IntoIterator<Item = Triple>>(&mut self, iter: T) {
        for t in iter {
            self.insert(t);
        }
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<T: IntoIterator<Item = Triple>>(iter: T) -> Self {
        let mut g = Graph::new();
        g.extend(iter);
        g
    }
}

impl PartialEq for Graph {
    /// Two graphs are equal when they contain the same triple set
    /// (ground comparison; blank nodes compare by label).
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|t| other.contains(&t))
    }
}

impl Eq for Graph {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{BlankNode, Literal};

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(iri(s), iri(p), iri(o))
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut g = Graph::new();
        assert!(g.insert(t("http://e/s", "http://e/p", "http://e/o")));
        assert!(!g.insert(t("http://e/s", "http://e/p", "http://e/o")));
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
    }

    #[test]
    fn remove_and_contains() {
        let mut g = Graph::new();
        let tr = t("http://e/s", "http://e/p", "http://e/o");
        g.insert(tr.clone());
        assert!(g.contains(&tr));
        assert!(g.remove(&tr));
        assert!(!g.contains(&tr));
        assert!(!g.remove(&tr));
        assert!(g.is_empty());
        // Removing a triple whose terms were never interned is a no-op.
        assert!(!g.remove(&t("http://e/x", "http://e/y", "http://e/z")));
    }

    #[test]
    fn all_eight_pattern_shapes() {
        let mut g = Graph::new();
        g.insert(t("http://e/s1", "http://e/p1", "http://e/o1"));
        g.insert(t("http://e/s1", "http://e/p1", "http://e/o2"));
        g.insert(t("http://e/s1", "http://e/p2", "http://e/o1"));
        g.insert(t("http://e/s2", "http://e/p1", "http://e/o1"));

        let s1: Subject = iri("http://e/s1").into();
        let p1 = iri("http://e/p1");
        let o1: Term = iri("http://e/o1").into();

        let count = |s: Option<&Subject>, p: Option<&Iri>, o: Option<&Term>| {
            g.triples_matching(s, p, o).count()
        };
        assert_eq!(count(None, None, None), 4);
        assert_eq!(count(Some(&s1), None, None), 3);
        assert_eq!(count(None, Some(&p1), None), 3);
        assert_eq!(count(None, None, Some(&o1)), 3);
        assert_eq!(count(Some(&s1), Some(&p1), None), 2);
        assert_eq!(count(Some(&s1), None, Some(&o1)), 2);
        assert_eq!(count(None, Some(&p1), Some(&o1)), 2);
        assert_eq!(count(Some(&s1), Some(&p1), Some(&o1)), 1);
    }

    #[test]
    fn unknown_terms_match_nothing() {
        let mut g = Graph::new();
        g.insert(t("http://e/s", "http://e/p", "http://e/o"));
        let unknown: Subject = iri("http://e/nope").into();
        assert_eq!(g.triples_matching(Some(&unknown), None, None).count(), 0);
    }

    #[test]
    fn blank_nodes_and_literals() {
        let mut g = Graph::new();
        let b = BlankNode::new("b0").unwrap();
        g.insert(Triple::new(
            b.clone(),
            iri("http://e/p"),
            Literal::simple("v"),
        ));
        let found: Vec<_> = g
            .triples_matching(Some(&b.clone().into()), None, None)
            .collect();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].object.as_literal().unwrap().lexical(), "v");
    }

    #[test]
    fn navigation_helpers() {
        let mut g = Graph::new();
        g.insert(t("http://e/s", "http://e/p", "http://e/o1"));
        g.insert(t("http://e/s", "http://e/p", "http://e/o2"));
        let s: Subject = iri("http://e/s").into();
        let p = iri("http://e/p");
        assert_eq!(g.objects(&s, &p).count(), 2);
        assert!(g.object(&s, &p).is_some());
        let o: Term = iri("http://e/o1").into();
        assert_eq!(g.subjects_with(&p, &o).count(), 1);
        assert_eq!(g.subjects().len(), 1);
        assert_eq!(g.predicates().len(), 1);
    }

    #[test]
    fn graph_equality_ignores_insertion_order() {
        let mut a = Graph::new();
        let mut b = Graph::new();
        a.insert(t("http://e/1", "http://e/p", "http://e/2"));
        a.insert(t("http://e/3", "http://e/p", "http://e/4"));
        b.insert(t("http://e/3", "http://e/p", "http://e/4"));
        b.insert(t("http://e/1", "http://e/p", "http://e/2"));
        assert_eq!(a, b);
        b.insert(t("http://e/5", "http://e/p", "http://e/6"));
        assert_ne!(a, b);
    }

    #[test]
    fn set_operations() {
        let mut a = Graph::new();
        a.insert(t("http://e/1", "http://e/p", "http://e/2"));
        a.insert(t("http://e/3", "http://e/p", "http://e/4"));
        let mut b = Graph::new();
        b.insert(t("http://e/3", "http://e/p", "http://e/4"));
        b.insert(t("http://e/5", "http://e/p", "http://e/6"));

        let diff = a.difference(&b);
        assert_eq!(diff.len(), 1);
        assert!(diff.contains(&t("http://e/1", "http://e/p", "http://e/2")));
        let inter = a.intersection(&b);
        assert_eq!(inter.len(), 1);
        assert!(inter.contains(&t("http://e/3", "http://e/p", "http://e/4")));
        // a = (a − b) ∪ (a ∩ b).
        let mut rebuilt = diff;
        rebuilt.extend_from_graph(&inter);
        assert_eq!(rebuilt, a);
    }

    #[test]
    fn extend_and_from_iterator() {
        let triples = vec![
            t("http://e/a", "http://e/p", "http://e/b"),
            t("http://e/c", "http://e/p", "http://e/d"),
        ];
        let g: Graph = triples.clone().into_iter().collect();
        assert_eq!(g.len(), 2);
        let mut g2 = Graph::new();
        g2.extend_from_graph(&g);
        assert_eq!(g, g2);
    }
}
