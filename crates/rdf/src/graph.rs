//! An indexed, in-memory RDF graph.
//!
//! Triples are interned into `(u32, u32, u32)` keys and stored in three
//! B-tree indexes (SPO, POS, OSP) so that every triple-pattern shape maps
//! to a contiguous range scan over integers.

use crate::error::RdfError;
use crate::interner::Interner;
pub use crate::interner::TermId;
use crate::term::{Iri, Subject, Term};
use crate::triple::Triple;
use std::collections::{BTreeSet, HashMap};

type Key = (TermId, TermId, TermId);

const MIN: TermId = TermId::from_u32(0);
const MAX: TermId = TermId::from_u32(u32::MAX);

/// An in-memory set of triples with SPO/POS/OSP indexes.
#[derive(Default, Clone, Debug)]
pub struct Graph {
    interner: Interner,
    spo: BTreeSet<Key>,
    pos: BTreeSet<Key>,
    osp: BTreeSet<Key>,
    /// Triples per predicate id — the planner's cardinality statistics,
    /// maintained incrementally so a lookup is O(1).
    pred_counts: HashMap<TermId, usize>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Whether the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Number of distinct terms appearing in any position.
    pub fn term_count(&self) -> usize {
        self.interner.len()
    }

    /// The interned term table in id order: `TermId::from_u32(i)` resolves
    /// to `interned_terms()[i]`. Together with
    /// [`Graph::ids_matching`]`(None, None, None)` this is the complete
    /// serializable state of a graph.
    pub fn interned_terms(&self) -> &[Term] {
        self.interner.terms()
    }

    /// Rebuild a graph from a term table plus interned id-triples — the
    /// inverse of [`Graph::interned_terms`] +
    /// [`Graph::ids_matching`]`(None, None, None)`, used by the binary
    /// corpus snapshot.
    ///
    /// Every id is validated against the table and every position against
    /// its term kind (subjects must be IRIs or blank nodes, predicates
    /// IRIs), so malformed input yields an error, never a panic or a
    /// graph that violates the RDF data model.
    pub fn from_interned(
        terms: Vec<Term>,
        triples: impl IntoIterator<Item = (u32, u32, u32)>,
    ) -> Result<Graph, RdfError> {
        let corrupt = |msg: String| RdfError::InvalidInterned(msg);
        let interner = Interner::from_terms(terms)
            .ok_or_else(|| corrupt("duplicate term in term table".into()))?;
        let n = u32::try_from(interner.len())
            .map_err(|_| corrupt("term table exceeds u32 id space".into()))?;
        let triples = triples.into_iter();
        let mut rows: Vec<Key> = Vec::with_capacity(triples.size_hint().0);
        for (s, p, o) in triples {
            if s >= n || p >= n || o >= n {
                return Err(corrupt(format!(
                    "triple ({s}, {p}, {o}) references ids beyond the {n}-entry term table"
                )));
            }
            let (s, p, o) = (TermId(s), TermId(p), TermId(o));
            if matches!(interner.resolve(s), Term::Literal(_)) {
                return Err(corrupt(format!("literal in subject position (id {})", s.0)));
            }
            if !matches!(interner.resolve(p), Term::Iri(_)) {
                return Err(corrupt(format!(
                    "non-IRI in predicate position (id {})",
                    p.0
                )));
            }
            rows.push((s, p, o));
        }
        rows.sort_unstable();
        rows.dedup();
        // collect() bulk-builds a B-tree from its (sorted) input in one
        // pass — far cheaper than per-triple inserts for a bulk load.
        let spo: BTreeSet<Key> = rows.iter().copied().collect();
        let pos: BTreeSet<Key> = rows.iter().map(|&(s, p, o)| (p, o, s)).collect();
        let osp: BTreeSet<Key> = rows.iter().map(|&(s, p, o)| (o, s, p)).collect();
        let mut pred_counts: HashMap<TermId, usize> = HashMap::new();
        for &(_, p, _) in &rows {
            *pred_counts.entry(p).or_insert(0) += 1;
        }
        Ok(Graph {
            interner,
            spo,
            pos,
            osp,
            pred_counts,
        })
    }

    /// Insert a triple; returns `true` if it was not already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        let s = self.interner.intern(&Term::from(triple.subject));
        let p = self.interner.intern(&Term::Iri(triple.predicate));
        let o = self.interner.intern(&triple.object);
        let added = self.spo.insert((s, p, o));
        if added {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
            *self.pred_counts.entry(p).or_insert(0) += 1;
        }
        added
    }

    /// Remove a triple; returns `true` if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.interner.get(&Term::from(triple.subject.clone())),
            self.interner.get(&Term::Iri(triple.predicate.clone())),
            self.interner.get(&triple.object),
        ) else {
            return false;
        };
        let removed = self.spo.remove(&(s, p, o));
        if removed {
            self.pos.remove(&(p, o, s));
            self.osp.remove(&(o, s, p));
            if let Some(n) = self.pred_counts.get_mut(&p) {
                *n -= 1;
                if *n == 0 {
                    self.pred_counts.remove(&p);
                }
            }
        }
        removed
    }

    /// Whether the graph contains the triple.
    pub fn contains(&self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.interner.get(&Term::from(triple.subject.clone())),
            self.interner.get(&Term::Iri(triple.predicate.clone())),
            self.interner.get(&triple.object),
        ) else {
            return false;
        };
        self.spo.contains(&(s, p, o))
    }

    /// Insert every triple of `other`.
    pub fn extend_from_graph(&mut self, other: &Graph) {
        for t in other.iter() {
            self.insert(t);
        }
    }

    /// Triples of `self` not present in `other`.
    pub fn difference(&self, other: &Graph) -> Graph {
        self.iter().filter(|t| !other.contains(t)).collect()
    }

    /// Triples present in both graphs.
    pub fn intersection(&self, other: &Graph) -> Graph {
        self.iter().filter(|t| other.contains(t)).collect()
    }

    fn decode(&self, (s, p, o): Key) -> Triple {
        let subject = match self.interner.resolve(s) {
            Term::Iri(i) => Subject::Iri(i.clone()),
            Term::Blank(b) => Subject::Blank(b.clone()),
            Term::Literal(_) => unreachable!("literal interned in subject position"),
        };
        let predicate = match self.interner.resolve(p) {
            Term::Iri(i) => i.clone(),
            _ => unreachable!("non-IRI interned in predicate position"),
        };
        Triple {
            subject,
            predicate,
            object: self.interner.resolve(o).clone(),
        }
    }

    /// Iterate over every triple (in SPO index order).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(move |&k| self.decode(k))
    }

    // ---------------------------------------------------- id-level API --
    //
    // The query engine evaluates joins entirely over `TermId`s, decoding
    // terms only at projection time. These methods expose the interned
    // view of the graph without any cloning or string comparison.

    /// The id of a term in this graph's interner, if it appears anywhere.
    pub fn term_to_id(&self, term: &Term) -> Option<TermId> {
        self.interner.get(term)
    }

    /// Resolve an id produced by this graph back to its term.
    ///
    /// # Panics
    /// Panics if the id did not come from this graph.
    pub fn id_to_term(&self, id: TermId) -> &Term {
        self.interner.resolve(id)
    }

    /// Number of triples whose predicate is the given id — the planner's
    /// per-predicate cardinality statistic (O(1)).
    pub fn predicate_cardinality(&self, p: TermId) -> usize {
        self.pred_counts.get(&p).copied().unwrap_or(0)
    }

    /// Iterate over interned `(s, p, o)` id-triples matching the pattern;
    /// `None` is a wildcard.
    ///
    /// The id-level twin of [`Graph::triples_matching`]: every shape is a
    /// single range scan over one of the three integer indexes, and no
    /// term is decoded.
    pub fn ids_matching(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Box<dyn Iterator<Item = (TermId, TermId, TermId)> + '_> {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                let hit = self.spo.contains(&(s, p, o));
                Box::new(hit.then_some((s, p, o)).into_iter())
            }
            (Some(s), Some(p), None) => {
                Box::new(self.spo.range((s, p, MIN)..=(s, p, MAX)).copied())
            }
            (Some(s), None, None) => {
                Box::new(self.spo.range((s, MIN, MIN)..=(s, MAX, MAX)).copied())
            }
            (None, Some(p), Some(o)) => Box::new(
                self.pos
                    .range((p, o, MIN)..=(p, o, MAX))
                    .map(|&(p, o, s)| (s, p, o)),
            ),
            (None, Some(p), None) => Box::new(
                self.pos
                    .range((p, MIN, MIN)..=(p, MAX, MAX))
                    .map(|&(p, o, s)| (s, p, o)),
            ),
            (None, None, Some(o)) => Box::new(
                self.osp
                    .range((o, MIN, MIN)..=(o, MAX, MAX))
                    .map(|&(o, s, p)| (s, p, o)),
            ),
            (Some(s), None, Some(o)) => Box::new(
                self.osp
                    .range((o, s, MIN)..=(o, s, MAX))
                    .map(|&(o, s, p)| (s, p, o)),
            ),
            (None, None, None) => Box::new(self.spo.iter().copied()),
        }
    }

    /// Iterate over triples matching the pattern; `None` is a wildcard.
    ///
    /// Every pattern shape is answered by a single range scan over one of
    /// the three indexes (or a point lookup when fully bound).
    pub fn triples_matching<'a>(
        &'a self,
        s: Option<&Subject>,
        p: Option<&Iri>,
        o: Option<&Term>,
    ) -> Box<dyn Iterator<Item = Triple> + 'a> {
        let sid = match s {
            Some(s) => match self.interner.get(&Term::from(s.clone())) {
                Some(id) => Some(id),
                None => return Box::new(std::iter::empty()),
            },
            None => None,
        };
        let pid = match p {
            Some(p) => match self.interner.get(&Term::Iri(p.clone())) {
                Some(id) => Some(id),
                None => return Box::new(std::iter::empty()),
            },
            None => None,
        };
        let oid = match o {
            Some(o) => match self.interner.get(o) {
                Some(id) => Some(id),
                None => return Box::new(std::iter::empty()),
            },
            None => None,
        };
        Box::new(
            self.ids_matching(sid, pid, oid)
                .map(move |k| self.decode(k)),
        )
    }

    /// Objects of triples `(s, p, ?)` — the most common navigation step.
    pub fn objects(&self, s: &Subject, p: &Iri) -> impl Iterator<Item = Term> + '_ {
        self.triples_matching(Some(s), Some(p), None)
            .map(|t| t.object)
    }

    /// First object of `(s, p, ?)`, if any.
    pub fn object(&self, s: &Subject, p: &Iri) -> Option<Term> {
        self.objects(s, p).next()
    }

    /// Subjects of triples `(?, p, o)`.
    pub fn subjects_with(&self, p: &Iri, o: &Term) -> impl Iterator<Item = Subject> + '_ {
        self.triples_matching(None, Some(p), Some(o))
            .map(|t| t.subject)
    }

    /// Distinct subjects of the whole graph (in index order).
    pub fn subjects(&self) -> Vec<Subject> {
        let mut out = Vec::new();
        let mut last: Option<TermId> = None;
        for &(s, _, _) in &self.spo {
            if last != Some(s) {
                last = Some(s);
                match self.interner.resolve(s) {
                    Term::Iri(i) => out.push(Subject::Iri(i.clone())),
                    Term::Blank(b) => out.push(Subject::Blank(b.clone())),
                    Term::Literal(_) => unreachable!(),
                }
            }
        }
        out
    }

    /// Distinct predicates of the whole graph.
    pub fn predicates(&self) -> Vec<Iri> {
        let mut out: Vec<Iri> = Vec::new();
        let mut last: Option<TermId> = None;
        for &(p, _, _) in &self.pos {
            if last != Some(p) {
                last = Some(p);
                if let Term::Iri(i) = self.interner.resolve(p) {
                    out.push(i.clone());
                }
            }
        }
        out
    }
}

impl Extend<Triple> for Graph {
    fn extend<T: IntoIterator<Item = Triple>>(&mut self, iter: T) {
        for t in iter {
            self.insert(t);
        }
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<T: IntoIterator<Item = Triple>>(iter: T) -> Self {
        let mut g = Graph::new();
        g.extend(iter);
        g
    }
}

impl PartialEq for Graph {
    /// Two graphs are equal when they contain the same triple set
    /// (ground comparison; blank nodes compare by label).
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|t| other.contains(&t))
    }
}

impl Eq for Graph {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{BlankNode, Literal};

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(iri(s), iri(p), iri(o))
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut g = Graph::new();
        assert!(g.insert(t("http://e/s", "http://e/p", "http://e/o")));
        assert!(!g.insert(t("http://e/s", "http://e/p", "http://e/o")));
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
    }

    #[test]
    fn remove_and_contains() {
        let mut g = Graph::new();
        let tr = t("http://e/s", "http://e/p", "http://e/o");
        g.insert(tr.clone());
        assert!(g.contains(&tr));
        assert!(g.remove(&tr));
        assert!(!g.contains(&tr));
        assert!(!g.remove(&tr));
        assert!(g.is_empty());
        // Removing a triple whose terms were never interned is a no-op.
        assert!(!g.remove(&t("http://e/x", "http://e/y", "http://e/z")));
    }

    #[test]
    fn from_interned_roundtrips_terms_and_triples() {
        let mut g = Graph::new();
        g.insert(t("http://e/s1", "http://e/p1", "http://e/o1"));
        g.insert(t("http://e/s1", "http://e/p2", "http://e/o2"));
        g.insert(Triple::new(
            BlankNode::new("b0").unwrap(),
            iri("http://e/p1"),
            Literal::lang("hi", "en").unwrap(),
        ));
        let terms = g.interned_terms().to_vec();
        let ids: Vec<(u32, u32, u32)> = g
            .ids_matching(None, None, None)
            .map(|(s, p, o)| (s.to_u32(), p.to_u32(), o.to_u32()))
            .collect();
        let rebuilt = Graph::from_interned(terms, ids).unwrap();
        assert_eq!(g, rebuilt);
        assert_eq!(g.term_count(), rebuilt.term_count());
        for id in 0..g.term_count() as u32 {
            let id = TermId::from_u32(id);
            assert_eq!(
                g.predicate_cardinality(id),
                rebuilt.predicate_cardinality(id)
            );
        }
    }

    #[test]
    fn from_interned_rejects_corrupt_input() {
        let s: Term = iri("http://e/s").into();
        let p: Term = iri("http://e/p").into();
        let o: Term = Literal::simple("x").into();
        let table = vec![s.clone(), p.clone(), o.clone()];
        // Well-formed baseline.
        assert!(Graph::from_interned(table.clone(), [(0, 1, 2)]).is_ok());
        // Id beyond the table.
        assert!(Graph::from_interned(table.clone(), [(0, 1, 3)]).is_err());
        // Literal in subject position.
        assert!(Graph::from_interned(table.clone(), [(2, 1, 0)]).is_err());
        // Literal in predicate position.
        assert!(Graph::from_interned(table.clone(), [(0, 2, 1)]).is_err());
        // Duplicate entry in the term table.
        assert!(Graph::from_interned(vec![s.clone(), s.clone()], []).is_err());
        // Errors are the InvalidInterned variant, with a message.
        let err = Graph::from_interned(table, [(9, 9, 9)]).unwrap_err();
        assert!(matches!(err, RdfError::InvalidInterned(_)));
        assert!(err.to_string().contains("invalid interned"));
    }

    #[test]
    fn all_eight_pattern_shapes() {
        let mut g = Graph::new();
        g.insert(t("http://e/s1", "http://e/p1", "http://e/o1"));
        g.insert(t("http://e/s1", "http://e/p1", "http://e/o2"));
        g.insert(t("http://e/s1", "http://e/p2", "http://e/o1"));
        g.insert(t("http://e/s2", "http://e/p1", "http://e/o1"));

        let s1: Subject = iri("http://e/s1").into();
        let p1 = iri("http://e/p1");
        let o1: Term = iri("http://e/o1").into();

        let count = |s: Option<&Subject>, p: Option<&Iri>, o: Option<&Term>| {
            g.triples_matching(s, p, o).count()
        };
        assert_eq!(count(None, None, None), 4);
        assert_eq!(count(Some(&s1), None, None), 3);
        assert_eq!(count(None, Some(&p1), None), 3);
        assert_eq!(count(None, None, Some(&o1)), 3);
        assert_eq!(count(Some(&s1), Some(&p1), None), 2);
        assert_eq!(count(Some(&s1), None, Some(&o1)), 2);
        assert_eq!(count(None, Some(&p1), Some(&o1)), 2);
        assert_eq!(count(Some(&s1), Some(&p1), Some(&o1)), 1);
    }

    #[test]
    fn unknown_terms_match_nothing() {
        let mut g = Graph::new();
        g.insert(t("http://e/s", "http://e/p", "http://e/o"));
        let unknown: Subject = iri("http://e/nope").into();
        assert_eq!(g.triples_matching(Some(&unknown), None, None).count(), 0);
    }

    #[test]
    fn blank_nodes_and_literals() {
        let mut g = Graph::new();
        let b = BlankNode::new("b0").unwrap();
        g.insert(Triple::new(
            b.clone(),
            iri("http://e/p"),
            Literal::simple("v"),
        ));
        let found: Vec<_> = g
            .triples_matching(Some(&b.clone().into()), None, None)
            .collect();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].object.as_literal().unwrap().lexical(), "v");
    }

    #[test]
    fn navigation_helpers() {
        let mut g = Graph::new();
        g.insert(t("http://e/s", "http://e/p", "http://e/o1"));
        g.insert(t("http://e/s", "http://e/p", "http://e/o2"));
        let s: Subject = iri("http://e/s").into();
        let p = iri("http://e/p");
        assert_eq!(g.objects(&s, &p).count(), 2);
        assert!(g.object(&s, &p).is_some());
        let o: Term = iri("http://e/o1").into();
        assert_eq!(g.subjects_with(&p, &o).count(), 1);
        assert_eq!(g.subjects().len(), 1);
        assert_eq!(g.predicates().len(), 1);
    }

    #[test]
    fn graph_equality_ignores_insertion_order() {
        let mut a = Graph::new();
        let mut b = Graph::new();
        a.insert(t("http://e/1", "http://e/p", "http://e/2"));
        a.insert(t("http://e/3", "http://e/p", "http://e/4"));
        b.insert(t("http://e/3", "http://e/p", "http://e/4"));
        b.insert(t("http://e/1", "http://e/p", "http://e/2"));
        assert_eq!(a, b);
        b.insert(t("http://e/5", "http://e/p", "http://e/6"));
        assert_ne!(a, b);
    }

    #[test]
    fn set_operations() {
        let mut a = Graph::new();
        a.insert(t("http://e/1", "http://e/p", "http://e/2"));
        a.insert(t("http://e/3", "http://e/p", "http://e/4"));
        let mut b = Graph::new();
        b.insert(t("http://e/3", "http://e/p", "http://e/4"));
        b.insert(t("http://e/5", "http://e/p", "http://e/6"));

        let diff = a.difference(&b);
        assert_eq!(diff.len(), 1);
        assert!(diff.contains(&t("http://e/1", "http://e/p", "http://e/2")));
        let inter = a.intersection(&b);
        assert_eq!(inter.len(), 1);
        assert!(inter.contains(&t("http://e/3", "http://e/p", "http://e/4")));
        // a = (a − b) ∪ (a ∩ b).
        let mut rebuilt = diff;
        rebuilt.extend_from_graph(&inter);
        assert_eq!(rebuilt, a);
    }

    #[test]
    fn id_level_api_mirrors_term_level() {
        let mut g = Graph::new();
        g.insert(t("http://e/s1", "http://e/p1", "http://e/o1"));
        g.insert(t("http://e/s1", "http://e/p2", "http://e/o2"));
        g.insert(t("http://e/s2", "http://e/p1", "http://e/o1"));

        let p1 = g.term_to_id(&Term::Iri(iri("http://e/p1"))).unwrap();
        let p2 = g.term_to_id(&Term::Iri(iri("http://e/p2"))).unwrap();
        assert_eq!(g.predicate_cardinality(p1), 2);
        assert_eq!(g.predicate_cardinality(p2), 1);
        assert_eq!(g.ids_matching(None, Some(p1), None).count(), 2);
        assert_eq!(g.ids_matching(None, None, None).count(), 3);

        // Ids decode back to the terms they were interned from.
        for (s, p, o) in g.ids_matching(None, Some(p2), None) {
            assert_eq!(g.id_to_term(s).as_iri().unwrap().as_str(), "http://e/s1");
            assert_eq!(g.id_to_term(p).as_iri().unwrap().as_str(), "http://e/p2");
            assert_eq!(g.id_to_term(o).as_iri().unwrap().as_str(), "http://e/o2");
        }

        // Removal keeps the statistics exact.
        g.remove(&t("http://e/s1", "http://e/p1", "http://e/o1"));
        assert_eq!(g.predicate_cardinality(p1), 1);
        g.remove(&t("http://e/s2", "http://e/p1", "http://e/o1"));
        assert_eq!(g.predicate_cardinality(p1), 0);
        // Unknown term: no id.
        assert!(g.term_to_id(&Term::Iri(iri("http://e/none"))).is_none());
    }

    #[test]
    fn extend_and_from_iterator() {
        let triples = vec![
            t("http://e/a", "http://e/p", "http://e/b"),
            t("http://e/c", "http://e/p", "http://e/d"),
        ];
        let g: Graph = triples.clone().into_iter().collect();
        assert_eq!(g.len(), 2);
        let mut g2 = Graph::new();
        g2.extend_from_graph(&g);
        assert_eq!(g, g2);
    }
}
