//! Pretty Turtle serializer: prefix header, subject grouping,
//! `;`/`,` abbreviation, numeric and boolean shortcuts.

use crate::graph::Graph;
use crate::namespace::PrefixMap;
use crate::term::{escape_literal, Iri, Literal, Subject, Term};
use crate::xsd;

const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Render one IRI, compacting through the prefix map when possible.
pub(crate) fn render_iri(iri: &Iri, prefixes: &PrefixMap) -> String {
    match prefixes.compact(iri) {
        Some(curie) => curie,
        None => format!("<{}>", iri.as_str()),
    }
}

/// Whether a lexical form matches Turtle's INTEGER production
/// (`[+-]? [0-9]+`), so the bare form re-lexes to the identical
/// `xsd:integer` literal.
fn is_bare_integer(lexical: &str) -> bool {
    let digits = lexical.strip_prefix(['+', '-']).unwrap_or(lexical);
    !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit())
}

/// Whether a lexical form matches Turtle's DECIMAL production
/// (`[+-]? [0-9]* '.' [0-9]+`), so the bare form re-lexes to the
/// identical `xsd:decimal` literal. Anything looser breaks round-trips:
/// `"1."` re-lexes as an integer followed by a statement-ending dot, and
/// exponent forms like `"2.5e3"` re-lex as `xsd:double`.
fn is_bare_decimal(lexical: &str) -> bool {
    let body = lexical.strip_prefix(['+', '-']).unwrap_or(lexical);
    match body.split_once('.') {
        Some((int, frac)) => {
            int.bytes().all(|b| b.is_ascii_digit())
                && !frac.is_empty()
                && frac.bytes().all(|b| b.is_ascii_digit())
        }
        None => false,
    }
}

/// Render a literal, using bare numeric/boolean forms when the lexical
/// form is canonical, and compacting datatype IRIs.
pub(crate) fn render_literal(lit: &Literal, prefixes: &PrefixMap) -> String {
    let dt = lit.datatype();
    match dt.as_str() {
        xsd::INTEGER if is_bare_integer(lit.lexical()) => return lit.lexical().to_owned(),
        xsd::BOOLEAN if matches!(lit.lexical(), "true" | "false") => {
            return lit.lexical().to_owned()
        }
        xsd::DECIMAL if is_bare_decimal(lit.lexical()) => return lit.lexical().to_owned(),
        _ => {}
    }
    let mut out = String::with_capacity(lit.lexical().len() + 8);
    out.push('"');
    escape_literal(lit.lexical(), &mut out);
    out.push('"');
    if let Some(tag) = lit.language() {
        out.push('@');
        out.push_str(tag);
    } else if !lit.is_simple() {
        out.push_str("^^");
        out.push_str(&render_iri(&dt, prefixes));
    }
    out
}

pub(crate) fn render_term(term: &Term, prefixes: &PrefixMap) -> String {
    match term {
        Term::Iri(i) => render_iri(i, prefixes),
        Term::Blank(b) => format!("_:{}", b.label()),
        Term::Literal(l) => render_literal(l, prefixes),
    }
}

pub(crate) fn render_subject(subject: &Subject, prefixes: &PrefixMap) -> String {
    match subject {
        Subject::Iri(i) => render_iri(i, prefixes),
        Subject::Blank(b) => format!("_:{}", b.label()),
    }
}

fn render_predicate(p: &Iri, prefixes: &PrefixMap) -> String {
    if p.as_str() == RDF_TYPE {
        "a".to_owned()
    } else {
        render_iri(p, prefixes)
    }
}

/// Serialize the body (no prefix header) with the given left indent.
pub(crate) fn write_graph_body(
    graph: &Graph,
    prefixes: &PrefixMap,
    indent: &str,
    out: &mut String,
) {
    for subject in graph.subjects() {
        let mut preds: Vec<Iri> = graph
            .triples_matching(Some(&subject), None, None)
            .map(|t| t.predicate)
            .collect();
        preds.dedup();
        // rdf:type first — conventional in hand-written Turtle.
        preds.sort_by_key(|p| (p.as_str() != RDF_TYPE, p.clone()));
        preds.dedup();
        out.push_str(indent);
        out.push_str(&render_subject(&subject, prefixes));
        for (pi, p) in preds.iter().enumerate() {
            if pi == 0 {
                out.push(' ');
            } else {
                out.push_str(" ;\n");
                out.push_str(indent);
                out.push_str("    ");
            }
            out.push_str(&render_predicate(p, prefixes));
            let objects: Vec<Term> = graph.objects(&subject, p).collect();
            for (oi, o) in objects.iter().enumerate() {
                if oi > 0 {
                    out.push(',');
                }
                out.push(' ');
                out.push_str(&render_term(o, prefixes));
            }
        }
        out.push_str(" .\n");
    }
}

/// Serialize a graph as a Turtle document.
pub fn write_turtle(graph: &Graph, prefixes: &PrefixMap) -> String {
    let mut out = String::new();
    for (prefix, ns) in prefixes.iter() {
        out.push_str(&format!("@prefix {prefix}: <{ns}> .\n"));
    }
    if !prefixes.is_empty() {
        out.push('\n');
    }
    write_graph_body(graph, prefixes, "", &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{BlankNode, Literal};
    use crate::triple::Triple;

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    #[test]
    fn writes_prefix_header_and_groups() {
        let mut g = Graph::new();
        let mut pm = PrefixMap::new();
        pm.insert("e", "http://e/");
        g.insert(Triple::new(
            iri("http://e/s"),
            iri("http://e/p"),
            iri("http://e/o1"),
        ));
        g.insert(Triple::new(
            iri("http://e/s"),
            iri("http://e/p"),
            iri("http://e/o2"),
        ));
        g.insert(Triple::new(
            iri("http://e/s"),
            iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
            iri("http://e/T"),
        ));
        let ttl = write_turtle(&g, &pm);
        assert!(ttl.starts_with("@prefix e: <http://e/> .\n"));
        assert!(ttl.contains("e:s a e:T ;"));
        assert!(ttl.contains("e:p e:o1, e:o2 ."));
    }

    #[test]
    fn numeric_shortcuts() {
        let mut pm = PrefixMap::new();
        pm.insert("xsd", "http://www.w3.org/2001/XMLSchema#");
        assert_eq!(render_literal(&Literal::integer(42), &pm), "42");
        assert_eq!(render_literal(&Literal::boolean(false), &pm), "false");
        assert_eq!(render_literal(&Literal::decimal(2.5), &pm), "2.5");
        let dt = Literal::typed("2013-01-15T10:30:00Z", iri(xsd::DATE_TIME));
        assert_eq!(
            render_literal(&dt, &pm),
            "\"2013-01-15T10:30:00Z\"^^xsd:dateTime"
        );
    }

    #[test]
    fn non_canonical_numbers_stay_quoted() {
        let pm = PrefixMap::common();
        let weird = Literal::typed("0x2A", iri(xsd::INTEGER));
        assert!(render_literal(&weird, &pm).starts_with('"'));
    }

    #[test]
    fn hazardous_decimal_lexicals_stay_quoted_and_roundtrip() {
        let pm = PrefixMap::common();
        // "1." would re-lex as INTEGER '1' + statement-ending '.', and
        // exponent forms re-lex as xsd:double — both must stay quoted.
        for lexical in ["1.", "2.5e3", "1e5", "NaN", "inf", ".", "+.", "1.2.3"] {
            let lit = Literal::typed(lexical, iri(xsd::DECIMAL));
            assert!(
                render_literal(&lit, &pm).starts_with('"'),
                "{lexical:?} must stay quoted"
            );
            let mut g = Graph::new();
            g.insert(Triple::new(iri("http://e/s"), iri("http://e/p"), lit));
            let ttl = write_turtle(&g, &pm);
            let (g2, _) = crate::turtle::parse_turtle(&ttl)
                .unwrap_or_else(|e| panic!("{lexical:?}: {e}\n{ttl}"));
            assert_eq!(g, g2, "roundtrip mismatch for {lexical:?}");
        }
        // Grammar-conforming decimals (including a bare fraction) go bare.
        for lexical in ["2.5", "-0.25", "+10.0", ".5"] {
            let lit = Literal::typed(lexical, iri(xsd::DECIMAL));
            assert_eq!(render_literal(&lit, &pm), lexical);
            let mut g = Graph::new();
            g.insert(Triple::new(iri("http://e/s"), iri("http://e/p"), lit));
            let ttl = write_turtle(&g, &pm);
            let (g2, _) = crate::turtle::parse_turtle(&ttl).unwrap();
            assert_eq!(g, g2, "roundtrip mismatch for bare {lexical:?}");
        }
        // Oversized integers exceed i64 but still match the INTEGER
        // production, so the bare form is safe (and shorter).
        let big = Literal::typed("123456789012345678901234567890", iri(xsd::INTEGER));
        assert_eq!(render_literal(&big, &pm), "123456789012345678901234567890");
    }

    #[test]
    fn blank_nodes_render_with_labels() {
        let pm = PrefixMap::new();
        let b = BlankNode::new("b7").unwrap();
        assert_eq!(render_subject(&b.clone().into(), &pm), "_:b7");
        assert_eq!(render_term(&b.into(), &pm), "_:b7");
    }

    #[test]
    fn unsafe_locals_fall_back_to_angle_brackets_and_reparse() {
        // Locals a prefix map cannot compact (slashes, trailing dots,
        // percent signs) must serialize as full IRIs and round-trip.
        let mut g = Graph::new();
        let mut pm = PrefixMap::new();
        pm.insert("e", "http://e/ns#");
        for suffix in ["a/b", "x.", "p%20q", ""] {
            if let Ok(subject) = Iri::new(format!("http://e/ns#{suffix}")) {
                g.insert(Triple::new(
                    subject,
                    iri("http://e/p"),
                    Literal::simple(suffix),
                ));
            }
        }
        assert!(!g.is_empty());
        let ttl = write_turtle(&g, &pm);
        let (g2, _) = crate::turtle::parse_turtle(&ttl).unwrap();
        assert_eq!(g, g2);
        // The slash local must appear as an IRIREF, not a CURIE.
        assert!(ttl.contains("<http://e/ns#a/b>"));
    }

    #[test]
    fn empty_graph_emits_header_only() {
        let pm = PrefixMap::common();
        let ttl = write_turtle(&Graph::new(), &pm);
        assert!(ttl.trim_end().ends_with('.'));
        assert!(!ttl.contains(" a "));
        let (g, _) = crate::turtle::parse_turtle(&ttl).unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn lang_literal_rendering() {
        let pm = PrefixMap::new();
        let l = Literal::lang("ciao", "it").unwrap();
        assert_eq!(render_literal(&l, &pm), "\"ciao\"@it");
    }
}
