//! Tokenizer shared by the Turtle and TriG parsers.

use crate::error::ParseError;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub column: usize,
}

/// Token kinds of the Turtle/TriG grammar subset we support.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TokenKind {
    /// `<...>` with escapes resolved.
    IriRef(String),
    /// `prefix:local` (either part may be empty).
    PrefixedName(String, String),
    /// `_:label`.
    BlankNodeLabel(String),
    /// A quoted string with escapes resolved.
    StringLiteral(String),
    /// `@lang-tag`.
    LangTag(String),
    /// An integer numeric literal (lexical form).
    Integer(String),
    /// A decimal numeric literal (lexical form).
    Decimal(String),
    /// A double numeric literal (lexical form).
    Double(String),
    /// `true` / `false`.
    Boolean(bool),
    /// The keyword `a`.
    A,
    /// `@prefix` or `PREFIX`.
    PrefixDirective {
        /// Whether the SPARQL spelling (no trailing dot) was used.
        sparql_style: bool,
    },
    /// `@base` or `BASE`.
    BaseDirective {
        /// Whether the SPARQL spelling (no trailing dot) was used.
        sparql_style: bool,
    },
    /// The TriG `GRAPH` keyword.
    Graph,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `[`
    OpenBracket,
    /// `]`
    CloseBracket,
    /// `(`
    OpenParen,
    /// `)`
    CloseParen,
    /// `{`
    OpenBrace,
    /// `}`
    CloseBrace,
    /// `^^`
    DoubleCaret,
    /// End of input.
    Eof,
}

pub(crate) struct Lexer<'a> {
    input: &'a [u8],
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(input: &'a str) -> Self {
        Lexer {
            input: input.as_bytes(),
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    /// Tokenize the whole input (ending with an `Eof` token).
    pub fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let _ = self.input;
        let mut out = Vec::new();
        loop {
            self.skip_ws_and_comments();
            let (line, column) = (self.line, self.column);
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    line,
                    column,
                });
                return Ok(out);
            };
            let kind = match c {
                '<' => self.lex_iriref()?,
                '"' | '\'' => self.lex_string(c)?,
                '@' => self.lex_at_word()?,
                '_' => self.lex_blank_node()?,
                '.' => {
                    // A dot may start a decimal like `.5`.
                    if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                        self.lex_number()?
                    } else {
                        self.bump();
                        TokenKind::Dot
                    }
                }
                ';' => {
                    self.bump();
                    TokenKind::Semicolon
                }
                ',' => {
                    self.bump();
                    TokenKind::Comma
                }
                '[' => {
                    self.bump();
                    TokenKind::OpenBracket
                }
                ']' => {
                    self.bump();
                    TokenKind::CloseBracket
                }
                '(' => {
                    self.bump();
                    TokenKind::OpenParen
                }
                ')' => {
                    self.bump();
                    TokenKind::CloseParen
                }
                '{' => {
                    self.bump();
                    TokenKind::OpenBrace
                }
                '}' => {
                    self.bump();
                    TokenKind::CloseBrace
                }
                '^' => {
                    self.bump();
                    if self.peek() == Some('^') {
                        self.bump();
                        TokenKind::DoubleCaret
                    } else {
                        return Err(self.err_at(line, column, "expected `^^`"));
                    }
                }
                c if c.is_ascii_digit() || c == '+' || c == '-' => self.lex_number()?,
                c if is_pname_start(c) || c == ':' => self.lex_pname_or_keyword()?,
                other => {
                    return Err(self.err_at(
                        line,
                        column,
                        format!("unexpected character {other:?}"),
                    ))
                }
            };
            out.push(Token { kind, line, column });
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.column, msg)
    }

    fn err_at(&self, line: usize, column: usize, msg: impl Into<String>) -> ParseError {
        ParseError::new(line, column, msg)
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn lex_iriref(&mut self) -> Result<TokenKind, ParseError> {
        self.bump(); // '<'
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated IRI reference")),
                Some('>') => return Ok(TokenKind::IriRef(out)),
                Some('\\') => out.push(self.lex_uchar()?),
                Some(c) if c.is_whitespace() || c == '<' => {
                    return Err(self.err(format!("illegal character {c:?} in IRI reference")))
                }
                Some(c) => out.push(c),
            }
        }
    }

    /// Resolve `\uXXXX` / `\UXXXXXXXX` after a backslash has been consumed.
    fn lex_uchar(&mut self) -> Result<char, ParseError> {
        let n = match self.bump() {
            Some('u') => 4,
            Some('U') => 8,
            other => return Err(self.err(format!("invalid escape \\{other:?} in IRI"))),
        };
        self.lex_hex_escape(n)
    }

    fn lex_hex_escape(&mut self, n: usize) -> Result<char, ParseError> {
        let mut v: u32 = 0;
        for _ in 0..n {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated unicode escape"))?;
            let d = c
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in escape"))?;
            v = v * 16 + d;
        }
        char::from_u32(v).ok_or_else(|| self.err("escape is not a valid code point"))
    }

    fn lex_string(&mut self, quote: char) -> Result<TokenKind, ParseError> {
        self.bump(); // opening quote
        let long = self.peek() == Some(quote) && self.peek_at(1) == Some(quote);
        if long {
            self.bump();
            self.bump();
        } else if self.peek() == Some(quote) {
            // Empty short string: `""`.
            self.bump();
            return Ok(TokenKind::StringLiteral(String::new()));
        }
        let mut out = String::new();
        loop {
            let Some(c) = self.bump() else {
                return Err(self.err("unterminated string literal"));
            };
            match c {
                '\\' => out.push(self.lex_string_escape()?),
                c if c == quote => {
                    if !long {
                        return Ok(TokenKind::StringLiteral(out));
                    }
                    if self.peek() == Some(quote) && self.peek_at(1) == Some(quote) {
                        self.bump();
                        self.bump();
                        return Ok(TokenKind::StringLiteral(out));
                    }
                    out.push(c);
                }
                '\n' | '\r' if !long => return Err(self.err("newline in short string literal")),
                c => out.push(c),
            }
        }
    }

    fn lex_string_escape(&mut self) -> Result<char, ParseError> {
        match self.bump() {
            Some('t') => Ok('\t'),
            Some('b') => Ok('\u{08}'),
            Some('n') => Ok('\n'),
            Some('r') => Ok('\r'),
            Some('f') => Ok('\u{0C}'),
            Some('"') => Ok('"'),
            Some('\'') => Ok('\''),
            Some('\\') => Ok('\\'),
            Some('u') => self.lex_hex_escape(4),
            Some('U') => self.lex_hex_escape(8),
            other => Err(self.err(format!("invalid string escape \\{other:?}"))),
        }
    }

    fn lex_at_word(&mut self) -> Result<TokenKind, ParseError> {
        self.bump(); // '@'
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '-' {
                word.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match word.as_str() {
            "prefix" => Ok(TokenKind::PrefixDirective {
                sparql_style: false,
            }),
            "base" => Ok(TokenKind::BaseDirective {
                sparql_style: false,
            }),
            _ if !word.is_empty()
                && word.split('-').enumerate().all(|(i, p)| {
                    !p.is_empty()
                        && p.chars().all(|c| {
                            if i == 0 {
                                c.is_ascii_alphabetic()
                            } else {
                                c.is_ascii_alphanumeric()
                            }
                        })
                }) =>
            {
                Ok(TokenKind::LangTag(word))
            }
            _ => Err(self.err(format!("invalid @-word: @{word}"))),
        }
    }

    fn lex_blank_node(&mut self) -> Result<TokenKind, ParseError> {
        self.bump(); // '_'
        if self.bump() != Some(':') {
            return Err(self.err("expected `:` after `_` in blank node label"));
        }
        let mut label = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' {
                // A dot only belongs to the label if not the statement
                // terminator; peek one past to decide.
                if c == '.'
                    && !self
                        .peek_at(1)
                        .is_some_and(|n| n.is_ascii_alphanumeric() || n == '_' || n == '-')
                {
                    break;
                }
                label.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if label.is_empty() {
            return Err(self.err("empty blank node label"));
        }
        Ok(TokenKind::BlankNodeLabel(label))
    }

    fn lex_number(&mut self) -> Result<TokenKind, ParseError> {
        let mut s = String::new();
        if matches!(self.peek(), Some('+') | Some('-')) {
            s.push(self.bump().unwrap());
        }
        let mut saw_digit = false;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            s.push(self.bump().unwrap());
            saw_digit = true;
        }
        let mut is_decimal = false;
        if self.peek() == Some('.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            is_decimal = true;
            s.push(self.bump().unwrap());
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                s.push(self.bump().unwrap());
                saw_digit = true;
            }
        }
        if !saw_digit {
            return Err(self.err("malformed numeric literal"));
        }
        if matches!(self.peek(), Some('e') | Some('E')) {
            s.push(self.bump().unwrap());
            if matches!(self.peek(), Some('+') | Some('-')) {
                s.push(self.bump().unwrap());
            }
            let mut exp_digits = false;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                s.push(self.bump().unwrap());
                exp_digits = true;
            }
            if !exp_digits {
                return Err(self.err("malformed exponent in numeric literal"));
            }
            return Ok(TokenKind::Double(s));
        }
        if is_decimal {
            Ok(TokenKind::Decimal(s))
        } else {
            Ok(TokenKind::Integer(s))
        }
    }

    fn lex_pname_or_keyword(&mut self) -> Result<TokenKind, ParseError> {
        let mut prefix = String::new();
        while let Some(c) = self.peek() {
            if is_pname_char(c) {
                prefix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if self.peek() == Some(':') {
            self.bump();
            let local = self.lex_pn_local()?;
            return Ok(TokenKind::PrefixedName(prefix, local));
        }
        // Bare word: keyword territory.
        match prefix.as_str() {
            "a" => Ok(TokenKind::A),
            "true" => Ok(TokenKind::Boolean(true)),
            "false" => Ok(TokenKind::Boolean(false)),
            w if w.eq_ignore_ascii_case("prefix") => {
                Ok(TokenKind::PrefixDirective { sparql_style: true })
            }
            w if w.eq_ignore_ascii_case("base") => {
                Ok(TokenKind::BaseDirective { sparql_style: true })
            }
            w if w.eq_ignore_ascii_case("graph") => Ok(TokenKind::Graph),
            other => Err(self.err(format!("unexpected bare word {other:?}"))),
        }
    }

    fn lex_pn_local(&mut self) -> Result<String, ParseError> {
        let mut local = String::new();
        while let Some(c) = self.peek() {
            match c {
                c if c.is_ascii_alphanumeric() || matches!(c, '_' | '-') => {
                    local.push(c);
                    self.bump();
                }
                '.' => {
                    // Trailing dot terminates the statement instead.
                    if self.peek_at(1).is_some_and(|n| {
                        n.is_ascii_alphanumeric() || matches!(n, '_' | '-' | '%' | '\\' | ':')
                    }) {
                        local.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                '%' => {
                    self.bump();
                    let h1 = self.bump().ok_or_else(|| self.err("truncated %-escape"))?;
                    let h2 = self.bump().ok_or_else(|| self.err("truncated %-escape"))?;
                    if !(h1.is_ascii_hexdigit() && h2.is_ascii_hexdigit()) {
                        return Err(self.err("invalid %-escape in local name"));
                    }
                    local.push('%');
                    local.push(h1);
                    local.push(h2);
                }
                '\\' => {
                    self.bump();
                    let e = self.bump().ok_or_else(|| self.err("truncated \\-escape"))?;
                    if "_~.-!$&'()*+,;=/?#@%".contains(e) {
                        local.push(e);
                    } else {
                        return Err(self.err(format!("invalid local-name escape \\{e}")));
                    }
                }
                _ => break,
            }
        }
        Ok(local)
    }
}

fn is_pname_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c > '\u{7F}'
}

fn is_pname_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.') || c > '\u{7F}'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(input: &str) -> Vec<TokenKind> {
        Lexer::new(input)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let toks = lex("<http://e/s> a prov:Entity ; _:b0 .");
        assert_eq!(
            toks,
            vec![
                TokenKind::IriRef("http://e/s".into()),
                TokenKind::A,
                TokenKind::PrefixedName("prov".into(), "Entity".into()),
                TokenKind::Semicolon,
                TokenKind::BlankNodeLabel("b0".into()),
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        let toks = lex(r#""hi \"there\"\n" 'single' """long
line""" "A""#);
        assert_eq!(
            toks,
            vec![
                TokenKind::StringLiteral("hi \"there\"\n".into()),
                TokenKind::StringLiteral("single".into()),
                TokenKind::StringLiteral("long\nline".into()),
                TokenKind::StringLiteral("A".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        let toks = lex("42 -7 3.14 .5 1e3 -2.5E-2");
        assert_eq!(
            toks,
            vec![
                TokenKind::Integer("42".into()),
                TokenKind::Integer("-7".into()),
                TokenKind::Decimal("3.14".into()),
                TokenKind::Decimal(".5".into()),
                TokenKind::Double("1e3".into()),
                TokenKind::Double("-2.5E-2".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn directives_and_langtags() {
        let toks =
            lex("@prefix p: <http://e/> . @base <http://b/> . \"x\"@en-GB PREFIX BASE GRAPH");
        assert!(matches!(
            toks[0],
            TokenKind::PrefixDirective {
                sparql_style: false
            }
        ));
        assert!(matches!(
            toks[4],
            TokenKind::BaseDirective {
                sparql_style: false
            }
        ));
        assert_eq!(toks[8], TokenKind::LangTag("en-GB".into()));
        assert!(matches!(
            toks[9],
            TokenKind::PrefixDirective { sparql_style: true }
        ));
        assert!(matches!(
            toks[10],
            TokenKind::BaseDirective { sparql_style: true }
        ));
        assert_eq!(toks[11], TokenKind::Graph);
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("# a comment\n42 # trailing\n");
        assert_eq!(toks, vec![TokenKind::Integer("42".into()), TokenKind::Eof]);
    }

    #[test]
    fn pname_local_with_dots_and_escapes() {
        let toks = lex(r"ex:run.1 ex:a\%b ex:p%4Aq .");
        assert_eq!(
            toks[0],
            TokenKind::PrefixedName("ex".into(), "run.1".into())
        );
        assert_eq!(toks[1], TokenKind::PrefixedName("ex".into(), "a%b".into()));
        assert_eq!(
            toks[2],
            TokenKind::PrefixedName("ex".into(), "p%4Aq".into())
        );
        assert_eq!(toks[3], TokenKind::Dot);
    }

    #[test]
    fn blank_label_trailing_dot_is_statement_end() {
        let toks = lex("_:b1.");
        assert_eq!(
            toks,
            vec![
                TokenKind::BlankNodeLabel("b1".into()),
                TokenKind::Dot,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = Lexer::new("<http://e/s> \n  ~").tokenize().unwrap_err();
        assert_eq!((err.line, err.column), (2, 3));
        assert!(Lexer::new("\"unterminated").tokenize().is_err());
        assert!(Lexer::new("<http://e/a b>").tokenize().is_err());
        assert!(Lexer::new("1e").tokenize().is_err());
        assert!(Lexer::new("@nonsense-9-").tokenize().is_err());
    }

    #[test]
    fn empty_short_string() {
        assert_eq!(
            lex(r#""""#),
            vec![TokenKind::StringLiteral(String::new()), TokenKind::Eof]
        );
    }

    #[test]
    fn booleans() {
        assert_eq!(
            lex("true false"),
            vec![
                TokenKind::Boolean(true),
                TokenKind::Boolean(false),
                TokenKind::Eof
            ]
        );
    }
}
