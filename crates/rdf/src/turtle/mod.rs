//! Turtle (Terse RDF Triple Language) reading and writing.
//!
//! Taverna provenance traces in the corpus are stored as one Turtle file
//! per workflow run. The parser supports the Turtle constructs the corpus
//! uses plus the usual conveniences: `@prefix`/`@base` and their SPARQL
//! spellings, `a`, `;`/`,` abbreviation, blank node property lists `[...]`,
//! collections `(...)`, all literal forms, comments, and both short and
//! long quoted strings.

mod lexer;
mod parser;
mod writer;

pub use writer::write_turtle;

use crate::error::ParseError;
use crate::graph::Graph;
use crate::namespace::PrefixMap;
use crate::span::SpanTable;

/// Parse a Turtle document into a graph (plus the prefixes it declared).
pub fn parse_turtle(input: &str) -> Result<(Graph, PrefixMap), ParseError> {
    let (dataset, prefixes) = parser::Parser::new(input, false)?.parse()?;
    Ok((dataset.default_graph().clone(), prefixes))
}

/// Parse a Turtle document, also recording a source span for every triple.
/// Slower than [`parse_turtle`] (per-triple bookkeeping); intended for
/// diagnostics, not for bulk loading.
pub fn parse_turtle_spanned(input: &str) -> Result<(Graph, PrefixMap, SpanTable), ParseError> {
    let (dataset, prefixes, spans) = parser::Parser::new(input, false)?
        .record_spans()
        .parse_spanned()?;
    Ok((dataset.default_graph().clone(), prefixes, spans))
}

pub(crate) use parser::Parser;
pub(crate) use writer::{render_subject, write_graph_body};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Iri, Literal, Term};
    use crate::triple::Triple;

    #[test]
    fn roundtrip_preserves_graph() {
        let mut g = Graph::new();
        let mut pm = PrefixMap::common();
        pm.insert("e", "http://e/");
        g.insert(Triple::new(
            Iri::new("http://e/run1").unwrap(),
            pm.expand("prov:startedAtTime").unwrap(),
            Term::Literal(Literal::typed(
                "2013-01-15T10:30:00Z",
                Iri::new_unchecked(crate::xsd::DATE_TIME),
            )),
        ));
        g.insert(Triple::new(
            Iri::new("http://e/run1").unwrap(),
            Iri::new_unchecked("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
            pm.expand("prov:Activity").unwrap(),
        ));
        let ttl = write_turtle(&g, &pm);
        let (g2, _) = parse_turtle(&ttl).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn parse_realistic_trace_snippet() {
        let doc = r#"
@prefix prov: <http://www.w3.org/ns/prov#> .
@prefix wfprov: <http://purl.org/wf4ever/wfprov#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

<http://example.org/run/1>
    a prov:Activity, wfprov:WorkflowRun ;
    prov:startedAtTime "2013-01-15T10:30:00Z"^^xsd:dateTime ;
    prov:endedAtTime "2013-01-15T10:42:17Z"^^xsd:dateTime ;
    prov:wasAssociatedWith [ a prov:SoftwareAgent ] .
"#;
        let (g, pm) = parse_turtle(doc).unwrap();
        assert_eq!(g.len(), 6);
        assert_eq!(pm.get("wfprov"), Some("http://purl.org/wf4ever/wfprov#"));
    }
}
