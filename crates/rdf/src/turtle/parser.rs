//! Recursive-descent parser for Turtle, reused by TriG (`allow_graphs`).

use super::lexer::{Lexer, Token, TokenKind};
use crate::dataset::Dataset;
use crate::error::ParseError;
use crate::namespace::PrefixMap;
use crate::span::{Span, SpanTable, SpannedStatement};
use crate::term::{BlankNode, Iri, Literal, Subject, Term};
use crate::triple::Triple;
use crate::xsd;
use std::collections::HashSet;

const RDF_FIRST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#first";
const RDF_REST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest";
const RDF_NIL: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil";
const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: PrefixMap,
    base: Option<String>,
    anon_counter: u64,
    used_labels: HashSet<String>,
    allow_graphs: bool,
    /// The graph currently being filled (`None` = default graph).
    current_graph: Option<Subject>,
    /// When present, every emitted triple is recorded here with its span.
    /// `None` keeps the hot path free of per-triple clones.
    spans: Option<SpanTable>,
}

impl Parser {
    pub fn new(input: &str, allow_graphs: bool) -> Result<Self, ParseError> {
        let tokens = Lexer::new(input).tokenize()?;
        let used_labels = tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::BlankNodeLabel(l) => Some(l.clone()),
                _ => None,
            })
            .collect();
        Ok(Parser {
            tokens,
            pos: 0,
            prefixes: PrefixMap::new(),
            base: None,
            anon_counter: 0,
            used_labels,
            allow_graphs,
            current_graph: None,
            spans: None,
        })
    }

    /// Enable span recording: every emitted triple gets an entry in the
    /// [`SpanTable`] returned by [`Parser::parse_spanned`].
    pub fn record_spans(mut self) -> Self {
        self.spans = Some(SpanTable::new());
        self
    }

    pub fn parse(self) -> Result<(Dataset, PrefixMap), ParseError> {
        let (dataset, prefixes, _) = self.parse_spanned()?;
        Ok((dataset, prefixes))
    }

    /// Like [`Parser::parse`] but also returns the span side table (empty
    /// unless [`Parser::record_spans`] was called).
    pub fn parse_spanned(mut self) -> Result<(Dataset, PrefixMap, SpanTable), ParseError> {
        let mut dataset = Dataset::new();
        loop {
            match self.peek_kind() {
                TokenKind::Eof => break,
                TokenKind::PrefixDirective { sparql_style } => {
                    let sparql = *sparql_style;
                    self.parse_prefix_directive(sparql)?;
                }
                TokenKind::BaseDirective { sparql_style } => {
                    let sparql = *sparql_style;
                    self.parse_base_directive(sparql)?;
                }
                TokenKind::Graph if self.allow_graphs => {
                    self.advance();
                    let name = self.parse_graph_name()?;
                    self.parse_graph_block(&mut dataset, name)?;
                }
                TokenKind::OpenBrace if self.allow_graphs => {
                    // Anonymous `{ ... }` block contributes to the default graph.
                    self.parse_graph_block_body(&mut dataset, None)?;
                }
                _ => self.parse_triples_or_named_block(&mut dataset)?,
            }
        }
        Ok((
            dataset,
            self.prefixes,
            self.spans.take().unwrap_or_default(),
        ))
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_kind_at(&self, offset: usize) -> &TokenKind {
        let i = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError::new(t.line, t.column, msg)
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if self.peek_kind() == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.err_here(format!("expected {what}, found {:?}", self.peek_kind())))
        }
    }

    fn fresh_blank(&mut self) -> BlankNode {
        loop {
            let label = format!("anon{}", self.anon_counter);
            self.anon_counter += 1;
            if !self.used_labels.contains(&label) {
                return BlankNode::new(&label).expect("generated label is valid");
            }
        }
    }

    fn resolve_iri(&self, raw: &str) -> Result<Iri, ParseError> {
        let full = if raw.contains(':') {
            raw.to_owned()
        } else {
            match &self.base {
                Some(base) => format!("{base}{raw}"),
                None => {
                    return Err(ParseError::new(
                        self.peek().line,
                        self.peek().column,
                        format!("relative IRI {raw:?} without a base"),
                    ))
                }
            }
        };
        Iri::new(&full).map_err(|_| {
            ParseError::new(
                self.peek().line,
                self.peek().column,
                format!("invalid IRI {full:?}"),
            )
        })
    }

    fn expand_pname(&self, prefix: &str, local: &str) -> Result<Iri, ParseError> {
        let ns = self.prefixes.get(prefix).ok_or_else(|| {
            ParseError::new(
                self.peek().line,
                self.peek().column,
                format!("unbound prefix {prefix:?}"),
            )
        })?;
        Iri::new(format!("{ns}{local}")).map_err(|_| {
            ParseError::new(
                self.peek().line,
                self.peek().column,
                format!("CURIE {prefix}:{local} expands to an invalid IRI"),
            )
        })
    }

    fn parse_prefix_directive(&mut self, sparql_style: bool) -> Result<(), ParseError> {
        self.advance(); // the directive token
        let (prefix, local) = match self.advance().kind {
            TokenKind::PrefixedName(p, l) => (p, l),
            other => return Err(self.err_here(format!("expected prefix name, found {other:?}"))),
        };
        if !local.is_empty() {
            return Err(self.err_here("prefix declaration must end with a bare `:`"));
        }
        let iri = match self.advance().kind {
            TokenKind::IriRef(i) => i,
            other => return Err(self.err_here(format!("expected IRI, found {other:?}"))),
        };
        self.prefixes.insert(prefix, iri);
        if !sparql_style {
            self.expect(&TokenKind::Dot, "`.` after @prefix")?;
        }
        Ok(())
    }

    fn parse_base_directive(&mut self, sparql_style: bool) -> Result<(), ParseError> {
        self.advance();
        let iri = match self.advance().kind {
            TokenKind::IriRef(i) => i,
            other => return Err(self.err_here(format!("expected IRI, found {other:?}"))),
        };
        self.base = Some(iri);
        if !sparql_style {
            self.expect(&TokenKind::Dot, "`.` after @base")?;
        }
        Ok(())
    }

    fn parse_graph_name(&mut self) -> Result<Subject, ParseError> {
        match self.advance().kind {
            TokenKind::IriRef(i) => Ok(Subject::Iri(self.resolve_iri(&i)?)),
            TokenKind::PrefixedName(p, l) => Ok(Subject::Iri(self.expand_pname(&p, &l)?)),
            TokenKind::BlankNodeLabel(l) => {
                Ok(Subject::Blank(BlankNode::new(&l).map_err(|_| {
                    self.err_here(format!("invalid blank node label {l:?}"))
                })?))
            }
            other => Err(self.err_here(format!("expected graph name, found {other:?}"))),
        }
    }

    fn parse_graph_block(
        &mut self,
        dataset: &mut Dataset,
        name: Subject,
    ) -> Result<(), ParseError> {
        self.parse_graph_block_body(dataset, Some(name))
    }

    fn parse_graph_block_body(
        &mut self,
        dataset: &mut Dataset,
        name: Option<Subject>,
    ) -> Result<(), ParseError> {
        self.expect(&TokenKind::OpenBrace, "`{`")?;
        let saved = self.current_graph.take();
        self.current_graph = name;
        while self.peek_kind() != &TokenKind::CloseBrace {
            if self.peek_kind() == &TokenKind::Eof {
                return Err(self.err_here("unterminated graph block"));
            }
            self.parse_triples_statement(dataset)?;
            // Inside a graph block the final `.` is optional.
            if self.peek_kind() == &TokenKind::Dot {
                self.advance();
            }
        }
        self.advance(); // '}'
        self.current_graph = saved;
        Ok(())
    }

    /// In TriG mode, `<name> { ... }` opens a named graph; otherwise this
    /// is an ordinary triples statement.
    fn parse_triples_or_named_block(&mut self, dataset: &mut Dataset) -> Result<(), ParseError> {
        if self.allow_graphs
            && matches!(
                self.peek_kind(),
                TokenKind::IriRef(_) | TokenKind::PrefixedName(..) | TokenKind::BlankNodeLabel(_)
            )
            && self.peek_kind_at(1) == &TokenKind::OpenBrace
        {
            let name = self.parse_graph_name()?;
            return self.parse_graph_block(dataset, name);
        }
        self.parse_triples_statement(dataset)?;
        self.expect(&TokenKind::Dot, "`.` at end of statement")?;
        Ok(())
    }

    /// Position (line, column) of the next unconsumed token.
    fn pos_here(&self) -> (usize, usize) {
        let t = self.peek();
        (t.line, t.column)
    }

    /// Insert a triple into the current graph; `start` is the position of
    /// the first token of the clause that produced it (used only when span
    /// recording is on).
    fn emit(&mut self, dataset: &mut Dataset, triple: Triple, start: (usize, usize)) {
        if let Some(spans) = &mut self.spans {
            // The last consumed token ends the clause as far as we know.
            let last = &self.tokens[self.pos.saturating_sub(1)];
            spans.push(SpannedStatement {
                graph: self.current_graph.clone(),
                triple: triple.clone(),
                span: Span {
                    line: start.0,
                    column: start.1,
                    end_line: last.line,
                    end_column: last.column,
                },
            });
        }
        match &self.current_graph {
            None => {
                dataset.default_graph_mut().insert(triple);
            }
            Some(name) => {
                dataset.named_graph_mut(name.clone()).insert(triple);
            }
        }
    }

    fn parse_triples_statement(&mut self, dataset: &mut Dataset) -> Result<(), ParseError> {
        match self.peek_kind().clone() {
            TokenKind::OpenBracket => {
                // `[ p o ; ... ]` as subject; predicate-object list optional.
                let subject = self.parse_blank_node_property_list(dataset)?;
                if self.peek_kind() != &TokenKind::Dot {
                    self.parse_predicate_object_list(dataset, &subject)?;
                }
                Ok(())
            }
            TokenKind::OpenParen => {
                let subject = self.parse_collection(dataset)?;
                let subject = subject
                    .as_subject()
                    .ok_or_else(|| self.err_here("collection subject cannot be a literal"))?;
                self.parse_predicate_object_list(dataset, &subject)?;
                Ok(())
            }
            _ => {
                let subject = self.parse_subject()?;
                self.parse_predicate_object_list(dataset, &subject)?;
                Ok(())
            }
        }
    }

    fn parse_subject(&mut self) -> Result<Subject, ParseError> {
        match self.advance().kind {
            TokenKind::IriRef(i) => Ok(Subject::Iri(self.resolve_iri(&i)?)),
            TokenKind::PrefixedName(p, l) => Ok(Subject::Iri(self.expand_pname(&p, &l)?)),
            TokenKind::BlankNodeLabel(l) => {
                Ok(Subject::Blank(BlankNode::new(&l).map_err(|_| {
                    self.err_here(format!("invalid blank node label {l:?}"))
                })?))
            }
            other => Err(self.err_here(format!("expected subject, found {other:?}"))),
        }
    }

    fn parse_predicate(&mut self) -> Result<Iri, ParseError> {
        match self.advance().kind {
            TokenKind::A => Ok(Iri::new_unchecked(RDF_TYPE)),
            TokenKind::IriRef(i) => self.resolve_iri(&i),
            TokenKind::PrefixedName(p, l) => self.expand_pname(&p, &l),
            other => Err(self.err_here(format!("expected predicate, found {other:?}"))),
        }
    }

    fn parse_predicate_object_list(
        &mut self,
        dataset: &mut Dataset,
        subject: &Subject,
    ) -> Result<(), ParseError> {
        loop {
            // The clause starts at the predicate; a comma-continued object
            // starts its own clause at the object token.
            let mut clause_start = self.pos_here();
            let predicate = self.parse_predicate()?;
            loop {
                let object = self.parse_object(dataset)?;
                self.emit(
                    dataset,
                    Triple::new(subject.clone(), predicate.clone(), object),
                    clause_start,
                );
                if self.peek_kind() == &TokenKind::Comma {
                    self.advance();
                    clause_start = self.pos_here();
                } else {
                    break;
                }
            }
            if self.peek_kind() == &TokenKind::Semicolon {
                // Consume runs of semicolons; the list may end after them.
                while self.peek_kind() == &TokenKind::Semicolon {
                    self.advance();
                }
                if matches!(
                    self.peek_kind(),
                    TokenKind::Dot
                        | TokenKind::CloseBracket
                        | TokenKind::CloseBrace
                        | TokenKind::Eof
                ) {
                    return Ok(());
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_object(&mut self, dataset: &mut Dataset) -> Result<Term, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::OpenBracket => Ok(self.parse_blank_node_property_list(dataset)?.into()),
            TokenKind::OpenParen => self.parse_collection(dataset),
            TokenKind::IriRef(i) => {
                self.advance();
                Ok(Term::Iri(self.resolve_iri(&i)?))
            }
            TokenKind::PrefixedName(p, l) => {
                self.advance();
                Ok(Term::Iri(self.expand_pname(&p, &l)?))
            }
            TokenKind::BlankNodeLabel(l) => {
                self.advance();
                Ok(Term::Blank(BlankNode::new(&l).map_err(|_| {
                    self.err_here(format!("invalid blank node label {l:?}"))
                })?))
            }
            TokenKind::StringLiteral(s) => {
                self.advance();
                match self.peek_kind().clone() {
                    TokenKind::LangTag(tag) => {
                        self.advance();
                        Ok(Term::Literal(Literal::lang(&s, &tag).map_err(|_| {
                            self.err_here(format!("invalid language tag {tag:?}"))
                        })?))
                    }
                    TokenKind::DoubleCaret => {
                        self.advance();
                        let dt = match self.advance().kind {
                            TokenKind::IriRef(i) => self.resolve_iri(&i)?,
                            TokenKind::PrefixedName(p, l) => self.expand_pname(&p, &l)?,
                            other => {
                                return Err(self
                                    .err_here(format!("expected datatype IRI, found {other:?}")))
                            }
                        };
                        Ok(Term::Literal(Literal::typed(&s, dt)))
                    }
                    _ => Ok(Term::Literal(Literal::simple(&s))),
                }
            }
            TokenKind::Integer(s) => {
                self.advance();
                Ok(Term::Literal(Literal::typed(
                    &s,
                    Iri::new_unchecked(xsd::INTEGER),
                )))
            }
            TokenKind::Decimal(s) => {
                self.advance();
                Ok(Term::Literal(Literal::typed(
                    &s,
                    Iri::new_unchecked(xsd::DECIMAL),
                )))
            }
            TokenKind::Double(s) => {
                self.advance();
                Ok(Term::Literal(Literal::typed(
                    &s,
                    Iri::new_unchecked(xsd::DOUBLE),
                )))
            }
            TokenKind::Boolean(b) => {
                self.advance();
                Ok(Term::Literal(Literal::boolean(b)))
            }
            other => Err(self.err_here(format!("expected object, found {other:?}"))),
        }
    }

    fn parse_blank_node_property_list(
        &mut self,
        dataset: &mut Dataset,
    ) -> Result<Subject, ParseError> {
        self.expect(&TokenKind::OpenBracket, "`[`")?;
        let node = Subject::Blank(self.fresh_blank());
        if self.peek_kind() == &TokenKind::CloseBracket {
            self.advance();
            return Ok(node); // `[]` — a bare anonymous node
        }
        self.parse_predicate_object_list(dataset, &node)?;
        self.expect(&TokenKind::CloseBracket, "`]`")?;
        Ok(node)
    }

    fn parse_collection(&mut self, dataset: &mut Dataset) -> Result<Term, ParseError> {
        let start = self.pos_here();
        self.expect(&TokenKind::OpenParen, "`(`")?;
        let first_pred = Iri::new_unchecked(RDF_FIRST);
        let rest_pred = Iri::new_unchecked(RDF_REST);
        let nil = Iri::new_unchecked(RDF_NIL);
        let mut items = Vec::new();
        while self.peek_kind() != &TokenKind::CloseParen {
            if self.peek_kind() == &TokenKind::Eof {
                return Err(self.err_here("unterminated collection"));
            }
            items.push(self.parse_object(dataset)?);
        }
        self.advance(); // ')'
        if items.is_empty() {
            return Ok(Term::Iri(nil));
        }
        let nodes: Vec<Subject> = items
            .iter()
            .map(|_| Subject::Blank(self.fresh_blank()))
            .collect();
        for (i, item) in items.into_iter().enumerate() {
            self.emit(
                dataset,
                Triple::new(nodes[i].clone(), first_pred.clone(), item),
                start,
            );
            let rest: Term = if i + 1 < nodes.len() {
                nodes[i + 1].clone().into()
            } else {
                nil.clone().into()
            };
            self.emit(
                dataset,
                Triple::new(nodes[i].clone(), rest_pred.clone(), rest),
                start,
            );
        }
        Ok(nodes[0].clone().into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn parse(input: &str) -> (Graph, PrefixMap) {
        let (ds, prefixes) = Parser::new(input, false).unwrap().parse().unwrap();
        (ds.default_graph().clone(), prefixes)
    }

    #[test]
    fn simple_statement() {
        let (g, _) = parse("<http://e/s> <http://e/p> <http://e/o> .");
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn prefixes_and_a() {
        let (g, pm) = parse(
            "@prefix prov: <http://www.w3.org/ns/prov#> .\n\
             <http://e/r> a prov:Activity .",
        );
        assert_eq!(pm.get("prov"), Some("http://www.w3.org/ns/prov#"));
        let t = g.iter().next().unwrap();
        assert_eq!(t.predicate.as_str(), RDF_TYPE);
        assert_eq!(
            t.object.as_iri().unwrap().as_str(),
            "http://www.w3.org/ns/prov#Activity"
        );
    }

    #[test]
    fn sparql_style_directives() {
        let (g, pm) = parse("PREFIX e: <http://e/>\nBASE <http://base/>\ne:s e:p <rel> .");
        assert_eq!(pm.get("e"), Some("http://e/"));
        let t = g.iter().next().unwrap();
        assert_eq!(t.object.as_iri().unwrap().as_str(), "http://base/rel");
    }

    #[test]
    fn semicolons_and_commas() {
        let (g, _) = parse(
            "<http://e/s> <http://e/p1> <http://e/a>, <http://e/b> ;\n\
                           <http://e/p2> \"v\" ;\n.",
        );
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn literals_all_forms() {
        let (g, _) = parse(
            "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n\
             <http://e/s> <http://e/p> \"plain\", \"fr\"@fr,\n\
               \"2013-01-15T10:30:00Z\"^^xsd:dateTime, 42, 3.14, 1e3, true .",
        );
        assert_eq!(g.len(), 7);
        let objects: Vec<Literal> = g
            .iter()
            .filter_map(|t| t.object.as_literal().cloned())
            .collect();
        assert_eq!(objects.len(), 7);
        assert!(objects.iter().any(|l| l.language() == Some("fr")));
        assert!(objects.iter().any(|l| l.as_date_time().is_some()));
        assert!(objects.iter().any(|l| l.as_integer() == Some(42)));
        assert!(objects.iter().any(|l| l.as_boolean() == Some(true)));
    }

    #[test]
    fn blank_node_property_lists() {
        let (g, _) =
            parse("<http://e/s> <http://e/p> [ <http://e/q> \"inner\" ; <http://e/r> [] ] .");
        // s-p-anon0, anon0-q-inner, anon0-r-anon1
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn bnpl_as_subject() {
        let (g, _) = parse("[ <http://e/p> <http://e/o> ] <http://e/q> \"x\" .");
        assert_eq!(g.len(), 2);
        let (g2, _) = parse("[ <http://e/p> <http://e/o> ] .");
        assert_eq!(g2.len(), 1);
    }

    #[test]
    fn collections_desugar() {
        let (g, _) = parse("<http://e/s> <http://e/p> (<http://e/a> \"b\" 3) .");
        // 1 link triple + 3 first + 3 rest
        assert_eq!(g.len(), 7);
        let nil: Term = Iri::new_unchecked(RDF_NIL).into();
        assert_eq!(g.triples_matching(None, None, Some(&nil)).count(), 1);
        let (g2, _) = parse("<http://e/s> <http://e/p> () .");
        assert_eq!(g2.len(), 1);
        assert_eq!(
            g2.iter().next().unwrap().object.as_iri().unwrap().as_str(),
            RDF_NIL
        );
    }

    #[test]
    fn anon_labels_avoid_document_labels() {
        let (g, _) = parse("_:anon0 <http://e/p> [ <http://e/q> \"v\" ] .");
        let labels: HashSet<String> = g
            .iter()
            .flat_map(|t| {
                let mut v = Vec::new();
                if let Subject::Blank(b) = &t.subject {
                    v.push(b.label().to_owned());
                }
                if let Term::Blank(b) = &t.object {
                    v.push(b.label().to_owned());
                }
                v
            })
            .collect();
        // The generated node must not collide with the document's _:anon0.
        assert!(labels.contains("anon0"));
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn unbound_prefix_is_an_error() {
        let err = Parser::new("x:y <http://e/p> <http://e/o> .", false)
            .unwrap()
            .parse()
            .unwrap_err();
        assert!(err.message.contains("unbound prefix"));
    }

    #[test]
    fn missing_dot_is_an_error() {
        assert!(Parser::new("<http://e/s> <http://e/p> <http://e/o>", false)
            .unwrap()
            .parse()
            .is_err());
    }

    #[test]
    fn relative_iri_without_base_is_an_error() {
        assert!(Parser::new("<s> <http://e/p> <http://e/o> .", false)
            .unwrap()
            .parse()
            .is_err());
    }

    #[test]
    fn trig_named_graphs() {
        let (ds, _) = Parser::new(
            "@prefix e: <http://e/> .\n\
             e:s e:p e:o .\n\
             e:g1 { e:a e:p e:b . e:c e:p e:d }\n\
             GRAPH e:g2 { e:x e:p e:y . }",
            true,
        )
        .unwrap()
        .parse()
        .unwrap();
        assert_eq!(ds.default_graph().len(), 1);
        let g1: Subject = Iri::new("http://e/g1").unwrap().into();
        let g2: Subject = Iri::new("http://e/g2").unwrap().into();
        assert_eq!(ds.named_graph(&g1).unwrap().len(), 2);
        assert_eq!(ds.named_graph(&g2).unwrap().len(), 1);
    }

    #[test]
    fn graphs_rejected_in_plain_turtle() {
        assert!(Parser::new(
            "<http://e/g> { <http://e/a> <http://e/p> <http://e/b> . }",
            false
        )
        .unwrap()
        .parse()
        .is_err());
    }

    #[test]
    fn spans_record_per_clause_positions() {
        let doc = "@prefix e: <http://e/> .\n\
                   e:s e:p e:a, e:b ;\n\
                   \x20\x20\x20\x20e:q \"v\" .\n";
        let (ds, _, spans) = Parser::new(doc, false)
            .unwrap()
            .record_spans()
            .parse_spanned()
            .unwrap();
        assert_eq!(ds.default_graph().len(), 3);
        assert_eq!(spans.len(), 3);
        let find = |local: &str| {
            let obj: Term = Iri::new(format!("http://e/{local}")).unwrap().into();
            spans
                .iter()
                .find(|e| e.triple.object == obj)
                .map(|e| (e.span.line, e.span.column))
        };
        // First clause starts at the predicate, comma continuation at its
        // own object, the `;` continuation at the second predicate.
        assert_eq!(find("a"), Some((2, 5)));
        assert_eq!(find("b"), Some((2, 14)));
        let lit = spans
            .iter()
            .find(|e| e.triple.object.as_literal().is_some())
            .unwrap();
        assert_eq!((lit.span.line, lit.span.column), (3, 5));
        assert!(spans.iter().all(|e| e.graph.is_none()));
    }

    #[test]
    fn spans_disabled_leaves_table_empty() {
        let (_, _, spans) = Parser::new("<http://e/s> <http://e/p> <http://e/o> .", false)
            .unwrap()
            .parse_spanned()
            .unwrap();
        assert!(spans.is_empty());
    }

    #[test]
    fn spans_carry_named_graph() {
        let (ds, _, spans) = Parser::new("@prefix e: <http://e/> .\ne:g { e:a e:p e:b . }", true)
            .unwrap()
            .record_spans()
            .parse_spanned()
            .unwrap();
        let g: Subject = Iri::new("http://e/g").unwrap().into();
        assert_eq!(ds.named_graph(&g).unwrap().len(), 1);
        let entry = spans.iter().next().unwrap();
        assert_eq!(entry.graph.as_ref(), Some(&g));
        assert_eq!(entry.span.line, 2);
    }

    #[test]
    fn unterminated_graph_block() {
        assert!(Parser::new(
            "<http://e/g> { <http://e/a> <http://e/p> <http://e/b> .",
            true
        )
        .unwrap()
        .parse()
        .is_err());
    }
}
