//! Binary encoding primitives for corpus snapshots.
//!
//! The snapshot format (see `docs/snapshot.md` in the repository root)
//! stores a global term table plus per-graph slabs of interned id-triples.
//! This module provides the low-level pieces: LEB128 varints,
//! length-prefixed strings, tagged [`Term`]s, term tables, and
//! delta-compressed triple slabs. All decoders validate as they go —
//! truncated, oversized or type-confused input yields an [`RdfError`],
//! never a panic or unbounded allocation.

use crate::error::RdfError;
use crate::term::{BlankNode, Iri, Literal, Term};

/// Term tags, one byte each, stable across snapshot versions.
const TAG_IRI: u8 = 0;
const TAG_BLANK: u8 = 1;
const TAG_LITERAL_SIMPLE: u8 = 2;
const TAG_LITERAL_LANG: u8 = 3;
const TAG_LITERAL_TYPED: u8 = 4;

fn corrupt(msg: impl Into<String>) -> RdfError {
    RdfError::InvalidInterned(msg.into())
}

/// Append `v` as an unsigned LEB128 varint (1–10 bytes).
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a length-prefixed UTF-8 string.
pub fn write_string(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// A validating cursor over an encoded byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn read_byte(&mut self) -> Result<u8, RdfError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| corrupt("truncated input"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Read an unsigned LEB128 varint.
    pub fn read_varint(&mut self) -> Result<u64, RdfError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.read_byte()?;
            let bits = u64::from(byte & 0x7f);
            if shift == 63 && bits > 1 {
                return Err(corrupt("varint overflows u64"));
            }
            v |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(corrupt("varint longer than 10 bytes"))
    }

    /// Read a varint and check it fits `u32` (ids, counts).
    pub fn read_u32(&mut self) -> Result<u32, RdfError> {
        u32::try_from(self.read_varint()?).map_err(|_| corrupt("value exceeds u32"))
    }

    /// Read a length-prefixed UTF-8 string. The length is bounded by the
    /// remaining input, so a corrupt prefix cannot trigger a huge
    /// allocation.
    pub fn read_string(&mut self) -> Result<String, RdfError> {
        let len = self.read_varint()? as usize;
        if len > self.remaining() {
            return Err(corrupt(format!(
                "string length {len} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        let bytes = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string is not valid UTF-8"))
    }
}

/// Append one tagged term.
pub fn write_term(out: &mut Vec<u8>, term: &Term) {
    match term {
        Term::Iri(i) => {
            out.push(TAG_IRI);
            write_string(out, i.as_str());
        }
        Term::Blank(b) => {
            out.push(TAG_BLANK);
            write_string(out, b.label());
        }
        Term::Literal(l) => {
            if let Some(tag) = l.language() {
                out.push(TAG_LITERAL_LANG);
                write_string(out, l.lexical());
                write_string(out, tag);
            } else if l.is_simple() {
                out.push(TAG_LITERAL_SIMPLE);
                write_string(out, l.lexical());
            } else {
                out.push(TAG_LITERAL_TYPED);
                write_string(out, l.lexical());
                write_string(out, l.datatype().as_str());
            }
        }
    }
}

/// Read one tagged term, re-validating it through the same constructors
/// the parsers use ([`Iri::new`], [`BlankNode::new`], [`Literal::lang`]).
pub fn read_term(r: &mut Reader<'_>) -> Result<Term, RdfError> {
    match r.read_byte()? {
        TAG_IRI => Ok(Term::Iri(Iri::new(r.read_string()?)?)),
        TAG_BLANK => Ok(Term::Blank(BlankNode::new(r.read_string()?)?)),
        TAG_LITERAL_SIMPLE => Ok(Term::Literal(Literal::simple(r.read_string()?))),
        TAG_LITERAL_LANG => {
            let lexical = r.read_string()?;
            let tag = r.read_string()?;
            Ok(Term::Literal(Literal::lang(lexical, &tag)?))
        }
        TAG_LITERAL_TYPED => {
            let lexical = r.read_string()?;
            let datatype = Iri::new(r.read_string()?)?;
            Ok(Term::Literal(Literal::typed(lexical, datatype)))
        }
        other => Err(corrupt(format!("unknown term tag {other}"))),
    }
}

/// Append a term table: varint count then tagged terms in id order.
pub fn write_term_table(out: &mut Vec<u8>, terms: &[Term]) {
    write_varint(out, terms.len() as u64);
    for term in terms {
        write_term(out, term);
    }
}

/// Read a term table written by [`write_term_table`].
pub fn read_term_table(r: &mut Reader<'_>) -> Result<Vec<Term>, RdfError> {
    let count = r.read_varint()? as usize;
    // Every encoded term takes at least two bytes (tag + length).
    if count > r.remaining() / 2 {
        return Err(corrupt(format!(
            "term table claims {count} entries but only {} bytes remain",
            r.remaining()
        )));
    }
    let mut terms = Vec::with_capacity(count);
    for _ in 0..count {
        terms.push(read_term(r)?);
    }
    Ok(terms)
}

/// Append a slab of id-triples. `triples` must be sorted ascending (the
/// natural order of [`crate::Graph::ids_matching`]); the subject column is
/// delta-encoded against the previous row, predicates and objects are raw
/// varints.
pub fn write_slab(out: &mut Vec<u8>, triples: &[(u32, u32, u32)]) {
    write_varint(out, triples.len() as u64);
    let mut prev_s = 0u32;
    for &(s, p, o) in triples {
        debug_assert!(s >= prev_s, "slab triples must be sorted by subject");
        write_varint(out, u64::from(s - prev_s));
        write_varint(out, u64::from(p));
        write_varint(out, u64::from(o));
        prev_s = s;
    }
}

/// Read a slab written by [`write_slab`], returning triples in the
/// original sorted order. Id range checks happen later, in
/// [`crate::Graph::from_interned`].
pub fn read_slab(r: &mut Reader<'_>) -> Result<Vec<(u32, u32, u32)>, RdfError> {
    let count = r.read_varint()? as usize;
    // Every row takes at least three bytes.
    if count > r.remaining() / 3 {
        return Err(corrupt(format!(
            "slab claims {count} triples but only {} bytes remain",
            r.remaining()
        )));
    }
    let mut triples = Vec::with_capacity(count);
    let mut prev_s = 0u32;
    for _ in 0..count {
        let delta = r.read_u32()?;
        let s = prev_s
            .checked_add(delta)
            .ok_or_else(|| corrupt("subject delta overflows u32"))?;
        let p = r.read_u32()?;
        let o = r.read_u32()?;
        triples.push((s, p, o));
        prev_s = s;
    }
    Ok(triples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        let cases = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ];
        for v in cases {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.read_varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        // Continuation bit set, then nothing.
        assert!(Reader::new(&[0x80]).read_varint().is_err());
        // 10 bytes all-continuation: longer than any u64 varint.
        assert!(Reader::new(&[0xff; 11]).read_varint().is_err());
        // 10-byte varint whose top byte pushes past 64 bits.
        let mut buf = vec![0xff; 9];
        buf.push(0x02);
        assert!(Reader::new(&buf).read_varint().is_err());
    }

    #[test]
    fn string_roundtrip_and_bad_length() {
        let mut buf = Vec::new();
        write_string(&mut buf, "héllo \u{1F600}");
        let mut r = Reader::new(&buf);
        assert_eq!(r.read_string().unwrap(), "héllo \u{1F600}");
        // Length prefix larger than the remaining bytes must error, not
        // allocate.
        let mut bad = Vec::new();
        write_varint(&mut bad, u64::MAX);
        assert!(Reader::new(&bad).read_string().is_err());
        // Invalid UTF-8 payload.
        let mut nonutf8 = Vec::new();
        write_varint(&mut nonutf8, 2);
        nonutf8.extend_from_slice(&[0xff, 0xfe]);
        assert!(Reader::new(&nonutf8).read_string().is_err());
    }

    #[test]
    fn term_roundtrip_all_kinds() {
        let terms: Vec<Term> = vec![
            Iri::new("http://example.org/a").unwrap().into(),
            BlankNode::new("b12").unwrap().into(),
            Literal::simple("plain \"text\"\nwith\tcontrols\u{01}").into(),
            Literal::lang("ciao", "it").unwrap().into(),
            Literal::typed(
                "2013-01-15T10:30:00Z",
                Iri::new(crate::xsd::DATE_TIME).unwrap(),
            )
            .into(),
        ];
        let mut buf = Vec::new();
        write_term_table(&mut buf, &terms);
        let mut r = Reader::new(&buf);
        assert_eq!(read_term_table(&mut r).unwrap(), terms);
        assert!(r.is_empty());
    }

    #[test]
    fn term_decode_rejects_bad_tag_and_bad_iri() {
        assert!(read_term(&mut Reader::new(&[9])).is_err());
        // TAG_IRI with a whitespace-containing IRI must fail validation.
        let mut buf = vec![TAG_IRI];
        write_string(&mut buf, "not an iri");
        assert!(read_term(&mut Reader::new(&buf)).is_err());
        // TAG_LITERAL_LANG with a bad language tag.
        let mut buf = vec![TAG_LITERAL_LANG];
        write_string(&mut buf, "x");
        write_string(&mut buf, "no spaces!");
        assert!(read_term(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn slab_roundtrip_and_bounds() {
        let triples = vec![(0, 5, 2), (0, 7, 1), (3, 5, 0), (3, 5, 9), (10, 0, 0)];
        let mut buf = Vec::new();
        write_slab(&mut buf, &triples);
        let mut r = Reader::new(&buf);
        assert_eq!(read_slab(&mut r).unwrap(), triples);
        assert!(r.is_empty());
        // A count far beyond the payload errors instead of allocating.
        let mut bad = Vec::new();
        write_varint(&mut bad, 1 << 40);
        assert!(read_slab(&mut Reader::new(&bad)).is_err());
        // Truncated rows are caught.
        let mut cut = Vec::new();
        write_slab(&mut cut, &triples);
        cut.truncate(cut.len() - 1);
        assert!(read_slab(&mut Reader::new(&cut)).is_err());
    }

    #[test]
    fn empty_table_and_slab() {
        let mut buf = Vec::new();
        write_term_table(&mut buf, &[]);
        write_slab(&mut buf, &[]);
        let mut r = Reader::new(&buf);
        assert!(read_term_table(&mut r).unwrap().is_empty());
        assert!(read_slab(&mut r).unwrap().is_empty());
        assert!(r.is_empty());
    }
}
