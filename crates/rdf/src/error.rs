//! Error types shared across the crate.

use std::fmt;

/// Top-level error for RDF operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// An IRI failed the (deliberately light) well-formedness check.
    InvalidIri(String),
    /// A blank-node label contained characters outside `[A-Za-z0-9_-]`.
    InvalidBlankNodeLabel(String),
    /// A language tag failed BCP-47-ish validation (`[a-zA-Z]+(-[a-zA-Z0-9]+)*`).
    InvalidLanguageTag(String),
    /// A concrete-syntax document failed to parse.
    Parse(ParseError),
    /// A typed literal's lexical form did not match its datatype.
    InvalidLexicalForm {
        /// The offending lexical form.
        lexical: String,
        /// The datatype IRI it was supposed to conform to.
        datatype: String,
    },
    /// An interned term table / id-triple set failed consistency checks
    /// (see [`crate::Graph::from_interned`]).
    InvalidInterned(String),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::InvalidIri(iri) => write!(f, "invalid IRI: {iri:?}"),
            RdfError::InvalidBlankNodeLabel(l) => write!(f, "invalid blank node label: {l:?}"),
            RdfError::InvalidLanguageTag(t) => write!(f, "invalid language tag: {t:?}"),
            RdfError::Parse(e) => write!(f, "parse error: {e}"),
            RdfError::InvalidLexicalForm { lexical, datatype } => {
                write!(
                    f,
                    "lexical form {lexical:?} is not valid for datatype <{datatype}>"
                )
            }
            RdfError::InvalidInterned(m) => write!(f, "invalid interned graph data: {m}"),
        }
    }
}

impl std::error::Error for RdfError {}

impl From<ParseError> for RdfError {
    fn from(e: ParseError) -> Self {
        RdfError::Parse(e)
    }
}

/// A syntax error while parsing Turtle, TriG or N-Triples, with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
    /// The source file the document came from, when known. Parsers never
    /// set this themselves (they only see a string); callers that read from
    /// disk attach it via [`ParseError::with_file`].
    pub file: Option<String>,
}

impl ParseError {
    /// Create a parse error at the given 1-based position.
    pub fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column,
            message: message.into(),
            file: None,
        }
    }

    /// Attach the path of the source file, for multi-file error reports.
    pub fn with_file(mut self, file: impl Into<String>) -> Self {
        self.file = Some(file.into());
        self
    }

    /// Byte offset of the error position within `source`, for reports
    /// that need a seekable location rather than line/column (e.g. the
    /// corpus quarantine report). `None` when the recorded position
    /// lies outside `source`.
    pub fn byte_offset_in(&self, source: &str) -> Option<usize> {
        let line_start = if self.line <= 1 {
            0
        } else {
            // Offset just past the (line-1)-th newline.
            let mut seen = 0usize;
            let mut start = None;
            for (i, b) in source.bytes().enumerate() {
                if b == b'\n' {
                    seen += 1;
                    if seen == self.line - 1 {
                        start = Some(i + 1);
                        break;
                    }
                }
            }
            start?
        };
        let line = &source[line_start..];
        let line = line.split_once('\n').map_or(line, |(l, _)| l);
        // Column is 1-based in characters; convert to a byte offset.
        let col = self.column.max(1) - 1;
        if col == 0 {
            return Some(line_start);
        }
        let mut chars = 0usize;
        for (i, _) in line.char_indices() {
            if chars == col {
                return Some(line_start + i);
            }
            chars += 1;
        }
        // Position one past the last character (errors at end of line).
        (chars == col).then_some(line_start + line.len())
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(file) = &self.file {
            write!(f, "{file}:")?;
        }
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_position() {
        let e = ParseError::new(3, 7, "unexpected token");
        assert_eq!(e.to_string(), "3:7: unexpected token");
        let r: RdfError = e.into();
        assert_eq!(r.to_string(), "parse error: 3:7: unexpected token");
    }

    #[test]
    fn display_includes_file_when_attached() {
        let e = ParseError::new(3, 7, "unexpected token").with_file("taverna/run-42/run.prov.ttl");
        assert_eq!(
            e.to_string(),
            "taverna/run-42/run.prov.ttl:3:7: unexpected token"
        );
        assert_eq!(e.file.as_deref(), Some("taverna/run-42/run.prov.ttl"));
    }

    #[test]
    fn byte_offset_matches_line_and_column() {
        let source = "first line\nsécond line\nthird";
        // Line 1, column 1 → offset 0.
        assert_eq!(ParseError::new(1, 1, "x").byte_offset_in(source), Some(0));
        // Line 2, column 1 → just past the first newline.
        assert_eq!(ParseError::new(2, 1, "x").byte_offset_in(source), Some(11));
        // Column counts characters, offsets count bytes: 'é' is 2 bytes,
        // so column 4 of line 2 lands 4 bytes in.
        assert_eq!(ParseError::new(2, 4, "x").byte_offset_in(source), Some(15));
        // One past the end of a line is valid (errors at EOL)…
        assert_eq!(ParseError::new(3, 6, "x").byte_offset_in(source), Some(29));
        // …but far beyond it is not, and neither is a missing line.
        assert_eq!(ParseError::new(3, 60, "x").byte_offset_in(source), None);
        assert_eq!(ParseError::new(9, 1, "x").byte_offset_in(source), None);
    }

    #[test]
    fn display_invalid_iri() {
        let e = RdfError::InvalidIri("a b".into());
        assert!(e.to_string().contains("a b"));
    }

    #[test]
    fn display_invalid_lexical_form() {
        let e = RdfError::InvalidLexicalForm {
            lexical: "notadate".into(),
            datatype: "http://www.w3.org/2001/XMLSchema#dateTime".into(),
        };
        let s = e.to_string();
        assert!(s.contains("notadate") && s.contains("dateTime"));
    }
}
