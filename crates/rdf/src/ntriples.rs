//! N-Triples reading and writing.
//!
//! N-Triples is a line-oriented subset of Turtle; parsing reuses the
//! Turtle parser (which accepts every valid N-Triples document), while the
//! writer emits one canonical absolute-IRI statement per line.

use crate::error::ParseError;
use crate::graph::Graph;
use crate::span::SpanTable;

/// Parse an N-Triples document. Any valid N-Triples document is also valid
/// Turtle, so this delegates to the Turtle parser; documents that use
/// Turtle-only sugar are *also* accepted (we are liberal in what we accept).
pub fn parse_ntriples(input: &str) -> Result<Graph, ParseError> {
    let (graph, _) = crate::turtle::parse_turtle(input)?;
    Ok(graph)
}

/// Parse an N-Triples document, recording a source span per triple.
pub fn parse_ntriples_spanned(input: &str) -> Result<(Graph, SpanTable), ParseError> {
    let (graph, _, spans) = crate::turtle::parse_turtle_spanned(input)?;
    Ok((graph, spans))
}

/// Serialize a graph as N-Triples, one statement per line, in index order.
pub fn write_ntriples(graph: &Graph) -> String {
    let mut out = String::new();
    for t in graph.iter() {
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Iri, Literal};
    use crate::triple::Triple;

    #[test]
    fn roundtrip() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            Iri::new("http://e/s").unwrap(),
            Iri::new("http://e/p").unwrap(),
            Literal::lang("été\nnouveau", "fr").unwrap(),
        ));
        g.insert(Triple::new(
            Iri::new("http://e/s").unwrap(),
            Iri::new("http://e/q").unwrap(),
            Iri::new("http://e/o").unwrap(),
        ));
        let nt = write_ntriples(&g);
        assert_eq!(nt.lines().count(), 2);
        let g2 = parse_ntriples(&nt).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn empty_graph_is_empty_document() {
        assert_eq!(write_ntriples(&Graph::new()), "");
        assert!(parse_ntriples("").unwrap().is_empty());
    }

    #[test]
    fn line_per_statement() {
        let nt = "<http://e/s> <http://e/p> \"v\" .\n<http://e/s> <http://e/p> \"w\" .\n";
        let g = parse_ntriples(nt).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(write_ntriples(&g), nt);
    }
}
