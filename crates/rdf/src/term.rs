//! RDF terms: IRIs, blank nodes and literals.
//!
//! Terms use [`std::sync::Arc`]`<str>` internally so that cloning a term —
//! which happens constantly when building triples — is a reference-count
//! bump rather than a heap allocation.

use crate::error::RdfError;
use std::fmt;
use std::sync::Arc;

/// An IRI (we do not distinguish IRIs from URIs; the corpus uses ASCII IRIs).
///
/// Validation is deliberately light: an IRI must be non-empty, contain a
/// scheme delimiter (`:`), and contain no whitespace, `<`, `>`, `"`, `{`,
/// `}`, `|`, `^`, or backslash — the characters that would break the
/// N-Triples/Turtle serializations the corpus relies on.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(Arc<str>);

impl Iri {
    /// Parse and validate an IRI.
    pub fn new(iri: impl AsRef<str>) -> Result<Self, RdfError> {
        let s = iri.as_ref();
        if Self::is_valid(s) {
            Ok(Iri(Arc::from(s)))
        } else {
            Err(RdfError::InvalidIri(s.to_owned()))
        }
    }

    /// Construct without validation. Intended for static, known-good
    /// vocabulary constants; panics in debug builds on invalid input.
    pub fn new_unchecked(iri: impl AsRef<str>) -> Self {
        let s = iri.as_ref();
        debug_assert!(
            Self::is_valid(s),
            "invalid IRI passed to new_unchecked: {s:?}"
        );
        Iri(Arc::from(s))
    }

    fn is_valid(s: &str) -> bool {
        !s.is_empty()
            && s.contains(':')
            && !s.chars().any(|c| {
                c.is_whitespace()
                    || matches!(c, '<' | '>' | '"' | '{' | '}' | '|' | '^' | '`' | '\\')
            })
    }

    /// The IRI as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Append a suffix to this IRI, e.g. to mint identifiers under a base.
    pub fn join(&self, suffix: &str) -> Result<Self, RdfError> {
        Self::new(format!("{}{}", self.0, suffix))
    }
}

impl fmt::Debug for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Iri(<{}>)", self.0)
    }
}

impl fmt::Display for Iri {
    /// Displays in N-Triples syntax: `<iri>`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl AsRef<str> for Iri {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A blank node with an explicit label.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlankNode(Arc<str>);

impl BlankNode {
    /// Create a blank node; labels must match `[A-Za-z0-9][A-Za-z0-9_.-]*`
    /// with no trailing `.` (the portable intersection of the Turtle and
    /// N-Triples grammars).
    pub fn new(label: impl AsRef<str>) -> Result<Self, RdfError> {
        let s = label.as_ref();
        let ok = !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_alphanumeric())
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
            && !s.ends_with('.');
        if ok {
            Ok(BlankNode(Arc::from(s)))
        } else {
            Err(RdfError::InvalidBlankNodeLabel(s.to_owned()))
        }
    }

    /// The label, without the `_:` prefix.
    pub fn label(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlankNode(_:{})", self.0)
    }
}

impl fmt::Display for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

/// The three kinds of RDF 1.1 literals.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
enum LiteralKind {
    /// A simple literal (implicitly `xsd:string`).
    Simple,
    /// A language-tagged string.
    Lang(Arc<str>),
    /// A literal with an explicit datatype IRI.
    Typed(Iri),
}

/// An RDF literal: a lexical form plus either a language tag or a datatype.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    lexical: Arc<str>,
    kind: LiteralKind,
}

impl Literal {
    /// A simple (plain, `xsd:string`) literal.
    pub fn simple(lexical: impl AsRef<str>) -> Self {
        Literal {
            lexical: Arc::from(lexical.as_ref()),
            kind: LiteralKind::Simple,
        }
    }

    /// A language-tagged string; the tag must match `[a-zA-Z]+(-[a-zA-Z0-9]+)*`.
    pub fn lang(lexical: impl AsRef<str>, tag: impl AsRef<str>) -> Result<Self, RdfError> {
        let tag = tag.as_ref();
        let mut parts = tag.split('-');
        let head_ok = parts
            .next()
            .is_some_and(|h| !h.is_empty() && h.chars().all(|c| c.is_ascii_alphabetic()));
        let rest_ok = parts.all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_alphanumeric()));
        if head_ok && rest_ok {
            Ok(Literal {
                lexical: Arc::from(lexical.as_ref()),
                kind: LiteralKind::Lang(Arc::from(tag.to_ascii_lowercase().as_str())),
            })
        } else {
            Err(RdfError::InvalidLanguageTag(tag.to_owned()))
        }
    }

    /// A typed literal with the given datatype IRI.
    pub fn typed(lexical: impl AsRef<str>, datatype: Iri) -> Self {
        if datatype.as_str() == crate::xsd::STRING {
            return Literal::simple(lexical);
        }
        Literal {
            lexical: Arc::from(lexical.as_ref()),
            kind: LiteralKind::Typed(datatype),
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(value: i64) -> Self {
        Literal::typed(value.to_string(), Iri::new_unchecked(crate::xsd::INTEGER))
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(value: bool) -> Self {
        Literal::typed(value.to_string(), Iri::new_unchecked(crate::xsd::BOOLEAN))
    }

    /// An `xsd:decimal` literal (from a float, rendered with full precision).
    pub fn decimal(value: f64) -> Self {
        Literal::typed(format!("{value}"), Iri::new_unchecked(crate::xsd::DECIMAL))
    }

    /// An `xsd:dateTime` literal from a [`crate::xsd::DateTime`].
    pub fn date_time(value: &crate::xsd::DateTime) -> Self {
        Literal::typed(value.to_string(), Iri::new_unchecked(crate::xsd::DATE_TIME))
    }

    /// The lexical form.
    pub fn lexical(&self) -> &str {
        &self.lexical
    }

    /// The language tag, if this is a language-tagged string.
    pub fn language(&self) -> Option<&str> {
        match &self.kind {
            LiteralKind::Lang(tag) => Some(tag),
            _ => None,
        }
    }

    /// The datatype IRI. Simple literals report `xsd:string`, language
    /// strings report `rdf:langString`, per RDF 1.1.
    pub fn datatype(&self) -> Iri {
        match &self.kind {
            LiteralKind::Simple => Iri::new_unchecked(crate::xsd::STRING),
            LiteralKind::Lang(_) => {
                Iri::new_unchecked("http://www.w3.org/1999/02/22-rdf-syntax-ns#langString")
            }
            LiteralKind::Typed(dt) => dt.clone(),
        }
    }

    /// Whether this literal is a simple (plain) literal.
    pub fn is_simple(&self) -> bool {
        matches!(self.kind, LiteralKind::Simple)
    }

    /// Parse as `i64` if the datatype is a numeric XSD type.
    pub fn as_integer(&self) -> Option<i64> {
        match &self.kind {
            LiteralKind::Typed(dt)
                if matches!(
                    dt.as_str(),
                    crate::xsd::INTEGER | crate::xsd::LONG | crate::xsd::INT
                ) =>
            {
                self.lexical.parse().ok()
            }
            _ => None,
        }
    }

    /// Parse as [`crate::xsd::DateTime`] if this is an `xsd:dateTime`.
    pub fn as_date_time(&self) -> Option<crate::xsd::DateTime> {
        match &self.kind {
            LiteralKind::Typed(dt) if dt.as_str() == crate::xsd::DATE_TIME => {
                crate::xsd::DateTime::parse(&self.lexical).ok()
            }
            _ => None,
        }
    }

    /// Parse as `bool` if this is an `xsd:boolean`.
    pub fn as_boolean(&self) -> Option<bool> {
        match &self.kind {
            LiteralKind::Typed(dt) if dt.as_str() == crate::xsd::BOOLEAN => {
                match self.lexical.as_ref() {
                    "true" | "1" => Some(true),
                    "false" | "0" => Some(false),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

/// Escape a string for inclusion between double quotes in N-Triples/Turtle.
///
/// Control characters without a single-letter escape are emitted as
/// `\uXXXX` so serialized output never contains raw control bytes and
/// re-serialization is byte-stable (the snapshot checksum relies on it).
pub(crate) fn escape_literal(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if c.is_control() => {
                let _ = write!(out, "\\u{:04X}", c as u32);
            }
            _ => out.push(c),
        }
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Literal({self})")
    }
}

impl fmt::Display for Literal {
    /// Displays in N-Triples syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = String::with_capacity(self.lexical.len() + 2);
        escape_literal(&self.lexical, &mut buf);
        write!(f, "\"{buf}\"")?;
        match &self.kind {
            LiteralKind::Simple => Ok(()),
            LiteralKind::Lang(tag) => write!(f, "@{tag}"),
            LiteralKind::Typed(dt) => write!(f, "^^{dt}"),
        }
    }
}

/// A subject position term: IRI or blank node.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Subject {
    /// A named node.
    Iri(Iri),
    /// An anonymous node.
    Blank(BlankNode),
}

impl Subject {
    /// The IRI, if this subject is named.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Subject::Iri(i) => Some(i),
            Subject::Blank(_) => None,
        }
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::Iri(i) => i.fmt(f),
            Subject::Blank(b) => b.fmt(f),
        }
    }
}

impl From<Iri> for Subject {
    fn from(i: Iri) -> Self {
        Subject::Iri(i)
    }
}

impl From<BlankNode> for Subject {
    fn from(b: BlankNode) -> Self {
        Subject::Blank(b)
    }
}

/// Any RDF term: IRI, blank node or literal.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A named node.
    Iri(Iri),
    /// An anonymous node.
    Blank(BlankNode),
    /// A literal value.
    Literal(Literal),
}

impl Term {
    /// The IRI, if this term is one.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(i) => Some(i),
            _ => None,
        }
    }

    /// The literal, if this term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// Convert to a [`Subject`] if this term may appear in subject position.
    pub fn as_subject(&self) -> Option<Subject> {
        match self {
            Term::Iri(i) => Some(Subject::Iri(i.clone())),
            Term::Blank(b) => Some(Subject::Blank(b.clone())),
            Term::Literal(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => i.fmt(f),
            Term::Blank(b) => b.fmt(f),
            Term::Literal(l) => l.fmt(f),
        }
    }
}

impl From<Iri> for Term {
    fn from(i: Iri) -> Self {
        Term::Iri(i)
    }
}

impl From<BlankNode> for Term {
    fn from(b: BlankNode) -> Self {
        Term::Blank(b)
    }
}

impl From<Literal> for Term {
    fn from(l: Literal) -> Self {
        Term::Literal(l)
    }
}

impl From<Subject> for Term {
    fn from(s: Subject) -> Self {
        match s {
            Subject::Iri(i) => Term::Iri(i),
            Subject::Blank(b) => Term::Blank(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_validation() {
        assert!(Iri::new("http://example.org/a").is_ok());
        assert!(Iri::new("urn:uuid:1234").is_ok());
        assert!(Iri::new("").is_err());
        assert!(Iri::new("no-scheme").is_err());
        assert!(Iri::new("http://example.org/a b").is_err());
        assert!(Iri::new("http://example.org/<x>").is_err());
    }

    #[test]
    fn iri_display_and_join() {
        let base = Iri::new("http://example.org/run/").unwrap();
        assert_eq!(base.to_string(), "<http://example.org/run/>");
        let joined = base.join("42").unwrap();
        assert_eq!(joined.as_str(), "http://example.org/run/42");
    }

    #[test]
    fn blank_node_validation() {
        assert!(BlankNode::new("b0").is_ok());
        assert!(BlankNode::new("node-1.a").is_ok());
        assert!(BlankNode::new("").is_err());
        assert!(BlankNode::new("-lead").is_err());
        assert!(BlankNode::new("trail.").is_err());
        assert!(BlankNode::new("sp ace").is_err());
        assert_eq!(BlankNode::new("b1").unwrap().to_string(), "_:b1");
    }

    #[test]
    fn literal_kinds_and_accessors() {
        let s = Literal::simple("hello");
        assert!(s.is_simple());
        assert_eq!(s.datatype().as_str(), crate::xsd::STRING);

        let l = Literal::lang("bonjour", "FR").unwrap();
        assert_eq!(l.language(), Some("fr"));
        assert_eq!(l.to_string(), "\"bonjour\"@fr");
        assert!(Literal::lang("x", "9nope").is_err());
        assert!(Literal::lang("x", "en-").is_err());

        let i = Literal::integer(-7);
        assert_eq!(i.as_integer(), Some(-7));
        assert_eq!(i.to_string(), format!("\"-7\"^^<{}>", crate::xsd::INTEGER));

        let b = Literal::boolean(true);
        assert_eq!(b.as_boolean(), Some(true));
    }

    #[test]
    fn typed_string_collapses_to_simple() {
        let t = Literal::typed("x", Iri::new_unchecked(crate::xsd::STRING));
        assert!(t.is_simple());
        assert_eq!(t, Literal::simple("x"));
    }

    #[test]
    fn literal_escaping() {
        let l = Literal::simple("line1\nline2\t\"quoted\" \\slash");
        assert_eq!(
            l.to_string(),
            "\"line1\\nline2\\t\\\"quoted\\\" \\\\slash\""
        );
    }

    #[test]
    fn control_characters_escape_as_hex() {
        // Control characters without a single-letter escape must not leak
        // raw into serialized output.
        let l = Literal::simple("a\u{01}b\u{0B}c\u{7F}d\u{85}e");
        assert_eq!(l.to_string(), "\"a\\u0001b\\u000Bc\\u007Fd\\u0085e\"");
        // The named escapes keep their short forms.
        let named = Literal::simple("\u{08}\u{0C}");
        assert_eq!(named.to_string(), "\"\\b\\f\"");
    }

    #[test]
    fn datetime_literal_roundtrip() {
        let dt = crate::xsd::DateTime::from_unix_millis(1_358_245_800_000);
        let lit = Literal::date_time(&dt);
        assert_eq!(lit.as_date_time(), Some(dt));
    }

    #[test]
    fn term_conversions() {
        let iri = Iri::new("http://example.org/x").unwrap();
        let t: Term = iri.clone().into();
        assert_eq!(t.as_iri(), Some(&iri));
        assert_eq!(t.as_subject(), Some(Subject::Iri(iri.clone())));
        let lit: Term = Literal::simple("v").into();
        assert!(lit.as_subject().is_none());
        assert!(lit.as_literal().is_some());
    }
}
