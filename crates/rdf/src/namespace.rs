//! Prefix management: CURIE expansion and IRI compaction.

use crate::error::RdfError;
use crate::term::Iri;
use std::collections::BTreeMap;

/// An ordered prefix → namespace map.
#[derive(Default, Clone, Debug, PartialEq, Eq)]
pub struct PrefixMap {
    prefixes: BTreeMap<String, String>,
}

impl PrefixMap {
    /// An empty prefix map.
    pub fn new() -> Self {
        PrefixMap::default()
    }

    /// A prefix map preloaded with the namespaces the corpus uses.
    pub fn common() -> Self {
        let mut m = PrefixMap::new();
        for (p, ns) in [
            ("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#"),
            ("rdfs", "http://www.w3.org/2000/01/rdf-schema#"),
            ("xsd", "http://www.w3.org/2001/XMLSchema#"),
            ("prov", "http://www.w3.org/ns/prov#"),
            ("wfprov", "http://purl.org/wf4ever/wfprov#"),
            ("wfdesc", "http://purl.org/wf4ever/wfdesc#"),
            ("opmw", "http://www.opmw.org/ontology/"),
            ("ro", "http://purl.org/wf4ever/ro#"),
            ("dcterms", "http://purl.org/dc/terms/"),
            ("foaf", "http://xmlns.com/foaf/0.1/"),
        ] {
            m.insert(p, ns);
        }
        m
    }

    /// Bind `prefix` to `namespace` (replacing any previous binding).
    pub fn insert(&mut self, prefix: impl Into<String>, namespace: impl Into<String>) {
        self.prefixes.insert(prefix.into(), namespace.into());
    }

    /// The namespace bound to `prefix`, if any.
    pub fn get(&self, prefix: &str) -> Option<&str> {
        self.prefixes.get(prefix).map(String::as_str)
    }

    /// Iterate `(prefix, namespace)` in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.prefixes.iter().map(|(p, n)| (p.as_str(), n.as_str()))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Whether no prefix is bound.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// Expand a CURIE like `prov:Entity` into a full IRI.
    pub fn expand(&self, curie: &str) -> Result<Iri, RdfError> {
        let (prefix, local) = curie
            .split_once(':')
            .ok_or_else(|| RdfError::InvalidIri(format!("not a CURIE: {curie}")))?;
        let ns = self
            .get(prefix)
            .ok_or_else(|| RdfError::InvalidIri(format!("unbound prefix: {prefix}")))?;
        Iri::new(format!("{ns}{local}"))
    }

    /// Compact an IRI to `prefix:local` if a bound namespace is a prefix of
    /// it and the remainder is a safe local name. Longest namespace wins.
    pub fn compact(&self, iri: &Iri) -> Option<String> {
        let s = iri.as_str();
        let mut best: Option<(&str, &str)> = None;
        for (prefix, ns) in self.iter() {
            if let Some(local) = s.strip_prefix(ns) {
                if is_safe_local(local)
                    && best.is_none_or(|(_, b)| ns.len() > self.get(b).map_or(0, str::len))
                {
                    best = Some((local, prefix));
                }
            }
        }
        best.map(|(local, prefix)| format!("{prefix}:{local}"))
    }
}

/// Local names we are willing to emit in Turtle without escaping:
/// `[A-Za-z0-9_][A-Za-z0-9_.-]*` not ending with `.`, or empty.
fn is_safe_local(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    let mut chars = s.chars();
    let first_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
    first_ok
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
        && !s.ends_with('.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_common_prefixes() {
        let m = PrefixMap::common();
        assert_eq!(
            m.expand("prov:Entity").unwrap().as_str(),
            "http://www.w3.org/ns/prov#Entity"
        );
        assert_eq!(
            m.expand("wfprov:WorkflowRun").unwrap().as_str(),
            "http://purl.org/wf4ever/wfprov#WorkflowRun"
        );
        assert!(m.expand("nope:X").is_err());
        assert!(m.expand("nocolon").is_err());
    }

    #[test]
    fn compact_picks_longest_namespace() {
        let mut m = PrefixMap::new();
        m.insert("e", "http://example.org/");
        m.insert("ev", "http://example.org/vocab/");
        let iri = Iri::new("http://example.org/vocab/Thing").unwrap();
        assert_eq!(m.compact(&iri), Some("ev:Thing".to_owned()));
    }

    #[test]
    fn compact_rejects_unsafe_locals() {
        let m = PrefixMap::common();
        let iri = Iri::new("http://www.w3.org/ns/prov#a/b").unwrap();
        assert_eq!(m.compact(&iri), None);
        let trailing_dot = Iri::new("http://www.w3.org/ns/prov#x.").unwrap();
        assert_eq!(m.compact(&trailing_dot), None);
    }

    #[test]
    fn compact_unknown_namespace_is_none() {
        let m = PrefixMap::common();
        let iri = Iri::new("http://nowhere.example/thing").unwrap();
        assert_eq!(m.compact(&iri), None);
    }

    #[test]
    fn rebinding_replaces() {
        let mut m = PrefixMap::new();
        m.insert("p", "http://a/");
        m.insert("p", "http://b/");
        assert_eq!(m.get("p"), Some("http://b/"));
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }
}
