//! # provbench-rdf
//!
//! A self-contained RDF 1.1 substrate used by the ProvBench reproduction.
//!
//! The Wf4Ever PROV-corpus is distributed as RDF (Turtle and TriG files);
//! this crate provides everything required to create, store, query, parse
//! and serialize such data without external RDF tooling:
//!
//! * [`term`] — IRIs, blank nodes and literals ([`Iri`], [`BlankNode`],
//!   [`Literal`], [`Term`]);
//! * [`triple`] — [`Triple`]s and [`Quad`]s;
//! * [`graph`] — an indexed triple store ([`Graph`]) with pattern matching
//!   over SPO/POS/OSP B-tree indexes;
//! * [`dataset`] — named-graph datasets ([`Dataset`]) as needed for
//!   `prov:Bundle`s serialized as TriG graphs;
//! * [`namespace`] — prefix management and CURIE compaction;
//! * [`turtle`], [`ntriples`], [`trig`] — readers and writers for the three
//!   concrete syntaxes the corpus uses;
//! * [`xsd`] — `xsd:dateTime` parsing/formatting and other typed-literal
//!   helpers (no external date/time crate).
//!
//! ## Example
//!
//! ```
//! use provbench_rdf::{Graph, Iri, Literal, Term, Triple};
//!
//! let mut g = Graph::new();
//! let run = Iri::new("http://example.org/run/1").unwrap();
//! let p = Iri::new("http://www.w3.org/ns/prov#startedAtTime").unwrap();
//! g.insert(Triple::new(
//!     run.clone(),
//!     p.clone(),
//!     Term::Literal(Literal::typed(
//!         "2013-01-15T10:30:00Z",
//!         Iri::new("http://www.w3.org/2001/XMLSchema#dateTime").unwrap(),
//!     )),
//! ));
//! assert_eq!(g.len(), 1);
//! assert_eq!(g.triples_matching(Some(&run.into()), Some(&p), None).count(), 1);
//! ```

pub mod canon;
pub mod codec;
pub mod dataset;
pub mod error;
pub mod graph;
mod interner;
pub mod namespace;
pub mod nquads;
pub mod ntriples;
pub mod span;
pub mod term;
pub mod trig;
pub mod triple;
pub mod turtle;
pub mod xsd;

pub use canon::{canonicalize, isomorphic};
pub use dataset::{Dataset, GraphName};
pub use error::{ParseError, RdfError};
pub use graph::{Graph, TermId};
pub use namespace::PrefixMap;
pub use nquads::{parse_nquads, write_nquads};
pub use ntriples::{parse_ntriples, parse_ntriples_spanned, write_ntriples};
pub use span::{Span, SpanTable, SpannedStatement};
pub use term::{BlankNode, Iri, Literal, Subject, Term};
pub use trig::{parse_trig, parse_trig_spanned, write_trig};
pub use triple::{Quad, Triple};
pub use turtle::{parse_turtle, parse_turtle_spanned, write_turtle};
pub use xsd::DateTime;
