//! Triples and quads.

use crate::term::{Iri, Subject, Term};
use std::fmt;

/// An RDF triple.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Triple {
    /// Subject position.
    pub subject: Subject,
    /// Predicate position (always an IRI).
    pub predicate: Iri,
    /// Object position.
    pub object: Term,
}

impl Triple {
    /// Build a triple from anything convertible into the three positions.
    pub fn new(subject: impl Into<Subject>, predicate: Iri, object: impl Into<Term>) -> Self {
        Triple {
            subject: subject.into(),
            predicate,
            object: object.into(),
        }
    }
}

impl fmt::Display for Triple {
    /// N-Triples statement syntax (terminating ` .` included).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// A quad: a triple plus an optional named-graph label.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Quad {
    /// The triple.
    pub triple: Triple,
    /// The graph the triple belongs to; `None` means the default graph.
    pub graph: Option<Subject>,
}

impl Quad {
    /// A quad in the default graph.
    pub fn in_default(triple: Triple) -> Self {
        Quad {
            triple,
            graph: None,
        }
    }

    /// A quad in the named graph `graph`.
    pub fn in_graph(triple: Triple, graph: impl Into<Subject>) -> Self {
        Quad {
            triple,
            graph: Some(graph.into()),
        }
    }
}

impl fmt::Display for Quad {
    /// N-Quads statement syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.graph {
            None => self.triple.fmt(f),
            Some(g) => write!(
                f,
                "{} {} {} {} .",
                self.triple.subject, self.triple.predicate, self.triple.object, g
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    #[test]
    fn triple_display() {
        let t = Triple::new(
            iri("http://ex.org/s"),
            iri("http://ex.org/p"),
            Literal::simple("o"),
        );
        assert_eq!(t.to_string(), "<http://ex.org/s> <http://ex.org/p> \"o\" .");
    }

    #[test]
    fn quad_display() {
        let t = Triple::new(
            iri("http://ex.org/s"),
            iri("http://ex.org/p"),
            iri("http://ex.org/o"),
        );
        assert_eq!(Quad::in_default(t.clone()).to_string(), t.to_string());
        let q = Quad::in_graph(t, iri("http://ex.org/g"));
        assert!(q.to_string().ends_with("<http://ex.org/g> ."));
    }
}
