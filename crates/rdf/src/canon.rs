//! Blank-node canonicalization and graph isomorphism.
//!
//! Two RDF graphs are *isomorphic* when one can be mapped onto the other
//! by renaming blank nodes. Corpus tooling needs this to compare traces
//! that went through different serializations (each of which may relabel
//! the qualified-pattern helper nodes).
//!
//! The implementation is iterative colour refinement (1-WL) with
//! deterministic tie-breaking: blank nodes receive colours from the
//! signature of their incident triples, refined to fixpoint, then ties
//! are broken by canonical order and refinement re-run. This decides
//! isomorphism correctly for graphs whose blank nodes are
//! distinguishable by their neighbourhoods — which covers all PROV trace
//! shapes (helper nodes always attach to distinct IRIs); highly
//! symmetric adversarial graphs may canonicalize conservatively (two
//! automorphic nodes get distinct labels in a stable order, which is
//! still deterministic and isomorphism-preserving).

use crate::graph::Graph;
use crate::term::{BlankNode, Subject, Term};
use crate::triple::Triple;
use std::collections::BTreeMap;

fn fnv(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn combine(a: u64, b: u64) -> u64 {
    a.rotate_left(13) ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Stable hash of a term where blank nodes contribute their current
/// colour instead of their label.
fn term_sig(term: &Term, colors: &BTreeMap<String, u64>) -> u64 {
    match term {
        Term::Iri(i) => fnv(i.as_str().as_bytes()),
        Term::Literal(l) => fnv(l.to_string().as_bytes()),
        Term::Blank(b) => colors.get(b.label()).copied().unwrap_or(1),
    }
}

fn subject_sig(s: &Subject, colors: &BTreeMap<String, u64>) -> u64 {
    match s {
        Subject::Iri(i) => fnv(i.as_str().as_bytes()),
        Subject::Blank(b) => colors.get(b.label()).copied().unwrap_or(1),
    }
}

/// One refinement round: recolour every blank node from the multiset of
/// its incident triple signatures.
fn refine(graph: &Graph, colors: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    let mut sigs: BTreeMap<String, Vec<u64>> =
        colors.keys().map(|k| (k.clone(), Vec::new())).collect();
    for t in graph.iter() {
        let p_sig = fnv(t.predicate.as_str().as_bytes());
        let s_sig = subject_sig(&t.subject, colors);
        let o_sig = term_sig(&t.object, colors);
        if let Subject::Blank(b) = &t.subject {
            sigs.entry(b.label().to_owned())
                .or_default()
                .push(combine(combine(2, p_sig), o_sig));
        }
        if let Term::Blank(b) = &t.object {
            sigs.entry(b.label().to_owned())
                .or_default()
                .push(combine(combine(3, p_sig), s_sig));
        }
    }
    sigs.into_iter()
        .map(|(label, mut edge_sigs)| {
            edge_sigs.sort_unstable();
            let mut h = colors.get(&label).copied().unwrap_or(1);
            for s in edge_sigs {
                h = combine(h, s);
            }
            (label, h)
        })
        .collect()
}

fn blank_labels(graph: &Graph) -> Vec<String> {
    let mut labels = Vec::new();
    for t in graph.iter() {
        if let Subject::Blank(b) = &t.subject {
            labels.push(b.label().to_owned());
        }
        if let Term::Blank(b) = &t.object {
            labels.push(b.label().to_owned());
        }
    }
    labels.sort();
    labels.dedup();
    labels
}

/// Compute the canonical relabeling `old label → canonical label`.
fn canonical_mapping(graph: &Graph) -> BTreeMap<String, String> {
    let labels = blank_labels(graph);
    let mut colors: BTreeMap<String, u64> = labels.iter().map(|l| (l.clone(), 1u64)).collect();
    // Refine to fixpoint (bounded by node count).
    for _ in 0..labels.len().max(2) {
        let next = refine(graph, &colors);
        if next == colors {
            break;
        }
        colors = next;
    }
    // Break remaining ties deterministically: order by (colour, degree,
    // original-label-independent structure is exhausted, so fall back to
    // a stable ordering over the colour multiset index).
    let mut by_color: Vec<(&String, u64)> = colors.iter().map(|(l, &c)| (l, c)).collect();
    by_color.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(b.0)));
    // If a colour class has >1 member, individualize the first member of
    // the class and re-refine; repeat until discrete.
    let mut round = 0usize;
    loop {
        let mut classes: BTreeMap<u64, Vec<&String>> = BTreeMap::new();
        for (l, &c) in &colors {
            classes.entry(c).or_default().push(l);
        }
        let Some(members) = classes.values().find(|v| v.len() > 1) else {
            break;
        };
        let chosen = members[0].clone();
        round += 1;
        colors.insert(chosen, combine(0xdead_beef, round as u64));
        for _ in 0..labels.len().max(2) {
            let next = refine(graph, &colors);
            if next == colors {
                break;
            }
            colors = next;
        }
    }
    let mut ordered: Vec<(&String, u64)> = colors.iter().map(|(l, &c)| (l, c)).collect();
    ordered.sort_by_key(|&(_, c)| c);
    ordered
        .into_iter()
        .enumerate()
        .map(|(i, (l, _))| (l.clone(), format!("c{i}")))
        .collect()
}

/// Relabel every blank node to its canonical `_:cN` label.
pub fn canonicalize(graph: &Graph) -> Graph {
    let mapping = canonical_mapping(graph);
    let map_subject = |s: &Subject| match s {
        Subject::Blank(b) => {
            Subject::Blank(BlankNode::new(&mapping[b.label()]).expect("canonical labels are valid"))
        }
        other => other.clone(),
    };
    let map_term = |t: &Term| match t {
        Term::Blank(b) => {
            Term::Blank(BlankNode::new(&mapping[b.label()]).expect("canonical labels are valid"))
        }
        other => other.clone(),
    };
    graph
        .iter()
        .map(|t| Triple {
            subject: map_subject(&t.subject),
            predicate: t.predicate.clone(),
            object: map_term(&t.object),
        })
        .collect()
}

/// Whether two graphs are isomorphic (equal up to blank-node renaming).
pub fn isomorphic(a: &Graph, b: &Graph) -> bool {
    if a.len() != b.len() {
        return false;
    }
    canonicalize(a) == canonicalize(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Iri, Literal};

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    fn blank(l: &str) -> BlankNode {
        BlankNode::new(l).unwrap()
    }

    /// A qualified-association-shaped graph with the given helper label.
    fn qualified(label: &str, agent: &str) -> Graph {
        let mut g = Graph::new();
        g.insert(Triple::new(
            iri("http://e/act"),
            iri("http://e/qa"),
            blank(label),
        ));
        g.insert(Triple::new(blank(label), iri("http://e/agent"), iri(agent)));
        g
    }

    #[test]
    fn relabeled_graphs_are_isomorphic() {
        let a = qualified("q0", "http://e/alice");
        let b = qualified("someOtherName", "http://e/alice");
        assert_ne!(a, b); // label-sensitive equality differs…
        assert!(isomorphic(&a, &b)); // …isomorphism does not.
        assert_eq!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn different_structure_is_not_isomorphic() {
        let a = qualified("q0", "http://e/alice");
        let b = qualified("q0", "http://e/bob");
        assert!(!isomorphic(&a, &b));
        let mut c = qualified("q0", "http://e/alice");
        c.insert(Triple::new(
            iri("http://e/x"),
            iri("http://e/p"),
            Literal::simple("v"),
        ));
        assert!(!isomorphic(&a, &c));
    }

    #[test]
    fn multiple_blanks_distinguished_by_neighbourhood() {
        let mut a = qualified("q0", "http://e/alice");
        a.extend_from_graph(&qualified("q1", "http://e/bob"));
        // Same graph with swapped labels.
        let mut b = qualified("q1", "http://e/alice");
        b.extend_from_graph(&qualified("q0", "http://e/bob"));
        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn symmetric_blanks_still_canonicalize_deterministically() {
        // Two fully symmetric (automorphic) blank nodes.
        let mut a = Graph::new();
        a.insert(Triple::new(
            blank("x"),
            iri("http://e/p"),
            iri("http://e/o"),
        ));
        a.insert(Triple::new(
            blank("y"),
            iri("http://e/p"),
            iri("http://e/o"),
        ));
        let mut b = Graph::new();
        b.insert(Triple::new(
            blank("p"),
            iri("http://e/p"),
            iri("http://e/o"),
        ));
        b.insert(Triple::new(
            blank("q"),
            iri("http://e/p"),
            iri("http://e/o"),
        ));
        assert!(isomorphic(&a, &b));
        assert_eq!(canonicalize(&a).len(), 2);
    }

    #[test]
    fn blank_chains_canonicalize() {
        // b0 → b1 → b2 chain vs a relabeled copy.
        let chain = |l0: &str, l1: &str, l2: &str| {
            let mut g = Graph::new();
            g.insert(Triple::new(blank(l0), iri("http://e/next"), blank(l1)));
            g.insert(Triple::new(blank(l1), iri("http://e/next"), blank(l2)));
            g.insert(Triple::new(
                blank(l2),
                iri("http://e/val"),
                Literal::integer(1),
            ));
            g
        };
        assert!(isomorphic(&chain("a", "b", "c"), &chain("z", "m", "k")));
        // A chain with the literal on the wrong node differs.
        let mut other = Graph::new();
        other.insert(Triple::new(blank("a"), iri("http://e/next"), blank("b")));
        other.insert(Triple::new(blank("b"), iri("http://e/next"), blank("c")));
        other.insert(Triple::new(
            blank("a"),
            iri("http://e/val"),
            Literal::integer(1),
        ));
        assert!(!isomorphic(&chain("a", "b", "c"), &other));
    }

    #[test]
    fn ground_graphs_compare_directly() {
        let mut a = Graph::new();
        a.insert(Triple::new(
            iri("http://e/s"),
            iri("http://e/p"),
            iri("http://e/o"),
        ));
        let b = a.clone();
        assert!(isomorphic(&a, &b));
        assert_eq!(canonicalize(&a), a);
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let g = qualified("whatever", "http://e/alice");
        let c1 = canonicalize(&g);
        let c2 = canonicalize(&c1);
        assert_eq!(c1, c2);
    }
}
