//! N-Quads reading and writing: the line-oriented dataset format, useful
//! for shipping the whole corpus (default graph + every bundle) as one
//! stream.

use crate::dataset::Dataset;
use crate::error::ParseError;
use crate::term::{BlankNode, Iri, Literal, Subject, Term};
use crate::triple::{Quad, Triple};

/// Serialize a dataset as N-Quads, one statement per line.
pub fn write_nquads(dataset: &Dataset) -> String {
    let mut out = String::new();
    for quad in dataset.quads() {
        out.push_str(&quad.to_string());
        out.push('\n');
    }
    out
}

struct LineParser<'a> {
    chars: Vec<char>,
    pos: usize,
    line_no: usize,
    line: &'a str,
}

impl<'a> LineParser<'a> {
    fn new(line: &'a str, line_no: usize) -> Self {
        LineParser {
            chars: line.chars().collect(),
            pos: 0,
            line_no,
            line,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(
            self.line_no,
            self.pos + 1,
            format!("{} in {:?}", message.into(), self.line),
        )
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn parse_iriref(&mut self) -> Result<Iri, ParseError> {
        let opening = self.bump();
        debug_assert_eq!(opening, Some('<'));
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated IRI")),
                Some('>') => break,
                Some('\\') => match self.bump() {
                    Some('u') => s.push(self.hex_escape(4)?),
                    Some('U') => s.push(self.hex_escape(8)?),
                    other => return Err(self.err(format!("bad IRI escape {other:?}"))),
                },
                Some(c) => s.push(c),
            }
        }
        Iri::new(&s).map_err(|_| self.err(format!("invalid IRI <{s}>")))
    }

    fn hex_escape(&mut self, n: usize) -> Result<char, ParseError> {
        let mut v = 0u32;
        for _ in 0..n {
            let c = self.bump().ok_or_else(|| self.err("truncated escape"))?;
            v = v * 16 + c.to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
        }
        char::from_u32(v).ok_or_else(|| self.err("invalid code point"))
    }

    fn parse_blank(&mut self) -> Result<BlankNode, ParseError> {
        let opening = self.bump();
        debug_assert_eq!(opening, Some('_'));
        if self.bump() != Some(':') {
            return Err(self.err("expected `:` after `_`"));
        }
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
        {
            self.pos += 1;
        }
        // A trailing dot is the statement terminator.
        let mut end = self.pos;
        while end > start && self.chars[end - 1] == '.' {
            end -= 1;
        }
        self.pos = end;
        let label: String = self.chars[start..end].iter().collect();
        BlankNode::new(&label).map_err(|_| self.err(format!("invalid blank label {label:?}")))
    }

    fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        let opening = self.bump();
        debug_assert_eq!(opening, Some('"'));
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated literal")),
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('t') => s.push('\t'),
                    Some('b') => s.push('\u{08}'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('f') => s.push('\u{0C}'),
                    Some('"') => s.push('"'),
                    Some('\'') => s.push('\''),
                    Some('\\') => s.push('\\'),
                    Some('u') => s.push(self.hex_escape(4)?),
                    Some('U') => s.push(self.hex_escape(8)?),
                    other => return Err(self.err(format!("bad string escape {other:?}"))),
                },
                Some(c) => s.push(c),
            }
        }
        match self.peek() {
            Some('@') => {
                self.pos += 1;
                let start = self.pos;
                while self
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == '-')
                {
                    self.pos += 1;
                }
                let tag: String = self.chars[start..self.pos].iter().collect();
                Literal::lang(&s, &tag).map_err(|_| self.err(format!("bad language tag {tag:?}")))
            }
            Some('^') => {
                self.pos += 1;
                if self.bump() != Some('^') {
                    return Err(self.err("expected `^^`"));
                }
                if self.peek() != Some('<') {
                    return Err(self.err("expected datatype IRI"));
                }
                let dt = self.parse_iriref()?;
                Ok(Literal::typed(&s, dt))
            }
            _ => Ok(Literal::simple(&s)),
        }
    }

    fn parse_subject(&mut self) -> Result<Subject, ParseError> {
        match self.peek() {
            Some('<') => Ok(Subject::Iri(self.parse_iriref()?)),
            Some('_') => Ok(Subject::Blank(self.parse_blank()?)),
            other => Err(self.err(format!("expected subject, found {other:?}"))),
        }
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.parse_iriref()?)),
            Some('_') => Ok(Term::Blank(self.parse_blank()?)),
            Some('"') => Ok(Term::Literal(self.parse_literal()?)),
            other => Err(self.err(format!("expected term, found {other:?}"))),
        }
    }

    fn parse_quad(&mut self) -> Result<Quad, ParseError> {
        self.skip_ws();
        let subject = self.parse_subject()?;
        self.skip_ws();
        if self.peek() != Some('<') {
            return Err(self.err("expected predicate IRI"));
        }
        let predicate = self.parse_iriref()?;
        self.skip_ws();
        let object = self.parse_term()?;
        self.skip_ws();
        let graph = match self.peek() {
            Some('.') => None,
            Some('<') => Some(Subject::Iri(self.parse_iriref()?)),
            Some('_') => Some(Subject::Blank(self.parse_blank()?)),
            other => return Err(self.err(format!("expected graph label or `.`, found {other:?}"))),
        };
        self.skip_ws();
        if self.bump() != Some('.') {
            return Err(self.err("expected terminating `.`"));
        }
        self.skip_ws();
        if let Some(c) = self.peek() {
            if c != '#' {
                return Err(self.err("trailing content after `.`"));
            }
        }
        Ok(Quad {
            triple: Triple {
                subject,
                predicate,
                object,
            },
            graph,
        })
    }
}

/// Parse an N-Quads document into a dataset.
pub fn parse_nquads(input: &str) -> Result<Dataset, ParseError> {
    let mut ds = Dataset::new();
    for (i, line) in input.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let quad = LineParser::new(trimmed, i + 1).parse_quad()?;
        ds.insert(quad);
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    #[test]
    fn roundtrip_mixed_dataset() {
        let mut ds = Dataset::new();
        ds.insert(Quad::in_default(Triple::new(
            iri("http://e/s"),
            iri("http://e/p"),
            Literal::lang("héllo\n", "en-GB").unwrap(),
        )));
        ds.insert(Quad::in_graph(
            Triple::new(
                BlankNode::new("b0").unwrap(),
                iri("http://e/p"),
                Literal::typed("5", iri(crate::xsd::INTEGER)),
            ),
            iri("http://e/g"),
        ));
        let nq = write_nquads(&ds);
        let back = parse_nquads(&nq).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn parses_hand_written_lines() {
        let doc = r#"
# a comment
<http://e/s> <http://e/p> "v" .
<http://e/s> <http://e/p> <http://e/o> <http://e/g> .
_:b <http://e/p> "x"^^<http://www.w3.org/2001/XMLSchema#integer> _:g .
"#;
        let ds = parse_nquads(doc).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.default_graph().len(), 1);
        assert_eq!(ds.named_graphs().count(), 2);
    }

    #[test]
    fn error_positions_are_line_accurate() {
        let doc = "<http://e/s> <http://e/p> \"v\" .\nnot a quad\n";
        let err = parse_nquads(doc).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse_nquads("<http://e/s> <http://e/p> .").is_err());
        assert!(parse_nquads("<http://e/s> <http://e/p> \"v\"").is_err());
        assert!(parse_nquads("<http://e/s> <http://e/p> \"v\" . junk").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let doc = r#"<http://e/s> <http://e/p> "é\U0001F600" ."#;
        let ds = parse_nquads(doc).unwrap();
        let t = ds.default_graph().iter().next().unwrap();
        assert_eq!(t.object.as_literal().unwrap().lexical(), "é😀");
    }

    #[test]
    fn empty_document() {
        assert!(parse_nquads("").unwrap().is_empty());
        assert_eq!(write_nquads(&Dataset::new()), "");
    }
}
