//! Datasets: a default graph plus zero or more named graphs.
//!
//! Wings serializes each workflow-run account as a `prov:Bundle`, i.e. a
//! named graph in a TriG document, so the corpus store and query engine
//! operate over datasets rather than single graphs.

use crate::graph::Graph;
use crate::term::{Iri, Subject, Term};
use crate::triple::{Quad, Triple};
use std::collections::BTreeMap;

/// The name of a graph within a dataset.
pub type GraphName = Subject;

/// A default graph plus named graphs.
#[derive(Default, Clone, Debug, PartialEq, Eq)]
pub struct Dataset {
    default: Graph,
    named: BTreeMap<GraphName, Graph>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// The default graph.
    pub fn default_graph(&self) -> &Graph {
        &self.default
    }

    /// Mutable access to the default graph.
    pub fn default_graph_mut(&mut self) -> &mut Graph {
        &mut self.default
    }

    /// The named graph with the given name, if present.
    pub fn named_graph(&self, name: &GraphName) -> Option<&Graph> {
        self.named.get(name)
    }

    /// Mutable access to the named graph, creating it if absent.
    pub fn named_graph_mut(&mut self, name: GraphName) -> &mut Graph {
        self.named.entry(name).or_default()
    }

    /// Iterate over `(name, graph)` pairs in name order.
    pub fn named_graphs(&self) -> impl Iterator<Item = (&GraphName, &Graph)> {
        self.named.iter()
    }

    /// Names of all named graphs.
    pub fn graph_names(&self) -> impl Iterator<Item = &GraphName> {
        self.named.keys()
    }

    /// Total number of quads across all graphs.
    pub fn len(&self) -> usize {
        self.default.len() + self.named.values().map(Graph::len).sum::<usize>()
    }

    /// Whether no graph holds any triple.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a quad into the appropriate graph.
    pub fn insert(&mut self, quad: Quad) -> bool {
        match quad.graph {
            None => self.default.insert(quad.triple),
            Some(name) => self.named_graph_mut(name).insert(quad.triple),
        }
    }

    /// Insert a whole graph as a named graph (merging if it exists).
    pub fn insert_graph(&mut self, name: GraphName, graph: &Graph) {
        self.named_graph_mut(name).extend_from_graph(graph);
    }

    /// Merge another dataset into this one.
    pub fn merge(&mut self, other: &Dataset) {
        self.default.extend_from_graph(&other.default);
        for (name, g) in other.named_graphs() {
            self.insert_graph(name.clone(), g);
        }
    }

    /// Iterate over every quad (default graph first, then named graphs).
    pub fn quads(&self) -> impl Iterator<Item = Quad> + '_ {
        let default = self.default.iter().map(Quad::in_default);
        let named = self
            .named
            .iter()
            .flat_map(|(name, g)| g.iter().map(move |t| Quad::in_graph(t, name.clone())));
        default.chain(named)
    }

    /// The union of the default graph and every named graph, as one graph.
    ///
    /// Exemplar queries in the paper span both Taverna traces (plain
    /// graphs) and Wings traces (bundles); they run over this view.
    pub fn union_graph(&self) -> Graph {
        let mut g = self.default.clone();
        for other in self.named.values() {
            g.extend_from_graph(other);
        }
        g
    }

    /// Match a triple pattern across the default and all named graphs.
    pub fn triples_matching<'a>(
        &'a self,
        s: Option<&'a Subject>,
        p: Option<&'a Iri>,
        o: Option<&'a Term>,
    ) -> impl Iterator<Item = Triple> + 'a {
        self.default.triples_matching(s, p, o).chain(
            self.named
                .values()
                .flat_map(move |g| g.triples_matching(s, p, o)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Iri;

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    fn t(s: &str, o: &str) -> Triple {
        Triple::new(iri(s), iri("http://e/p"), iri(o))
    }

    #[test]
    fn default_and_named_are_disjoint() {
        let mut d = Dataset::new();
        d.insert(Quad::in_default(t("http://e/a", "http://e/b")));
        d.insert(Quad::in_graph(
            t("http://e/a", "http://e/b"),
            iri("http://e/g"),
        ));
        assert_eq!(d.len(), 2);
        assert_eq!(d.default_graph().len(), 1);
        assert_eq!(d.named_graph(&iri("http://e/g").into()).unwrap().len(), 1);
        assert!(d.named_graph(&iri("http://e/other").into()).is_none());
    }

    #[test]
    fn union_graph_deduplicates() {
        let mut d = Dataset::new();
        d.insert(Quad::in_default(t("http://e/a", "http://e/b")));
        d.insert(Quad::in_graph(
            t("http://e/a", "http://e/b"),
            iri("http://e/g"),
        ));
        d.insert(Quad::in_graph(
            t("http://e/c", "http://e/d"),
            iri("http://e/g"),
        ));
        let u = d.union_graph();
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn quads_iteration_covers_everything() {
        let mut d = Dataset::new();
        d.insert(Quad::in_default(t("http://e/a", "http://e/b")));
        d.insert(Quad::in_graph(
            t("http://e/c", "http://e/d"),
            iri("http://e/g1"),
        ));
        d.insert(Quad::in_graph(
            t("http://e/e", "http://e/f"),
            iri("http://e/g2"),
        ));
        let quads: Vec<_> = d.quads().collect();
        assert_eq!(quads.len(), 3);
        assert_eq!(quads.iter().filter(|q| q.graph.is_none()).count(), 1);
        assert_eq!(d.graph_names().count(), 2);
    }

    #[test]
    fn merge_combines_datasets() {
        let mut a = Dataset::new();
        a.insert(Quad::in_default(t("http://e/1", "http://e/2")));
        let mut b = Dataset::new();
        b.insert(Quad::in_graph(
            t("http://e/3", "http://e/4"),
            iri("http://e/g"),
        ));
        a.merge(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn pattern_matching_spans_graphs() {
        let mut d = Dataset::new();
        d.insert(Quad::in_default(t("http://e/a", "http://e/x")));
        d.insert(Quad::in_graph(
            t("http://e/a", "http://e/y"),
            iri("http://e/g"),
        ));
        let s: Subject = iri("http://e/a").into();
        assert_eq!(d.triples_matching(Some(&s), None, None).count(), 2);
    }
}
