//! TriG reading and writing (Turtle plus named graphs).
//!
//! Wings provenance in the corpus wraps each run account in a
//! `prov:Bundle`, serialized as a TriG named graph.

use crate::dataset::Dataset;
use crate::error::ParseError;
use crate::namespace::PrefixMap;
use crate::span::SpanTable;
use crate::turtle::{render_subject, write_graph_body, Parser};

/// Parse a TriG document into a dataset (plus declared prefixes).
pub fn parse_trig(input: &str) -> Result<(Dataset, PrefixMap), ParseError> {
    Parser::new(input, true)?.parse()
}

/// Parse a TriG document, also recording a source span for every triple
/// (spans carry the named graph each triple was asserted in).
pub fn parse_trig_spanned(input: &str) -> Result<(Dataset, PrefixMap, SpanTable), ParseError> {
    Parser::new(input, true)?.record_spans().parse_spanned()
}

/// Serialize a dataset as TriG: the default graph first as plain Turtle,
/// then each named graph as a `name { ... }` block.
pub fn write_trig(dataset: &Dataset, prefixes: &PrefixMap) -> String {
    let mut out = String::new();
    for (prefix, ns) in prefixes.iter() {
        out.push_str(&format!("@prefix {prefix}: <{ns}> .\n"));
    }
    if !prefixes.is_empty() {
        out.push('\n');
    }
    write_graph_body(dataset.default_graph(), prefixes, "", &mut out);
    for (name, graph) in dataset.named_graphs() {
        if !dataset.default_graph().is_empty() || !out.ends_with("\n\n") {
            out.push('\n');
        }
        out.push_str(&render_subject(name, prefixes));
        out.push_str(" {\n");
        write_graph_body(graph, prefixes, "    ", &mut out);
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Iri, Subject};
    use crate::triple::{Quad, Triple};

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    #[test]
    fn roundtrip_with_named_graphs() {
        let mut ds = Dataset::new();
        ds.insert(Quad::in_default(Triple::new(
            iri("http://e/s"),
            iri("http://e/p"),
            iri("http://e/o"),
        )));
        ds.insert(Quad::in_graph(
            Triple::new(iri("http://e/a"), iri("http://e/p"), iri("http://e/b")),
            iri("http://e/bundle1"),
        ));
        ds.insert(Quad::in_graph(
            Triple::new(iri("http://e/c"), iri("http://e/p"), iri("http://e/d")),
            iri("http://e/bundle2"),
        ));
        let mut pm = PrefixMap::new();
        pm.insert("e", "http://e/");
        let trig = write_trig(&ds, &pm);
        let (ds2, _) = parse_trig(&trig).unwrap();
        assert_eq!(ds, ds2);
    }

    #[test]
    fn parse_graph_keyword_form() {
        let (ds, _) = parse_trig("@prefix e: <http://e/> .\nGRAPH e:g { e:s e:p e:o . }").unwrap();
        let name: Subject = iri("http://e/g").into();
        assert_eq!(ds.named_graph(&name).unwrap().len(), 1);
        assert!(ds.default_graph().is_empty());
    }

    #[test]
    fn empty_dataset_writes_header_only() {
        let pm = PrefixMap::new();
        assert_eq!(write_trig(&Dataset::new(), &pm), "");
    }

    #[test]
    fn plain_turtle_is_valid_trig() {
        let (ds, _) = parse_trig("<http://e/s> <http://e/p> <http://e/o> .").unwrap();
        assert_eq!(ds.default_graph().len(), 1);
        assert_eq!(ds.named_graphs().count(), 0);
    }
}
