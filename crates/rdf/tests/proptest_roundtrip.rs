//! Property-based tests for the RDF substrate: serializer/parser
//! round-trips and graph index consistency under random data.

use proptest::prelude::*;
use provbench_rdf::{
    parse_nquads, parse_ntriples, parse_trig, parse_turtle, write_nquads, write_ntriples,
    write_trig, write_turtle, BlankNode, Dataset, DateTime, Graph, Iri, Literal, PrefixMap, Quad,
    Subject, Term, Triple,
};

fn arb_iri() -> impl Strategy<Value = Iri> {
    // A mix of vocabulary-like and resource-like IRIs.
    prop_oneof![
        "[a-z]{1,8}".prop_map(|l| Iri::new(format!("http://www.w3.org/ns/prov#{l}")).unwrap()),
        "[a-zA-Z0-9_]{1,12}"
            .prop_map(|l| Iri::new(format!("http://example.org/resource/{l}")).unwrap()),
        "[a-z]{1,6}/[a-z0-9]{1,6}".prop_map(|l| Iri::new(format!("urn:test:{l}")).unwrap()),
    ]
}

fn arb_blank() -> impl Strategy<Value = BlankNode> {
    "[a-zA-Z0-9][a-zA-Z0-9_-]{0,10}".prop_map(|l| BlankNode::new(l).unwrap())
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        // Simple strings including every escape-worthy character.
        "[ -~\\n\\t\"\\\\àé中]{0,24}".prop_map(Literal::simple),
        ("[ -~]{0,12}", "[a-z]{2,3}").prop_map(|(s, t)| Literal::lang(s, t).unwrap()),
        any::<i64>().prop_map(Literal::integer),
        any::<bool>().prop_map(Literal::boolean),
        (-4_000_000_000_000i64..4_000_000_000_000i64)
            .prop_map(|ms| Literal::date_time(&DateTime::from_unix_millis(ms))),
    ]
}

/// Literals chosen to stress the writer's escaping and bare-token rules:
/// control characters, quote/backslash runs, and typed lexical forms that
/// a careless writer would emit bare and the parser would re-lex as a
/// different datatype ("1." as integer-plus-dot, "2.5e3" as a double).
fn arb_adversarial_literal() -> impl Strategy<Value = Literal> {
    let xsd = |local: &str| Iri::new(format!("http://www.w3.org/2001/XMLSchema#{local}")).unwrap();
    let decimal = xsd("decimal");
    let double = xsd("double");
    let custom = Iri::new("http://example.org/dt").unwrap();
    prop_oneof![
        // Control characters and escape-worthy runs in simple strings.
        "[\\x00-\\x1f\"\\\\]{1,8}".prop_map(Literal::simple),
        "[\"\\\\]{0,4}[ -~]{0,8}[\\x00-\\x08\\x0b\\x0c\\x0e-\\x1f]{0,4}".prop_map(Literal::simple),
        // Decimal lexicals with trailing/leading dots and exponents that
        // must not survive as bare tokens.
        prop_oneof![
            Just("1.".to_string()),
            Just(".5".to_string()),
            Just("-3.".to_string()),
            "[0-9]{1,6}\\.".prop_map(|s| s),
            "\\.[0-9]{1,6}".prop_map(|s| s),
        ]
        .prop_map(move |lex| Literal::typed(lex, decimal.clone())),
        prop_oneof![
            Just("2.5e3".to_string()),
            Just("1E10".to_string()),
            "[0-9]{1,4}\\.[0-9]{1,4}[eE]-?[0-9]{1,2}".prop_map(|s| s),
        ]
        .prop_map(move |lex| Literal::typed(lex, double.clone())),
        // Custom-typed literals whose lexical forms carry escapes.
        "[ -~\\n\\t\"\\\\]{0,16}".prop_map(move |lex| Literal::typed(lex, custom.clone())),
    ]
}

fn arb_subject() -> impl Strategy<Value = Subject> {
    prop_oneof![
        arb_iri().prop_map(Subject::Iri),
        arb_blank().prop_map(Subject::Blank),
    ]
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        arb_iri().prop_map(Term::Iri),
        arb_blank().prop_map(Term::Blank),
        arb_literal().prop_map(Term::Literal),
    ]
}

fn arb_triple() -> impl Strategy<Value = Triple> {
    (arb_subject(), arb_iri(), arb_term()).prop_map(|(s, p, o)| Triple::new(s, p, o))
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec(arb_triple(), 0..40).prop_map(Graph::from_iter)
}

fn arb_adversarial_triple() -> impl Strategy<Value = Triple> {
    (
        arb_subject(),
        arb_iri(),
        arb_adversarial_literal().prop_map(Term::Literal),
    )
        .prop_map(|(s, p, o)| Triple::new(s, p, o))
}

fn arb_adversarial_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec(prop_oneof![arb_triple(), arb_adversarial_triple()], 0..30)
        .prop_map(Graph::from_iter)
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (
        prop::collection::vec(arb_triple(), 0..15),
        prop::collection::vec(
            (arb_iri(), prop::collection::vec(arb_triple(), 1..10)),
            0..4,
        ),
    )
        .prop_map(|(default, named)| {
            let mut ds = Dataset::new();
            for t in default {
                ds.insert(Quad::in_default(t));
            }
            for (name, triples) in named {
                for t in triples {
                    ds.insert(Quad::in_graph(t, name.clone()));
                }
            }
            ds
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ntriples_roundtrip(g in arb_graph()) {
        let nt = write_ntriples(&g);
        let g2 = parse_ntriples(&nt).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn turtle_roundtrip(g in arb_graph()) {
        let pm = PrefixMap::common();
        let ttl = write_turtle(&g, &pm);
        let (g2, _) = parse_turtle(&ttl).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn trig_roundtrip(ds in arb_dataset()) {
        let pm = PrefixMap::common();
        let doc = write_trig(&ds, &pm);
        let (ds2, _) = parse_trig(&doc).unwrap();
        prop_assert_eq!(ds, ds2);
    }

    #[test]
    fn adversarial_turtle_roundtrip(g in arb_adversarial_graph()) {
        let pm = PrefixMap::common();
        let ttl = write_turtle(&g, &pm);
        let (g2, _) = parse_turtle(&ttl).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn adversarial_ntriples_roundtrip(g in arb_adversarial_graph()) {
        let nt = write_ntriples(&g);
        let g2 = parse_ntriples(&nt).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn turtle_write_is_byte_stable(g in arb_adversarial_graph()) {
        // One parse/write cycle must be a fixed point: re-serializing the
        // parsed graph reproduces the document byte for byte.
        let pm = PrefixMap::common();
        let first = write_turtle(&g, &pm);
        let (reparsed, _) = parse_turtle(&first).unwrap();
        let second = write_turtle(&reparsed, &pm);
        prop_assert_eq!(first, second);
    }

    #[test]
    fn interned_id_roundtrip(g in arb_adversarial_graph()) {
        // Exporting the interner table plus id-triples and rebuilding via
        // from_interned (the snapshot load path) is lossless.
        let terms = g.interned_terms().to_vec();
        let ids: Vec<(u32, u32, u32)> = g
            .ids_matching(None, None, None)
            .map(|(s, p, o)| (s.to_u32(), p.to_u32(), o.to_u32()))
            .collect();
        let rebuilt = Graph::from_interned(terms, ids).unwrap();
        prop_assert_eq!(&g, &rebuilt);
        // And the id space survives verbatim, not just the triple set.
        for id in 0..g.term_count() as u32 {
            let id = provbench_rdf::TermId::from_u32(id);
            prop_assert_eq!(g.id_to_term(id), rebuilt.id_to_term(id));
        }
    }

    #[test]
    fn codec_slab_roundtrip(g in arb_adversarial_graph()) {
        use provbench_rdf::codec;
        let mut buf = Vec::new();
        codec::write_term_table(&mut buf, g.interned_terms());
        let triples: Vec<(u32, u32, u32)> = g
            .ids_matching(None, None, None)
            .map(|(s, p, o)| (s.to_u32(), p.to_u32(), o.to_u32()))
            .collect();
        let mut sorted = triples.clone();
        sorted.sort_unstable();
        codec::write_slab(&mut buf, &sorted);
        let mut r = codec::Reader::new(&buf);
        let terms = codec::read_term_table(&mut r).unwrap();
        let slab = codec::read_slab(&mut r).unwrap();
        prop_assert!(r.is_empty());
        prop_assert_eq!(terms.as_slice(), g.interned_terms());
        prop_assert_eq!(slab, sorted);
    }

    #[test]
    fn blank_relabeling_preserves_isomorphism(g in arb_graph(), salt in any::<u64>()) {
        use provbench_rdf::isomorphic;
        // Rename every blank label injectively.
        let rename = |b: &BlankNode| {
            BlankNode::new(format!("r{salt:x}x{}", b.label())).unwrap()
        };
        let relabeled: Graph = g
            .iter()
            .map(|t| {
                let subject = match &t.subject {
                    Subject::Blank(b) => Subject::Blank(rename(b)),
                    s => s.clone(),
                };
                let object = match &t.object {
                    Term::Blank(b) => Term::Blank(rename(b)),
                    o => o.clone(),
                };
                Triple { subject, predicate: t.predicate.clone(), object }
            })
            .collect();
        prop_assert!(isomorphic(&g, &relabeled));
        // And isomorphism is blind to the direction of comparison.
        prop_assert!(isomorphic(&relabeled, &g));
    }

    #[test]
    fn nquads_roundtrip(ds in arb_dataset()) {
        let doc = write_nquads(&ds);
        let ds2 = parse_nquads(&doc).unwrap();
        prop_assert_eq!(ds, ds2);
    }

    #[test]
    fn parsers_never_panic_on_arbitrary_input(input in "\\PC{0,200}") {
        // Any result is fine; panics and hangs are not.
        let _ = parse_turtle(&input);
        let _ = parse_trig(&input);
        let _ = parse_ntriples(&input);
        let _ = parse_nquads(&input);
    }

    #[test]
    fn parsers_never_panic_on_rdfish_garbage(
        input in "[<>\"'@a-z0-9:/#.^{}\\\\ \\n_-]{0,160}",
    ) {
        let _ = parse_turtle(&input);
        let _ = parse_trig(&input);
        let _ = parse_nquads(&input);
    }

    #[test]
    fn index_consistency(triples in prop::collection::vec(arb_triple(), 0..60)) {
        // Whatever the insertion order and duplicates, every pattern shape
        // must agree with a naive scan.
        let g: Graph = triples.iter().cloned().collect();
        for t in &triples {
            prop_assert!(g.contains(t));
            // Fully-bound, and each singly-bound pattern, must find t.
            prop_assert!(g
                .triples_matching(Some(&t.subject), Some(&t.predicate), Some(&t.object))
                .any(|x| &x == t));
            prop_assert!(g.triples_matching(Some(&t.subject), None, None).any(|x| &x == t));
            prop_assert!(g.triples_matching(None, Some(&t.predicate), None).any(|x| &x == t));
            prop_assert!(g.triples_matching(None, None, Some(&t.object)).any(|x| &x == t));
        }
        // The wildcard scan yields exactly the deduplicated set.
        let mut uniq = triples.clone();
        uniq.sort();
        uniq.dedup();
        prop_assert_eq!(g.len(), uniq.len());
    }

    #[test]
    fn removal_restores_absence(triples in prop::collection::vec(arb_triple(), 1..30)) {
        let mut g: Graph = triples.iter().cloned().collect();
        for t in &triples {
            g.remove(t);
            prop_assert!(!g.contains(t));
        }
        prop_assert!(g.is_empty());
    }

    #[test]
    fn datetime_roundtrip(ms in -10_000_000_000_000i64..10_000_000_000_000i64) {
        let dt = DateTime::from_unix_millis(ms);
        let parsed = DateTime::parse(&dt.to_string()).unwrap();
        prop_assert_eq!(parsed, dt);
    }

    #[test]
    fn datetime_ordering_matches_millis(a in any::<i32>(), b in any::<i32>()) {
        let (a, b) = (i64::from(a) * 1000, i64::from(b) * 1000);
        let (da, db) = (DateTime::from_unix_millis(a), DateTime::from_unix_millis(b));
        prop_assert_eq!(a.cmp(&b), da.cmp(&db));
    }

    #[test]
    fn union_graph_size_bounds(ds in arb_dataset()) {
        let u = ds.union_graph();
        prop_assert!(u.len() <= ds.len());
        for q in ds.quads() {
            prop_assert!(u.contains(&q.triple));
        }
    }
}
