//! Parse hand-written documents shaped like real Wf4Ever corpus files —
//! the Turtle idioms the published traces actually use (directive
//! mixtures, long strings, collections, relative IRIs under @base,
//! comments everywhere, numeric shorthand).

use provbench_rdf::{parse_trig, parse_turtle, write_turtle, Iri, PrefixMap, Subject, Term};

const TAVERNA_LIKE: &str = r#"
# Exported by taverna-prov (simulated sample)
@base <http://ns.taverna.org.uk/2011/run/abc123/> .
@prefix prov: <http://www.w3.org/ns/prov#> .
@prefix wfprov: <http://purl.org/wf4ever/wfprov#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
PREFIX dcterms: <http://purl.org/dc/terms/>

<workflow-run>
    a prov:Activity, wfprov:WorkflowRun ;
    rdfs:label """Run of
the BLAST pipeline""" ;   # long string with embedded newline
    prov:startedAtTime "2013-01-15T10:30:00.250Z"^^xsd:dateTime ;
    prov:endedAtTime   "2013-01-15T10:42:17Z"^^xsd:dateTime ;
    prov:used <data/0>, <data/1> ;
    prov:qualifiedAssociation [
        a prov:Association ;
        prov:agent <engine> ;
        prov:hadPlan <http://www.myexperiment.org/workflows/blast>
    ] ;
    prov:wasAssociatedWith <engine> .

<data/0> a prov:Entity, wfprov:Artifact ;
    prov:value "ACGTTTGA" ;
    dcterms:description "input sequence"@en .

<data/1> a prov:Entity ; prov:value 42 .

<engine> a prov:SoftwareAgent ;
    rdfs:label "Taverna 2.4" ;
    rdfs:seeAlso ( <data/0> <data/1> ) . # a collection, for good measure
"#;

const WINGS_LIKE: &str = r#"
@prefix prov: <http://www.w3.org/ns/prov#> .
@prefix opmw: <http://www.opmw.org/ontology/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

<http://www.opmw.org/export/resource/Account/run7>
    a prov:Bundle, prov:Entity, opmw:WorkflowExecutionAccount ;
    opmw:overallStartTime "2013-02-01T12:00:00Z"^^xsd:dateTime ;
    opmw:hasStatus "SUCCESS" .

<http://www.opmw.org/export/resource/Account/run7> {
    <http://www.opmw.org/export/resource/Execution/run7/process/align>
        a prov:Activity, opmw:WorkflowExecutionProcess ;
        prov:used <http://www.opmw.org/export/resource/Execution/run7/artifact/0> ;
        prov:wasInfluencedBy <http://www.opmw.org/export/resource/Execution/run7/artifact/0> .
    <http://www.opmw.org/export/resource/Execution/run7/artifact/0>
        a prov:Entity ;
        prov:atLocation <http://www.wings-workflows.org/data/run7/file_0.dat> ;
        prov:value "3.14"^^xsd:decimal .
}
"#;

#[test]
fn taverna_like_turtle_parses_fully() {
    let (g, pm) = parse_turtle(TAVERNA_LIKE).unwrap();
    assert_eq!(pm.get("wfprov"), Some("http://purl.org/wf4ever/wfprov#"));
    // @base resolved the relative IRIs.
    let run: Subject = Iri::new("http://ns.taverna.org.uk/2011/run/abc123/workflow-run")
        .unwrap()
        .into();
    // 2 types + label + 2 times + 2 used + qualifiedAssociation +
    // wasAssociatedWith = 9 triples on the run subject.
    assert_eq!(g.triples_matching(Some(&run), None, None).count(), 9);
    // The long string kept its newline.
    let label = g
        .object(
            &run,
            &Iri::new("http://www.w3.org/2000/01/rdf-schema#label").unwrap(),
        )
        .unwrap();
    assert!(label.as_literal().unwrap().lexical().contains('\n'));
    // The collection desugared into rdf:first/rest pairs ending in nil.
    let nil: Term = Iri::new("http://www.w3.org/1999/02/22-rdf-syntax-ns#nil")
        .unwrap()
        .into();
    assert_eq!(g.triples_matching(None, None, Some(&nil)).count(), 1);
    // Numeric shorthand became a typed integer.
    let d1: Subject = Iri::new("http://ns.taverna.org.uk/2011/run/abc123/data/1")
        .unwrap()
        .into();
    let value = g
        .object(&d1, &Iri::new("http://www.w3.org/ns/prov#value").unwrap())
        .unwrap();
    assert_eq!(value.as_literal().unwrap().as_integer(), Some(42));
    // And the whole thing round-trips through our writer.
    let ttl = write_turtle(&g, &PrefixMap::common());
    let (g2, _) = parse_turtle(&ttl).unwrap();
    assert_eq!(g, g2);
}

#[test]
fn wings_like_trig_parses_with_bundle_graph() {
    let (ds, _) = parse_trig(WINGS_LIKE).unwrap();
    let account: Subject = Iri::new("http://www.opmw.org/export/resource/Account/run7")
        .unwrap()
        .into();
    // Account metadata in the default graph, trace in the named graph.
    assert_eq!(
        ds.default_graph()
            .triples_matching(Some(&account), None, None)
            .count(),
        5
    );
    let bundle = ds.named_graph(&account).expect("bundle graph present");
    assert_eq!(bundle.len(), 7);
    // The decimal literal survives with its datatype.
    let artifact: Subject =
        Iri::new("http://www.opmw.org/export/resource/Execution/run7/artifact/0")
            .unwrap()
            .into();
    let v = bundle
        .object(
            &artifact,
            &Iri::new("http://www.w3.org/ns/prov#value").unwrap(),
        )
        .unwrap();
    assert_eq!(v.as_literal().unwrap().lexical(), "3.14");
}

#[test]
fn mixed_directive_styles_coexist() {
    let doc =
        "PREFIX a: <http://a/>\n@prefix b: <http://b/> .\nBASE <http://base/>\na:x b:y <rel> .";
    let (g, pm) = parse_turtle(doc).unwrap();
    assert_eq!(pm.len(), 2);
    let t = g.iter().next().unwrap();
    assert_eq!(t.object.as_iri().unwrap().as_str(), "http://base/rel");
}
