//! Ablation — binary corpus snapshots: cold directory parsing
//! (sequential and parallel) against a warm `corpus.snapshot`
//! memory-load, at the paper's full 198-run scale.

use criterion::{criterion_group, criterion_main, Criterion};
use provbench_bench::full_corpus;
use provbench_core::snapshot::SNAPSHOT_FILE;
use provbench_core::{store, CorpusStore};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let corpus = full_corpus();
    let dir = std::env::temp_dir().join(format!("provbench-snapshot-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    store::save(corpus, &dir).unwrap();
    let jobs = store::default_load_jobs();

    let mut group = c.benchmark_group("snapshot");
    group.sample_size(10);
    group.bench_function("cold_parse_sequential", |b| {
        b.iter(|| {
            let _ = std::fs::remove_file(dir.join(SNAPSHOT_FILE));
            black_box(CorpusStore::open_or_build_with_threads(&dir, 1).unwrap())
        })
    });
    group.bench_function("cold_parse_parallel", |b| {
        b.iter(|| {
            let _ = std::fs::remove_file(dir.join(SNAPSHOT_FILE));
            black_box(CorpusStore::open_or_build_with_threads(&dir, jobs).unwrap())
        })
    });
    // Leave a valid snapshot in place: every iteration below is warm.
    let built = CorpusStore::build(&dir, jobs).unwrap();
    group.bench_function("warm_snapshot_load", |b| {
        b.iter(|| {
            let s = CorpusStore::open_or_build(&dir).unwrap();
            assert!(s.provenance.warm);
            black_box(s)
        })
    });
    group.finish();

    println!(
        "\n--- snapshot: {} traces + {} descriptions, {} triples, {} B on disk ({} jobs) ---",
        built.corpus.traces.len(),
        built.corpus.descriptions.len(),
        built.union.len(),
        built.provenance.snapshot_bytes,
        jobs
    );
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
