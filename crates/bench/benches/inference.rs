//! Ablation — PROV-O inference cost by rule set and trace-graph size.
//! `schema_only` is what Table 3's starred entries need; `all` adds the
//! communication/derivation/attribution rules (the paper's §5 "ongoing
//! work" derivations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provbench_bench::bench_corpus;
use provbench_prov::inference::{apply_inference, InferenceRules};
use provbench_rdf::Graph;
use provbench_workflow::System;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus();
    // Merged trace graphs of increasing size.
    let sizes = [5usize, 20, 60];
    let graphs: Vec<(usize, Graph)> = sizes
        .iter()
        .map(|&k| {
            let mut g = Graph::new();
            for t in corpus.traces.iter().take(k) {
                g.extend_from_graph(&t.union_graph());
            }
            (g.len(), g)
        })
        .collect();

    let mut group = c.benchmark_group("inference");
    group.sample_size(10);
    for (triples, g) in &graphs {
        group.bench_with_input(BenchmarkId::new("schema_only", triples), g, |b, g| {
            b.iter(|| black_box(apply_inference(g, &InferenceRules::schema_only())))
        });
        group.bench_with_input(BenchmarkId::new("all_rules", triples), g, |b, g| {
            b.iter(|| black_box(apply_inference(g, &InferenceRules::all())))
        });
    }
    // Per-system cost at coverage-analysis scale.
    let taverna = corpus.system_graph(System::Taverna);
    group.bench_function("coverage_pass_taverna", |b| {
        b.iter(|| black_box(apply_inference(&taverna, &InferenceRules::schema_only())))
    });
    group.finish();

    for (triples, g) in &graphs {
        let inferred = apply_inference(g, &InferenceRules::all());
        println!(
            "inference closure: {triples} asserted → {} materialized (+{:.0}%)",
            inferred.len(),
            100.0 * (inferred.len() - g.len()) as f64 / g.len() as f64
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
