//! §4 — the six exemplar queries, benchmarked against the corpus graph.

use criterion::{criterion_group, criterion_main, Criterion};
use provbench_bench::bench_corpus;
use provbench_query::exemplar::{
    q1_runs, q2_template_runs, q3_template_run_io, q4_process_runs, q5_executor, q6_services,
};
use provbench_wings::account_iri;
use provbench_workflow::System;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus();
    let graph = corpus.combined_graph();
    let template = corpus.templates[0].1.name.clone();
    let tav_trace = corpus.traces_of(System::Taverna).next().unwrap();
    let tav_run = provbench_rdf::Iri::new_unchecked(format!(
        "{}workflow-run",
        provbench_taverna::run_base_iri(&tav_trace.run_id)
    ));
    let wings_trace = corpus.traces_of(System::Wings).next().unwrap();
    let account = account_iri(&wings_trace.run_id);

    let mut group = c.benchmark_group("queries");
    group.sample_size(10);
    group.bench_function("q1_all_runs", |b| b.iter(|| black_box(q1_runs(&graph))));
    group.bench_function("q2_template_runs", |b| {
        b.iter(|| black_box(q2_template_runs(&graph, &template)))
    });
    group.bench_function("q3_run_io", |b| {
        b.iter(|| black_box(q3_template_run_io(&graph, &template)))
    });
    group.bench_function("q4_process_runs", |b| {
        b.iter(|| black_box(q4_process_runs(&graph, &tav_run)))
    });
    group.bench_function("q5_executor", |b| {
        b.iter(|| black_box(q5_executor(&graph, &tav_run)))
    });
    group.bench_function("q6_services", |b| {
        b.iter(|| black_box(q6_services(&graph, &account)))
    });
    group.finish();

    println!(
        "\n--- §4 exemplar query answers (bench corpus, {} triples) ---",
        graph.len()
    );
    println!("Q1: {} runs", q1_runs(&graph).len());
    let t = q2_template_runs(&graph, &template);
    println!(
        "Q2: template {} → {} runs, {} failed",
        template,
        t.runs.len(),
        t.failed
    );
    println!(
        "Q3: {} run-I/O rows",
        q3_template_run_io(&graph, &template).len()
    );
    println!(
        "Q4: {} process runs for {}",
        q4_process_runs(&graph, &tav_run).len(),
        tav_trace.run_id
    );
    println!("Q5: executed by {:?}", q5_executor(&graph, &tav_run));
    println!(
        "Q6: {} services for {}",
        q6_services(&graph, &account).len(),
        wings_trace.run_id
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
