//! §4 — the six exemplar queries benchmarked against the corpus graph,
//! plus a join-ordering comparison (selectivity-ordered vs lexical) on
//! the full 198-run corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use provbench_bench::{bench_corpus, full_corpus};
use provbench_query::exemplar::{
    q1_runs, q2_template_runs, q3_template_run_io, q4_process_runs, q5_executor, q6_services,
};
use provbench_query::{parse_query, EvalOptions, QueryEngine};
use provbench_wings::account_iri;
use provbench_workflow::System;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// A multi-pattern join written worst-first: the unbound wildcard scan
/// leads, the selective type pattern trails. The planner must reverse it.
const JOIN_QUERY: &str = "
PREFIX prov: <http://www.w3.org/ns/prov#>
PREFIX wfprov: <http://purl.org/wf4ever/wfprov#>
SELECT ?run ?data ?o WHERE {
  ?data ?p ?o .
  ?run prov:used ?data .
  ?run a wfprov:WorkflowRun .
}";

/// The same adversarial join as an ASK: the first-row fast path should
/// answer without evaluating the join at all.
const ASK_JOIN_QUERY: &str = "
PREFIX prov: <http://www.w3.org/ns/prov#>
PREFIX wfprov: <http://purl.org/wf4ever/wfprov#>
ASK {
  ?data ?p ?o .
  ?run prov:used ?data .
  ?run a wfprov:WorkflowRun .
}";

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus();
    let graph = corpus.combined_graph();
    let template = corpus.templates[0].1.name.clone();
    let tav_trace = corpus.traces_of(System::Taverna).next().unwrap();
    let tav_run = provbench_rdf::Iri::new_unchecked(format!(
        "{}workflow-run",
        provbench_taverna::run_base_iri(&tav_trace.run_id)
    ));
    let wings_trace = corpus.traces_of(System::Wings).next().unwrap();
    let account = account_iri(&wings_trace.run_id);

    let mut group = c.benchmark_group("queries");
    group.sample_size(10);
    group.bench_function("q1_all_runs", |b| b.iter(|| black_box(q1_runs(&graph))));
    group.bench_function("q2_template_runs", |b| {
        b.iter(|| black_box(q2_template_runs(&graph, &template)))
    });
    group.bench_function("q3_run_io", |b| {
        b.iter(|| black_box(q3_template_run_io(&graph, &template)))
    });
    group.bench_function("q4_process_runs", |b| {
        b.iter(|| black_box(q4_process_runs(&graph, &tav_run)))
    });
    group.bench_function("q5_executor", |b| {
        b.iter(|| black_box(q5_executor(&graph, &tav_run)))
    });
    group.bench_function("q6_services", |b| {
        b.iter(|| black_box(q6_services(&graph, &account)))
    });
    group.finish();

    // Join ordering over the full paper-scale corpus (120 workflows /
    // 198 runs): the same query with the planner on vs forced lexical
    // evaluation order.
    let full_graph = full_corpus().combined_graph();
    let join = Arc::new(parse_query(JOIN_QUERY).expect("join query parses"));
    let ordered = QueryEngine::new(&full_graph).prepare_parsed(Arc::clone(&join));
    let lexical =
        QueryEngine::with_options(&full_graph, EvalOptions::lexical()).prepare_parsed(join);
    assert_eq!(
        ordered.select().unwrap().rows,
        lexical.select().unwrap().rows,
        "planner must not change the solution set"
    );

    let mut group = c.benchmark_group("join_ordering");
    group.sample_size(10);
    group.bench_function("selectivity_ordered", |b| {
        b.iter(|| black_box(ordered.select().unwrap()))
    });
    group.bench_function("lexical_order", |b| {
        b.iter(|| black_box(lexical.select().unwrap()))
    });
    group.finish();

    // One measured pass each for a headline speedup number.
    let t = Instant::now();
    let rows = ordered.select().unwrap().len();
    let ordered_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let _ = lexical.select().unwrap();
    let lexical_s = t.elapsed().as_secs_f64();
    println!(
        "\n--- join ordering (full corpus, {} triples, {rows} rows) ---",
        full_graph.len()
    );
    println!(
        "selectivity-ordered {:.1} ms · lexical {:.1} ms · speedup {:.1}x",
        ordered_s * 1e3,
        lexical_s * 1e3,
        lexical_s / ordered_s
    );

    // Serial vs parallel evaluation ablation on the same join: the
    // chunked path must return byte-identical rows, just faster.
    let join = Arc::new(parse_query(JOIN_QUERY).expect("join query parses"));
    let serial = QueryEngine::new(&full_graph).prepare_parsed(Arc::clone(&join));
    let parallel = QueryEngine::with_options(&full_graph, EvalOptions::default().with_jobs(4))
        .prepare_parsed(join);
    assert_eq!(
        serial.select().unwrap().rows,
        parallel.select().unwrap().rows,
        "parallel evaluation must not change the solution sequence"
    );

    let mut group = c.benchmark_group("parallel_eval");
    group.sample_size(10);
    group.bench_function("jobs_1", |b| b.iter(|| black_box(serial.select().unwrap())));
    group.bench_function("jobs_4", |b| {
        b.iter(|| black_box(parallel.select().unwrap()))
    });
    group.finish();

    let t = Instant::now();
    let _ = serial.select().unwrap();
    let serial_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let _ = parallel.select().unwrap();
    let parallel_s = t.elapsed().as_secs_f64();
    println!("\n--- parallel evaluation (full corpus, same join) ---");
    println!(
        "jobs=1 {:.1} ms · jobs=4 {:.1} ms · speedup {:.1}x",
        serial_s * 1e3,
        parallel_s * 1e3,
        serial_s / parallel_s
    );

    // LIMIT/ASK pushdown on the same adversarial join: the streaming
    // pipeline must stop scanning after the first row instead of
    // evaluating the full join and truncating afterwards.
    let limited = Arc::new(
        parse_query(&format!("{JOIN_QUERY}\nLIMIT 1")).expect("limited join query parses"),
    );
    let limited = QueryEngine::new(&full_graph).prepare_parsed(limited);
    let asked = Arc::new(parse_query(ASK_JOIN_QUERY).expect("ask join query parses"));
    let asked = QueryEngine::new(&full_graph).prepare_parsed(asked);
    assert_eq!(limited.select().unwrap().len(), 1);
    assert!(asked.ask().unwrap());

    let mut group = c.benchmark_group("limit_pushdown");
    group.sample_size(10);
    group.bench_function("full_join", |b| {
        b.iter(|| black_box(serial.select().unwrap()))
    });
    group.bench_function("limit_1", |b| {
        b.iter(|| black_box(limited.select().unwrap()))
    });
    group.bench_function("ask", |b| b.iter(|| black_box(asked.ask().unwrap())));
    group.finish();

    // Measured passes for the headline number (best of three for the
    // sub-millisecond early-exit paths), asserted so a pushdown
    // regression fails the bench run itself.
    let t = Instant::now();
    let _ = serial.select().unwrap();
    let full_s = t.elapsed().as_secs_f64();
    let limit_s = (0..3)
        .map(|_| {
            let t = Instant::now();
            let _ = limited.select().unwrap();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    let ask_s = (0..3)
        .map(|_| {
            let t = Instant::now();
            let _ = asked.ask().unwrap();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    println!("\n--- limit pushdown (full corpus, same join) ---");
    println!(
        "full {:.1} ms · limit-1 {:.3} ms ({:.0}x) · ask {:.3} ms ({:.0}x)",
        full_s * 1e3,
        limit_s * 1e3,
        full_s / limit_s,
        ask_s * 1e3,
        full_s / ask_s
    );
    assert!(
        full_s / limit_s >= 10.0,
        "LIMIT 1 must be >=10x faster than the full join ({:.1} ms vs {:.3} ms)",
        full_s * 1e3,
        limit_s * 1e3
    );
    assert!(
        full_s / ask_s >= 10.0,
        "ASK must be >=10x faster than the full join ({:.1} ms vs {:.3} ms)",
        full_s * 1e3,
        ask_s * 1e3
    );

    println!(
        "\n--- §4 exemplar query answers (bench corpus, {} triples) ---",
        graph.len()
    );
    println!("Q1: {} runs", q1_runs(&graph).len());
    let t = q2_template_runs(&graph, &template);
    println!(
        "Q2: template {} → {} runs, {} failed",
        template,
        t.runs.len(),
        t.failed
    );
    println!(
        "Q3: {} run-I/O rows",
        q3_template_run_io(&graph, &template).len()
    );
    println!(
        "Q4: {} process runs for {}",
        q4_process_runs(&graph, &tav_run).len(),
        tav_trace.run_id
    );
    println!("Q5: executed by {:?}", q5_executor(&graph, &tav_run));
    println!(
        "Q6: {} services for {}",
        q6_services(&graph, &account).len(),
        wings_trace.run_id
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
