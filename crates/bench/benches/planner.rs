//! Ablation — BGP join ordering: greedy selectivity-based reordering vs
//! evaluating patterns in written order, on adversarially-written
//! queries over the corpus graph.

use criterion::{criterion_group, criterion_main, Criterion};
use provbench_bench::bench_corpus;
use provbench_query::{parse_query, EvalOptions, QueryEngine};
use std::hint::black_box;
use std::sync::Arc;

/// The same query, written selectively-first vs wildcard-first. The
/// planner should make both run alike; without it the second explodes.
const GOOD_ORDER: &str = "
PREFIX prov: <http://www.w3.org/ns/prov#>
PREFIX wfprov: <http://purl.org/wf4ever/wfprov#>
SELECT ?run ?p ?o WHERE {
  ?run a wfprov:WorkflowRun .
  ?run prov:used ?data .
  ?data ?p ?o .
}";

const BAD_ORDER: &str = "
PREFIX prov: <http://www.w3.org/ns/prov#>
PREFIX wfprov: <http://purl.org/wf4ever/wfprov#>
SELECT ?run ?p ?o WHERE {
  ?data ?p ?o .
  ?run prov:used ?data .
  ?run a wfprov:WorkflowRun .
}";

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus();
    let graph = corpus.combined_graph();
    let good = Arc::new(parse_query(GOOD_ORDER).expect("query parses"));
    let bad = Arc::new(parse_query(BAD_ORDER).expect("query parses"));
    let on = QueryEngine::with_options(&graph, EvalOptions::default());
    let off = QueryEngine::with_options(&graph, EvalOptions::lexical());

    let good_on = on.prepare_parsed(Arc::clone(&good));
    let good_off = off.prepare_parsed(Arc::clone(&good));
    let bad_on = on.prepare_parsed(Arc::clone(&bad));
    let bad_off = off.prepare_parsed(Arc::clone(&bad));

    // Sanity: all four configurations agree on the row count.
    let expected = good_on.select().unwrap().len();
    for q in [&good_off, &bad_on, &bad_off] {
        assert_eq!(q.select().unwrap().len(), expected);
    }

    let mut group = c.benchmark_group("planner");
    group.sample_size(10);
    group.bench_function("good_order_planner_on", |b| {
        b.iter(|| black_box(good_on.select().unwrap()))
    });
    group.bench_function("good_order_planner_off", |b| {
        b.iter(|| black_box(good_off.select().unwrap()))
    });
    group.bench_function("bad_order_planner_on", |b| {
        b.iter(|| black_box(bad_on.select().unwrap()))
    });
    group.bench_function("bad_order_planner_off", |b| {
        b.iter(|| black_box(bad_off.select().unwrap()))
    });
    group.finish();

    println!(
        "\n--- planner ablation: {expected} result rows over {} triples ---",
        graph.len()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
