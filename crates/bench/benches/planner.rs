//! Ablation — BGP join ordering: greedy selectivity-based reordering vs
//! evaluating patterns in written order, on adversarially-written
//! queries over the corpus graph.

use criterion::{criterion_group, criterion_main, Criterion};
use provbench_bench::bench_corpus;
use provbench_query::{execute_with_options, parse_query, EvalOptions};
use std::hint::black_box;

/// The same query, written selectively-first vs wildcard-first. The
/// planner should make both run alike; without it the second explodes.
const GOOD_ORDER: &str = "
PREFIX prov: <http://www.w3.org/ns/prov#>
PREFIX wfprov: <http://purl.org/wf4ever/wfprov#>
SELECT ?run ?p ?o WHERE {
  ?run a wfprov:WorkflowRun .
  ?run prov:used ?data .
  ?data ?p ?o .
}";

const BAD_ORDER: &str = "
PREFIX prov: <http://www.w3.org/ns/prov#>
PREFIX wfprov: <http://purl.org/wf4ever/wfprov#>
SELECT ?run ?p ?o WHERE {
  ?data ?p ?o .
  ?run prov:used ?data .
  ?run a wfprov:WorkflowRun .
}";

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus();
    let graph = corpus.combined_graph();
    let good = parse_query(GOOD_ORDER).expect("query parses");
    let bad = parse_query(BAD_ORDER).expect("query parses");
    let on = EvalOptions {
        reorder_patterns: true,
    };
    let off = EvalOptions {
        reorder_patterns: false,
    };

    // Sanity: all four configurations agree on the row count.
    let expected = execute_with_options(&graph, &good, &on).unwrap().len();
    for (q, o) in [(&good, &off), (&bad, &on), (&bad, &off)] {
        assert_eq!(execute_with_options(&graph, q, o).unwrap().len(), expected);
    }

    let mut group = c.benchmark_group("planner");
    group.sample_size(10);
    group.bench_function("good_order_planner_on", |b| {
        b.iter(|| black_box(execute_with_options(&graph, &good, &on).unwrap()))
    });
    group.bench_function("good_order_planner_off", |b| {
        b.iter(|| black_box(execute_with_options(&graph, &good, &off).unwrap()))
    });
    group.bench_function("bad_order_planner_on", |b| {
        b.iter(|| black_box(execute_with_options(&graph, &bad, &on).unwrap()))
    });
    group.bench_function("bad_order_planner_off", |b| {
        b.iter(|| black_box(execute_with_options(&graph, &bad, &off).unwrap()))
    });
    group.finish();

    println!(
        "\n--- planner ablation: {expected} result rows over {} triples ---",
        graph.len()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
