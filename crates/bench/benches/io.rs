//! Ablation — corpus I/O: on-disk save (per-run Turtle/TriG layout),
//! directory load, and bulk N-Quads export/parse.

use criterion::{criterion_group, criterion_main, Criterion};
use provbench_bench::bench_corpus;
use provbench_core::store;
use provbench_rdf::parse_nquads;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus();
    let dir = std::env::temp_dir().join(format!("provbench-io-bench-{}", std::process::id()));
    let nquads = store::export_nquads(corpus);

    let mut group = c.benchmark_group("io");
    group.sample_size(10);
    group.bench_function("save_corpus_dir", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            black_box(store::save(corpus, &dir).unwrap())
        })
    });
    // Ensure a populated directory for the load bench.
    let _ = std::fs::remove_dir_all(&dir);
    store::save(corpus, &dir).unwrap();
    group.bench_function("load_corpus_dir", |b| {
        b.iter(|| black_box(store::load(&dir).unwrap()))
    });
    group.bench_function("export_nquads", |b| {
        b.iter(|| black_box(store::export_nquads(corpus)))
    });
    group.bench_function("parse_nquads_bulk", |b| {
        b.iter(|| black_box(parse_nquads(&nquads).unwrap()))
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "\n--- io corpus: {} traces, {} B as N-Quads ---",
        corpus.traces.len(),
        nquads.len()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
