//! Ablation — RDF serialization/parsing throughput on real corpus files
//! (the formats the corpus ships in: Turtle for Taverna, TriG for Wings,
//! plus N-Triples as the baseline line-oriented format).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use provbench_bench::bench_corpus;
use provbench_core::store::serialize_trace;
use provbench_rdf::{parse_ntriples, parse_trig, parse_turtle, write_ntriples, PrefixMap};
use provbench_workflow::System;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus();
    // Concatenate a batch of each system's traces into one document.
    let turtle: String = corpus
        .traces_of(System::Taverna)
        .take(20)
        .map(serialize_trace)
        .collect::<Vec<_>>()
        .join("\n");
    let trig: String = corpus
        .traces_of(System::Wings)
        .take(20)
        .map(serialize_trace)
        .collect::<Vec<_>>()
        .join("\n");
    let (turtle_graph, _) = parse_turtle(&turtle).expect("bench turtle parses");
    let ntriples = write_ntriples(&turtle_graph);
    let prefixes = PrefixMap::common();

    let mut group = c.benchmark_group("rdf");
    group.sample_size(10);

    group.throughput(Throughput::Bytes(turtle.len() as u64));
    group.bench_function("parse_turtle", |b| {
        b.iter(|| black_box(parse_turtle(black_box(&turtle)).unwrap()))
    });
    group.throughput(Throughput::Bytes(trig.len() as u64));
    group.bench_function("parse_trig", |b| {
        b.iter(|| black_box(parse_trig(black_box(&trig)).unwrap()))
    });
    group.throughput(Throughput::Bytes(ntriples.len() as u64));
    group.bench_function("parse_ntriples", |b| {
        b.iter(|| black_box(parse_ntriples(black_box(&ntriples)).unwrap()))
    });
    group.throughput(Throughput::Elements(turtle_graph.len() as u64));
    group.bench_function("write_turtle", |b| {
        b.iter(|| black_box(provbench_rdf::write_turtle(&turtle_graph, &prefixes)))
    });
    group.bench_function("write_ntriples", |b| {
        b.iter(|| black_box(write_ntriples(&turtle_graph)))
    });
    group.finish();

    println!(
        "\n--- RDF ablation corpus: {} B Turtle, {} B TriG, {} triples ---",
        turtle.len(),
        trig.len(),
        turtle_graph.len()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
