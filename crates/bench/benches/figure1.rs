//! Figure 1 — domains of workflows. Benchmarks the domain-histogram
//! computation and prints the figure as ASCII bars.

use criterion::{criterion_group, criterion_main, Criterion};
use provbench_bench::full_corpus;
use provbench_core::stats::CorpusStats;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let corpus = full_corpus();
    let mut group = c.benchmark_group("figure1");
    group.sample_size(10);
    group.bench_function("domain_histogram_full_corpus", |b| {
        b.iter(|| black_box(CorpusStats::compute(corpus).domain_histogram))
    });
    group.finish();

    let stats = CorpusStats::compute(corpus);
    println!("\n--- Figure 1: Domains of workflows (W = Wings, T = Taverna) ---");
    for row in &stats.domain_histogram {
        println!(
            "{:26} {}{} ({} + {})",
            row.name,
            "T".repeat(row.taverna),
            "W".repeat(row.wings),
            row.taverna,
            row.wings
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
