//! Table 1 — corpus metadata. Benchmarks the full pipeline that
//! produces it: catalog generation, run-plan construction, corpus
//! generation, and statistics/serialized-size computation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use provbench_bench::bench_corpus;
use provbench_core::{stats::CorpusStats, stats::Table1, Corpus, CorpusSpec};
use provbench_workflow::generate::generate_catalog;
use std::hint::black_box;

fn spec(workflows: usize, runs: usize) -> CorpusSpec {
    CorpusSpec {
        max_workflows: Some(workflows),
        total_runs: runs,
        failed_runs: runs / 8,
        ..CorpusSpec::default()
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    group.bench_function("catalog_120_workflows", |b| {
        b.iter(|| black_box(generate_catalog(42)))
    });

    for (workflows, runs) in [(12usize, 20usize), (40, 60), (70, 90)] {
        group.bench_function(format!("corpus_gen_{workflows}wf_{runs}runs"), |b| {
            b.iter_batched(
                || spec(workflows, runs),
                |s| black_box(Corpus::generate(&s)),
                BatchSize::PerIteration,
            )
        });
    }

    let corpus = bench_corpus();
    group.bench_function("stats_and_table1", |b| {
        b.iter(|| {
            let stats = CorpusStats::compute(black_box(corpus));
            black_box(Table1::from_stats(&stats))
        })
    });
    group.finish();

    // Print the exhibit once so bench logs double as evidence.
    let stats = CorpusStats::compute(corpus);
    println!(
        "\n--- Table 1 (from the {}-run bench corpus) ---",
        stats.runs
    );
    println!("{}", Table1::from_stats(&stats));
}

criterion_group!(benches, bench);
criterion_main!(benches);
