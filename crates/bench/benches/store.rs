//! Ablation — the graph store's index design: every pattern shape should
//! be a range scan, so bound-pattern matching must beat the full-scan
//! alternative by orders of magnitude as graphs grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provbench_rdf::{Graph, Iri, Subject, Term, Triple};
use std::hint::black_box;

fn synthetic_graph(n: usize) -> Graph {
    let mut g = Graph::new();
    let preds: Vec<Iri> = (0..16)
        .map(|i| Iri::new_unchecked(format!("http://bench/p{i}")))
        .collect();
    for i in 0..n {
        g.insert(Triple::new(
            Iri::new_unchecked(format!("http://bench/s{}", i % (n / 8 + 1))),
            preds[i % preds.len()].clone(),
            Iri::new_unchecked(format!("http://bench/o{i}")),
        ));
    }
    g
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(10);

    for n in [1_000usize, 10_000, 100_000] {
        let g = synthetic_graph(n);
        let s: Subject = Iri::new_unchecked("http://bench/s1").into();
        let p = Iri::new_unchecked("http://bench/p3");

        group.bench_with_input(BenchmarkId::new("insert", n), &n, |b, &n| {
            b.iter(|| black_box(synthetic_graph(n)))
        });
        group.bench_with_input(BenchmarkId::new("indexed_sp_match", n), &n, |b, _| {
            b.iter(|| black_box(g.triples_matching(Some(&s), Some(&p), None).count()))
        });
        group.bench_with_input(BenchmarkId::new("full_scan_sp_match", n), &n, |b, _| {
            b.iter(|| {
                // The naive alternative the indexes replace.
                black_box(
                    g.iter()
                        .filter(|t| t.subject == s && t.predicate == p)
                        .count(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("indexed_o_match", n), &n, |b, _| {
            let o: Term = Iri::new_unchecked("http://bench/o42").into();
            b.iter(|| black_box(g.triples_matching(None, None, Some(&o)).count()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
