//! Table 2 — coverage of starting-point PROV terms. Benchmarks the
//! assertion-level coverage scan over each system's merged trace graph.

use criterion::{criterion_group, criterion_main, Criterion};
use provbench_analysis::analyze_coverage;
use provbench_bench::bench_corpus;
use provbench_prov::stats::TermStats;
use provbench_workflow::System;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus();
    let taverna = corpus.system_graph(System::Taverna);
    let wings = corpus.system_graph(System::Wings);

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("term_stats_taverna", |b| {
        b.iter(|| black_box(TermStats::of_graph(&taverna)))
    });
    group.bench_function("term_stats_wings", |b| {
        b.iter(|| black_box(TermStats::of_graph(&wings)))
    });
    group.bench_function("full_coverage_analysis", |b| {
        b.iter(|| black_box(analyze_coverage(&taverna, &wings)))
    });
    group.finish();

    let tables = analyze_coverage(&taverna, &wings);
    println!("\n--- Table 2: Coverage of Starting-point PROV Terms ---");
    for row in &tables.starting_point {
        println!("{:26} {}", row.term.name, row.support_cell());
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
