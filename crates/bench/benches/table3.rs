//! Table 3 — coverage of additional PROV terms, including the starred
//! (inferred-only) entries. The dominant cost is the PROV-O schema
//! inference pass that detects inferability; this bench measures it.

use criterion::{criterion_group, criterion_main, Criterion};
use provbench_analysis::analyze_coverage;
use provbench_bench::bench_corpus;
use provbench_prov::inference::{apply_inference, InferenceRules};
use provbench_workflow::System;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus();
    let taverna = corpus.system_graph(System::Taverna);
    let wings = corpus.system_graph(System::Wings);
    let rules = InferenceRules::schema_only();

    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("schema_inference_taverna", |b| {
        b.iter(|| black_box(apply_inference(&taverna, &rules)))
    });
    group.bench_function("schema_inference_wings", |b| {
        b.iter(|| black_box(apply_inference(&wings, &rules)))
    });
    group.finish();

    let tables = analyze_coverage(&taverna, &wings);
    println!("\n--- Table 3: Coverage of Additional PROV Terms (* = inferred) ---");
    for row in &tables.additional {
        println!("{:26} {}", row.term.name, row.support_cell());
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
