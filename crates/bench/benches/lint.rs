//! Ablation — incremental corpus lint: a cold run (parse + every rule
//! body per file) against a warm run replaying `corpus.lint.snapshot`
//! (only the corpus fixpoint re-solves), plus the single-file-edit case
//! that re-analyzes exactly one document.

use criterion::{criterion_group, criterion_main, Criterion};
use provbench_bench::full_corpus;
use provbench_core::store;
use provbench_diag::{lint_corpus_incremental, CorpusLintOptions, Registry};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let corpus = full_corpus();
    let dir = std::env::temp_dir().join(format!("provbench-lint-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    store::save(corpus, &dir).unwrap();
    let registry = Registry::with_corpus_rules();
    let jobs = store::default_load_jobs();
    let opts = CorpusLintOptions {
        jobs,
        corpus_rules: true,
        incremental: true,
        cache_path: None,
    };
    let cache_path = lint_corpus_incremental(&dir, &registry, &opts)
        .unwrap()
        .cache_path;

    let mut group = c.benchmark_group("lint");
    group.sample_size(10);
    group.bench_function("cold_full_analysis", |b| {
        b.iter(|| {
            let _ = std::fs::remove_file(&cache_path);
            let outcome = lint_corpus_incremental(&dir, &registry, &opts).unwrap();
            assert_eq!(outcome.reused, 0);
            black_box(outcome)
        })
    });
    // Re-seed the cache: every iteration below is warm.
    lint_corpus_incremental(&dir, &registry, &opts).unwrap();
    group.bench_function("warm_snapshot_replay", |b| {
        b.iter(|| {
            let outcome = lint_corpus_incremental(&dir, &registry, &opts).unwrap();
            assert_eq!(outcome.analyzed, 0, "warm run must replay everything");
            black_box(outcome)
        })
    });
    group.finish();

    let warm = lint_corpus_incremental(&dir, &registry, &opts).unwrap();
    println!(
        "\n--- lint: {} files, {} reused on warm run, cache at {} ---",
        warm.reports.len(),
        warm.reused,
        warm.cache_path.display()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
