//! Regenerate every table and figure of the paper and print them
//! side-by-side with the published values.
//!
//! ```sh
//! cargo run -p provbench-bench --release --bin reproduce
//! cargo run -p provbench-bench --release --bin reproduce -- --payload 4096 --save /tmp/corpus
//! ```
//!
//! Options:
//! * `--seed N`     corpus seed (default 42)
//! * `--payload N`  extra bytes per artifact value (scales corpus size
//!   toward the paper's 360 MB; default 0)
//! * `--save DIR`   additionally write the corpus to disk in the
//!   published layout

use provbench_analysis::coverage::{diff_against_paper, PAPER_TABLE_2, PAPER_TABLE_3};
use provbench_analysis::{coverage_of_corpus, decay_summary, diagnose_corpus, interop_report};
use provbench_core::stats::{CorpusStats, Table1};
use provbench_core::{store, Corpus, CorpusSpec};
use provbench_query::exemplar::{
    q1_runs, q2_template_runs, q3_template_run_io, q4_process_runs, q5_executor, q6_services,
};
use provbench_wings::account_iri;
use provbench_workflow::System;
use std::time::Instant;

struct Args {
    seed: u64,
    payload: usize,
    save: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        payload: 0,
        save: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(42),
            "--payload" => args.payload = it.next().and_then(|v| v.parse().ok()).unwrap_or(0),
            "--save" => args.save = it.next(),
            other => {
                eprintln!("unknown option {other:?}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn heading(s: &str) {
    println!("\n{}\n{}", s, "=".repeat(s.len()));
}

fn main() {
    let args = parse_args();
    let spec = CorpusSpec {
        seed: args.seed,
        value_payload: args.payload,
        ..CorpusSpec::default()
    };

    heading("Corpus generation (§2)");
    let t0 = Instant::now();
    let corpus = Corpus::generate(&spec);
    println!("generated in {:.2?} (seed {})", t0.elapsed(), spec.seed);
    let stats = CorpusStats::compute(&corpus);
    println!("                     paper    measured");
    println!("workflows            120      {}", stats.workflows);
    println!("runs                 198      {}", stats.runs);
    println!("failed runs          30       {}", stats.failed_runs);
    println!(
        "domains              12       {}",
        stats.domain_histogram.len()
    );
    println!(
        "size                 360 MB   {:.1} MB (payload {} B/artifact; shape, not bytes, is the target)",
        stats.serialized_bytes as f64 / (1024.0 * 1024.0),
        args.payload
    );
    println!("process runs         n/a      {}", stats.process_runs);
    println!("triples              n/a      {}", stats.triples);

    if let Some(dir) = &args.save {
        let t = Instant::now();
        let saved = store::save(&corpus, std::path::Path::new(dir)).expect("save corpus");
        println!(
            "saved {} files / {:.1} MB to {dir} in {:.2?}",
            saved.files,
            saved.bytes as f64 / (1024.0 * 1024.0),
            t.elapsed()
        );
    }

    heading("Table 1: Information about the PROV-corpus");
    println!("{}", Table1::from_stats(&stats));

    heading("Figure 1: Domains of workflows");
    for row in &stats.domain_histogram {
        println!(
            "{:26} {}{} ({} Taverna + {} Wings)",
            row.name,
            "T".repeat(row.taverna),
            "W".repeat(row.wings),
            row.taverna,
            row.wings
        );
    }

    let t0 = Instant::now();
    let tables = coverage_of_corpus(&corpus);
    let coverage_time = t0.elapsed();
    heading("Table 2: Coverage of Starting-point PROV Terms");
    println!("{:26} {:24} {:24}", "PROV Term", "paper", "measured");
    for (row, (_, paper)) in tables.starting_point.iter().zip(PAPER_TABLE_2) {
        println!(
            "{:26} {:24} {:24}",
            row.term.name,
            paper,
            row.support_cell()
        );
    }
    heading("Table 3: Coverage of Additional PROV Terms (* = inferred)");
    println!("{:26} {:24} {:24}", "PROV Term", "paper", "measured");
    for (row, (_, paper)) in tables.additional.iter().zip(PAPER_TABLE_3) {
        println!(
            "{:26} {:24} {:24}",
            row.term.name,
            paper,
            row.support_cell()
        );
    }
    let diffs = diff_against_paper(&tables);
    if diffs.is_empty() {
        println!(
            "\n✓ coverage matches the paper on all 17 terms (computed in {coverage_time:.2?})"
        );
    } else {
        println!("\n✗ DEVIATIONS: {diffs:?}");
    }

    heading("§4 Exemplar queries");
    let graph = corpus.combined_graph();
    println!("(query corpus: {} triples)", graph.len());

    let t = Instant::now();
    let runs = q1_runs(&graph);
    println!(
        "Q1  {} runs, {} with times                        [{:.2?}]",
        runs.len(),
        runs.iter().filter(|r| r.started.is_some()).count(),
        t.elapsed()
    );

    let template = &corpus.templates[0].1.name;
    let t = Instant::now();
    let q2 = q2_template_runs(&graph, template);
    println!(
        "Q2  template {}: {} runs, {} failed        [{:.2?}]",
        template,
        q2.runs.len(),
        q2.failed,
        t.elapsed()
    );

    let t = Instant::now();
    let io = q3_template_run_io(&graph, template);
    println!(
        "Q3  {} runs with {} inputs / {} outputs total      [{:.2?}]",
        io.len(),
        io.iter().map(|r| r.inputs.len()).sum::<usize>(),
        io.iter().map(|r| r.outputs.len()).sum::<usize>(),
        t.elapsed()
    );

    let tav_run = &q2.runs[0];
    let t = Instant::now();
    let processes = q4_process_runs(&graph, tav_run);
    println!(
        "Q4  {} process runs, times: {} (Taverna-only)       [{:.2?}]",
        processes.len(),
        processes.iter().filter(|p| p.started.is_some()).count(),
        t.elapsed()
    );

    let t = Instant::now();
    let execs = q5_executor(&graph, tav_run);
    println!(
        "Q5  executed by {:?}                        [{:.2?}]",
        execs
            .iter()
            .filter_map(|(_, n)| n.clone())
            .collect::<Vec<_>>(),
        t.elapsed()
    );

    let wings_run = corpus
        .traces_of(System::Wings)
        .find(|tr| !tr.failed())
        .expect("corpus has Wings runs");
    let t = Instant::now();
    let services = q6_services(&graph, &account_iri(&wings_run.run_id));
    println!(
        "Q6  {} services for {} (Wings-only)  [{:.2?}]",
        services.len(),
        wings_run.run_id,
        t.elapsed()
    );

    heading("§3 Applications");
    let t = Instant::now();
    let reports = diagnose_corpus(&corpus);
    println!(
        "debugging: {} failed runs diagnosed (responsible process + affected steps) [{:.2?}]",
        reports.len(),
        t.elapsed()
    );
    let t = Instant::now();
    let decay = decay_summary(&corpus);
    println!(
        "decay: {} longitudinal series, {} decayed [{:.2?}]",
        decay.len(),
        decay.iter().filter(|d| d.decayed).count(),
        t.elapsed()
    );
    heading("§6 Interoperable queries (future work, implemented)");
    print!("{}", interop_report(&corpus));

    println!("\ncorpus fingerprint: {:016x}", corpus.fingerprint());
}
