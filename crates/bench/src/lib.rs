//! # provbench-bench
//!
//! Benchmark harness regenerating every table and figure of the paper:
//!
//! | Bench target | Paper exhibit |
//! |---|---|
//! | `table1` | Table 1 — corpus metadata |
//! | `figure1` | Figure 1 — domains of workflows |
//! | `table2` | Table 2 — starting-point PROV term coverage |
//! | `table3` | Table 3 — additional PROV term coverage (incl. `*`) |
//! | `queries` | §4 — exemplar queries Q1–Q6 |
//! | `rdf` | ablation — Turtle/N-Triples/TriG parse + serialize throughput |
//! | `store` | ablation — indexed pattern matching vs full scan |
//! | `inference` | ablation — PROV-O inference rule sets |
//!
//! The `reproduce` binary prints every exhibit side-by-side with the
//! paper's values (`cargo run -p provbench-bench --bin reproduce`).

use provbench_core::{Corpus, CorpusSpec};
use std::sync::OnceLock;

/// A mid-size corpus slice shared by the benches: spans both systems
/// (70 workflows reaches into the Wings domains), with failures.
pub fn bench_corpus() -> &'static Corpus {
    static CELL: OnceLock<Corpus> = OnceLock::new();
    CELL.get_or_init(|| {
        Corpus::generate(&CorpusSpec {
            max_workflows: Some(70),
            total_runs: 90,
            failed_runs: 8,
            ..CorpusSpec::default()
        })
    })
}

/// The full paper-shaped corpus (120 workflows / 198 runs / 30 failures),
/// for benches that measure the real corpus scale.
pub fn full_corpus() -> &'static Corpus {
    static CELL: OnceLock<Corpus> = OnceLock::new();
    CELL.get_or_init(|| Corpus::generate(&CorpusSpec::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_corpus_is_cached_and_mixed() {
        let a = bench_corpus();
        let b = bench_corpus();
        assert!(std::ptr::eq(a, b));
        use provbench_workflow::System;
        assert!(a.traces_of(System::Taverna).next().is_some());
        assert!(a.traces_of(System::Wings).next().is_some());
    }
}
