//! The wfprov ontology (Research Object model): workflow-specific
//! provenance terms used by the Taverna export.

super::terms! { "http://purl.org/wf4ever/wfprov#" =>
    /// `wfprov:WorkflowRun` — the run of a whole workflow.
    workflow_run = "WorkflowRun",
    /// `wfprov:ProcessRun` — the run of one processor.
    process_run = "ProcessRun",
    /// `wfprov:Artifact` — a data item consumed or produced.
    artifact = "Artifact",
    /// `wfprov:WorkflowEngine` — the software agent enacting runs.
    workflow_engine = "WorkflowEngine",
    /// `wfprov:describedByWorkflow` — run → its workflow description.
    described_by_workflow = "describedByWorkflow",
    /// `wfprov:describedByProcess` — process run → its process description.
    described_by_process = "describedByProcess",
    /// `wfprov:usedInput` — process run → consumed artifact.
    used_input = "usedInput",
    /// `wfprov:wasOutputFrom` — artifact → producing run.
    was_output_from = "wasOutputFrom",
    /// `wfprov:wasPartOfWorkflowRun` — process run → enclosing workflow run.
    was_part_of_workflow_run = "wasPartOfWorkflowRun",
    /// `wfprov:wasEnactedBy` — run → workflow engine.
    was_enacted_by = "wasEnactedBy",
}

#[cfg(test)]
mod tests {
    #[test]
    fn terms_are_namespaced() {
        assert_eq!(
            super::workflow_run().as_str(),
            "http://purl.org/wf4ever/wfprov#WorkflowRun"
        );
        assert!(super::was_part_of_workflow_run()
            .as_str()
            .starts_with(super::NS));
    }
}
