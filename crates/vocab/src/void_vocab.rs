//! The VoID vocabulary (Vocabulary of Interlinked Datasets), used to
//! publish the corpus's Table 1 metadata as machine-readable RDF.

super::terms! { "http://rdfs.org/ns/void#" =>
    /// `void:Dataset`.
    dataset = "Dataset",
    /// `void:triples` — number of triples in the dataset.
    triples = "triples",
    /// `void:entities` — number of described entities.
    entities = "entities",
    /// `void:distinctSubjects`.
    distinct_subjects = "distinctSubjects",
    /// `void:vocabulary` — a vocabulary the dataset uses.
    vocabulary = "vocabulary",
    /// `void:dataDump` — where the serialized dataset lives.
    data_dump = "dataDump",
    /// `void:feature` — a technical feature, e.g. the RDF syntax.
    feature = "feature",
    /// `void:sparqlEndpoint`.
    sparql_endpoint = "sparqlEndpoint",
    /// `void:subset`.
    subset = "subset",
}

#[cfg(test)]
mod tests {
    #[test]
    fn terms_are_namespaced() {
        assert_eq!(super::dataset().as_str(), "http://rdfs.org/ns/void#Dataset");
        assert!(super::sparql_endpoint().as_str().starts_with(super::NS));
    }
}
