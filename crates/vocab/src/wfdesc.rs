//! The wfdesc ontology (Research Object model): abstract workflow
//! descriptions that provenance traces point back to.

super::terms! { "http://purl.org/wf4ever/wfdesc#" =>
    /// `wfdesc:Workflow` — a workflow template.
    workflow = "Workflow",
    /// `wfdesc:Process` — one step of a workflow template.
    process = "Process",
    /// `wfdesc:Input` — an input parameter port.
    input = "Input",
    /// `wfdesc:Output` — an output port.
    output = "Output",
    /// `wfdesc:DataLink` — a dataflow edge.
    data_link = "DataLink",
    /// `wfdesc:hasInput`.
    has_input = "hasInput",
    /// `wfdesc:hasOutput`.
    has_output = "hasOutput",
    /// `wfdesc:hasSubProcess`.
    has_sub_process = "hasSubProcess",
    /// `wfdesc:hasDataLink`.
    has_data_link = "hasDataLink",
    /// `wfdesc:hasSource` — data link source port.
    has_source = "hasSource",
    /// `wfdesc:hasSink` — data link sink port.
    has_sink = "hasSink",
    /// `wfdesc:hasWorkflowDefinition`.
    has_workflow_definition = "hasWorkflowDefinition",
}

#[cfg(test)]
mod tests {
    #[test]
    fn terms_are_namespaced() {
        assert_eq!(
            super::workflow().as_str(),
            "http://purl.org/wf4ever/wfdesc#Workflow"
        );
        assert!(super::has_data_link().as_str().starts_with(super::NS));
    }
}
