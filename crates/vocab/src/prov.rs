//! The PROV-O vocabulary, with the term classification behind the paper's
//! Tables 2 and 3 and the sub-property lattice used for inference.

use provbench_rdf::Iri;

super::terms! { "http://www.w3.org/ns/prov#" =>
    // --- Starting-point classes (Table 2) ---
    /// `prov:Entity`.
    entity = "Entity",
    /// `prov:Activity`.
    activity = "Activity",
    /// `prov:Agent`.
    agent = "Agent",
    // --- Starting-point properties (Table 2) ---
    /// `prov:wasGeneratedBy`.
    was_generated_by = "wasGeneratedBy",
    /// `prov:wasDerivedFrom`.
    was_derived_from = "wasDerivedFrom",
    /// `prov:wasAttributedTo`.
    was_attributed_to = "wasAttributedTo",
    /// `prov:startedAtTime`.
    started_at_time = "startedAtTime",
    /// `prov:used`.
    used = "used",
    /// `prov:wasInformedBy`.
    was_informed_by = "wasInformedBy",
    /// `prov:endedAtTime`.
    ended_at_time = "endedAtTime",
    /// `prov:wasAssociatedWith`.
    was_associated_with = "wasAssociatedWith",
    /// `prov:actedOnBehalfOf`.
    acted_on_behalf_of = "actedOnBehalfOf",
    // --- Additional terms (Table 3) ---
    /// `prov:Bundle`.
    bundle = "Bundle",
    /// `prov:Plan`.
    plan = "Plan",
    /// `prov:wasInfluencedBy`.
    was_influenced_by = "wasInfluencedBy",
    /// `prov:hadPrimarySource`.
    had_primary_source = "hadPrimarySource",
    /// `prov:atLocation`.
    at_location = "atLocation",
    // --- Expanded / qualified terms the exporters also use ---
    /// `prov:SoftwareAgent`.
    software_agent = "SoftwareAgent",
    /// `prov:Person`.
    person = "Person",
    /// `prov:Location`.
    location = "Location",
    /// `prov:Association` (qualified association class).
    association = "Association",
    /// `prov:qualifiedAssociation`.
    qualified_association = "qualifiedAssociation",
    /// `prov:hadPlan` — Taverna asserts this *instead of* typing plans
    /// with `prov:Plan` (Table 3's starred entry).
    had_plan = "hadPlan",
    /// `prov:agent` (the qualified-association agent property).
    agent_prop = "agent",
    /// `prov:Organization`.
    organization = "Organization",
    /// `prov:Usage` (qualified usage class).
    usage = "Usage",
    /// `prov:Generation` (qualified generation class).
    generation = "Generation",
    /// `prov:qualifiedUsage`.
    qualified_usage = "qualifiedUsage",
    /// `prov:qualifiedGeneration` .
    qualified_generation = "qualifiedGeneration",
    /// `prov:atTime` (time of a qualified influence).
    at_time = "atTime",
    /// `prov:entity` (the qualified-usage entity property).
    entity_prop = "entity",
    /// `prov:activity` (the qualified-generation activity property).
    activity_prop = "activity",
    /// `prov:generatedAtTime`.
    generated_at_time = "generatedAtTime",
    /// `prov:value`.
    value = "value",
    /// `prov:wasStartedBy`.
    was_started_by = "wasStartedBy",
    /// `prov:wasEndedBy`.
    was_ended_by = "wasEndedBy",
    /// `prov:specializationOf`.
    specialization_of = "specializationOf",
    /// `prov:alternateOf`.
    alternate_of = "alternateOf",
    /// `prov:invalidatedAtTime`.
    invalidated_at_time = "invalidatedAtTime",
}

/// Whether a PROV term belongs to the starting-point set (Table 2) or the
/// additional set reported in Table 3.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum TermCategory {
    /// One of the 12 starting-point terms of Table 2.
    StartingPoint,
    /// One of the 5 additional terms of Table 3.
    Additional,
}

/// Whether a PROV term is a class or a property.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum TermKind {
    /// An `owl:Class` — coverage means "an instance is typed with it".
    Class,
    /// A property — coverage means "a triple asserts it".
    Property,
}

/// Static description of one PROV term tracked by the coverage analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProvTermInfo {
    /// Display name as the paper spells it, e.g. `prov:wasGeneratedBy`.
    pub name: &'static str,
    /// Full IRI.
    pub iri: &'static str,
    /// Starting-point (Table 2) or additional (Table 3).
    pub category: TermCategory,
    /// Class or property.
    pub kind: TermKind,
}

impl ProvTermInfo {
    /// The term IRI as an [`Iri`] value.
    pub fn to_iri(&self) -> Iri {
        Iri::new_unchecked(self.iri)
    }
}

macro_rules! info {
    ($name:literal, $local:literal, $cat:ident, $kind:ident) => {
        ProvTermInfo {
            name: $name,
            iri: concat!("http://www.w3.org/ns/prov#", $local),
            category: TermCategory::$cat,
            kind: TermKind::$kind,
        }
    };
}

/// The 12 starting-point terms, in the order of the paper's Table 2.
pub const STARTING_POINT_TERMS: &[ProvTermInfo] = &[
    info!("prov:Activity", "Activity", StartingPoint, Class),
    info!("prov:Agent", "Agent", StartingPoint, Class),
    info!("prov:Entity", "Entity", StartingPoint, Class),
    info!(
        "prov:actedOnBehalfOf",
        "actedOnBehalfOf", StartingPoint, Property
    ),
    info!("prov:endedAtTime", "endedAtTime", StartingPoint, Property),
    info!(
        "prov:startedAtTime",
        "startedAtTime", StartingPoint, Property
    ),
    info!("prov:used", "used", StartingPoint, Property),
    info!(
        "prov:wasAssociatedWith",
        "wasAssociatedWith", StartingPoint, Property
    ),
    info!(
        "prov:wasAttributedTo",
        "wasAttributedTo", StartingPoint, Property
    ),
    info!(
        "prov:wasDerivedFrom",
        "wasDerivedFrom", StartingPoint, Property
    ),
    info!(
        "prov:wasGeneratedBy",
        "wasGeneratedBy", StartingPoint, Property
    ),
    info!(
        "prov:wasInformedBy",
        "wasInformedBy", StartingPoint, Property
    ),
];

/// The 5 additional terms, in the order of the paper's Table 3.
pub const ADDITIONAL_TERMS: &[ProvTermInfo] = &[
    info!("prov:Bundle", "Bundle", Additional, Class),
    info!("prov:Plan", "Plan", Additional, Class),
    info!(
        "prov:wasInfluencedBy",
        "wasInfluencedBy", Additional, Property
    ),
    info!(
        "prov:hadPrimarySource",
        "hadPrimarySource", Additional, Property
    ),
    info!("prov:atLocation", "atLocation", Additional, Property),
];

/// Direct sub-property pairs `(sub, super)` of the PROV-O lattice that
/// matter for the corpus: everything that rolls up to
/// `prov:wasInfluencedBy`, plus `hadPrimarySource ⊑ wasDerivedFrom`.
pub const SUBPROPERTY_OF: &[(&str, &str)] = &[
    (
        "http://www.w3.org/ns/prov#used",
        "http://www.w3.org/ns/prov#wasInfluencedBy",
    ),
    (
        "http://www.w3.org/ns/prov#wasGeneratedBy",
        "http://www.w3.org/ns/prov#wasInfluencedBy",
    ),
    (
        "http://www.w3.org/ns/prov#wasDerivedFrom",
        "http://www.w3.org/ns/prov#wasInfluencedBy",
    ),
    (
        "http://www.w3.org/ns/prov#wasAttributedTo",
        "http://www.w3.org/ns/prov#wasInfluencedBy",
    ),
    (
        "http://www.w3.org/ns/prov#wasAssociatedWith",
        "http://www.w3.org/ns/prov#wasInfluencedBy",
    ),
    (
        "http://www.w3.org/ns/prov#wasInformedBy",
        "http://www.w3.org/ns/prov#wasInfluencedBy",
    ),
    (
        "http://www.w3.org/ns/prov#actedOnBehalfOf",
        "http://www.w3.org/ns/prov#wasInfluencedBy",
    ),
    (
        "http://www.w3.org/ns/prov#wasStartedBy",
        "http://www.w3.org/ns/prov#wasInfluencedBy",
    ),
    (
        "http://www.w3.org/ns/prov#wasEndedBy",
        "http://www.w3.org/ns/prov#wasInfluencedBy",
    ),
    (
        "http://www.w3.org/ns/prov#hadPrimarySource",
        "http://www.w3.org/ns/prov#wasDerivedFrom",
    ),
];

/// All transitive super-properties of `property` within
/// [`SUBPROPERTY_OF`], excluding the property itself.
pub fn super_properties(property: &Iri) -> Vec<Iri> {
    let mut out = Vec::new();
    let mut frontier = vec![property.as_str().to_owned()];
    while let Some(p) = frontier.pop() {
        for (sub, sup) in SUBPROPERTY_OF {
            if *sub == p && !out.iter().any(|o: &Iri| o.as_str() == *sup) {
                out.push(Iri::new_unchecked(*sup));
                frontier.push((*sup).to_owned());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_2_has_exactly_twelve_terms() {
        assert_eq!(STARTING_POINT_TERMS.len(), 12);
        assert!(STARTING_POINT_TERMS
            .iter()
            .all(|t| t.category == TermCategory::StartingPoint));
        // 3 classes, 9 properties.
        assert_eq!(
            STARTING_POINT_TERMS
                .iter()
                .filter(|t| t.kind == TermKind::Class)
                .count(),
            3
        );
    }

    #[test]
    fn table_3_has_exactly_five_terms() {
        assert_eq!(ADDITIONAL_TERMS.len(), 5);
        assert!(ADDITIONAL_TERMS
            .iter()
            .all(|t| t.category == TermCategory::Additional));
    }

    #[test]
    fn term_infos_resolve_to_valid_iris() {
        for t in STARTING_POINT_TERMS.iter().chain(ADDITIONAL_TERMS) {
            let iri = t.to_iri();
            assert!(iri.as_str().starts_with(NS));
            assert!(t.name.starts_with("prov:"));
        }
    }

    #[test]
    fn used_rolls_up_to_influence() {
        let sups = super_properties(&used());
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0], was_influenced_by());
    }

    #[test]
    fn primary_source_rolls_up_transitively() {
        let sups = super_properties(&had_primary_source());
        assert!(sups.contains(&was_derived_from()));
        assert!(sups.contains(&was_influenced_by()));
        assert_eq!(sups.len(), 2);
    }

    #[test]
    fn influence_has_no_super_property() {
        assert!(super_properties(&was_influenced_by()).is_empty());
    }
}
