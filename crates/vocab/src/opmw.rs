//! The OPMW ontology (Open Provenance Model for Workflows), used by the
//! Wings export to tie execution accounts to workflow templates and the
//! executable components (services) that ran.

super::terms! { "http://www.opmw.org/ontology/" =>
    /// `opmw:WorkflowExecutionAccount` — one Wings run account (a bundle).
    workflow_execution_account = "WorkflowExecutionAccount",
    /// `opmw:WorkflowExecutionProcess` — an executed step.
    workflow_execution_process = "WorkflowExecutionProcess",
    /// `opmw:WorkflowExecutionArtifact` — a data item of an execution.
    workflow_execution_artifact = "WorkflowExecutionArtifact",
    /// `opmw:WorkflowTemplate` — the abstract Wings template.
    workflow_template = "WorkflowTemplate",
    /// `opmw:WorkflowTemplateProcess` — a step of the template.
    workflow_template_process = "WorkflowTemplateProcess",
    /// `opmw:WorkflowTemplateArtifact` — a data variable of the template.
    workflow_template_artifact = "WorkflowTemplateArtifact",
    /// `opmw:executedInWorkflowSystem` — account → the Wings engine.
    executed_in_workflow_system = "executedInWorkflowSystem",
    /// `opmw:correspondsToTemplate` — account → template.
    corresponds_to_template = "correspondsToTemplate",
    /// `opmw:correspondsToTemplateProcess` — executed step → template step.
    corresponds_to_template_process = "correspondsToTemplateProcess",
    /// `opmw:correspondsToTemplateArtifact` — artifact → template variable.
    corresponds_to_template_artifact = "correspondsToTemplateArtifact",
    /// `opmw:hasExecutableComponent` — executed step → the concrete
    /// component/service invoked (queried by the paper's Q6).
    has_executable_component = "hasExecutableComponent",
    /// `opmw:overallStartTime` — account-level start (Wings records run
    /// times only at account granularity, not per activity).
    overall_start_time = "overallStartTime",
    /// `opmw:overallEndTime`.
    overall_end_time = "overallEndTime",
    /// `opmw:hasStatus` — account status (`SUCCESS` / `FAILURE`).
    has_status = "hasStatus",
    /// `opmw:belongsToAccount` — step/artifact → its execution account.
    belongs_to_account = "belongsToAccount",
    /// `opmw:isInputOf` — artifact → the account it is a workflow input of.
    is_input_of = "isInputOf",
    /// `opmw:isOutputOf` — artifact → the account it is a workflow output of.
    is_output_of = "isOutputOf",
}

#[cfg(test)]
mod tests {
    #[test]
    fn terms_are_namespaced() {
        assert_eq!(
            super::workflow_execution_account().as_str(),
            "http://www.opmw.org/ontology/WorkflowExecutionAccount"
        );
        assert!(super::has_executable_component()
            .as_str()
            .starts_with(super::NS));
    }
}
