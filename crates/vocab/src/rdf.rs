//! Core RDF vocabulary terms.

super::terms! { "http://www.w3.org/1999/02/22-rdf-syntax-ns#" =>
    /// `rdf:type`.
    type_ = "type",
    /// `rdf:first` (collections).
    first = "first",
    /// `rdf:rest` (collections).
    rest = "rest",
    /// `rdf:nil` (collections).
    nil = "nil",
}

#[cfg(test)]
mod tests {
    #[test]
    fn type_iri() {
        assert_eq!(
            super::type_().as_str(),
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
        );
    }
}
