//! The Research Object core ontology: aggregation of traces and workflow
//! descriptions into research objects.

super::terms! { "http://purl.org/wf4ever/ro#" =>
    /// `ro:ResearchObject`.
    research_object = "ResearchObject",
    /// `ro:Resource` — an aggregated resource.
    resource = "Resource",
    /// `ro:aggregates` — research object → resource.
    aggregates = "aggregates",
    /// `ro:AggregatedAnnotation`.
    aggregated_annotation = "AggregatedAnnotation",
    /// `ro:annotatesAggregatedResource`.
    annotates_aggregated_resource = "annotatesAggregatedResource",
}

#[cfg(test)]
mod tests {
    #[test]
    fn terms_are_namespaced() {
        assert_eq!(
            super::research_object().as_str(),
            "http://purl.org/wf4ever/ro#ResearchObject"
        );
        assert!(super::aggregates().as_str().starts_with(super::NS));
    }
}
