//! RDF Schema terms used for labels and comments.

super::terms! { "http://www.w3.org/2000/01/rdf-schema#" =>
    /// `rdfs:label`.
    label = "label",
    /// `rdfs:comment`.
    comment = "comment",
    /// `rdfs:seeAlso`.
    see_also = "seeAlso",
    /// `rdfs:subPropertyOf`.
    sub_property_of = "subPropertyOf",
}

#[cfg(test)]
mod tests {
    #[test]
    fn label_iri() {
        assert_eq!(
            super::label().as_str(),
            "http://www.w3.org/2000/01/rdf-schema#label"
        );
    }
}
