//! # provbench-vocab
//!
//! Vocabulary term tables for the ProvBench corpus: PROV-O plus the
//! extension ontologies the paper layers on top of it (wfprov, wfdesc,
//! OPMW, Research Object), and the supporting namespaces (rdf, rdfs, xsd,
//! dcterms, foaf).
//!
//! Every term is exposed as a zero-argument function returning a cached
//! [`Iri`]; each module also exposes its namespace as `NS`. The [`prov`]
//! module additionally carries the metadata the paper's Tables 2 and 3
//! are built from: which terms are *starting-point* vs *additional*, and
//! the sub-property lattice used to infer `prov:wasInfluencedBy`.

pub mod opmw;
pub mod prov;
pub mod rdf;
pub mod rdfs;
pub mod ro;
pub mod void_vocab;
pub mod wfdesc;
pub mod wfprov;

/// VoID under its conventional name.
pub use void_vocab as void;

pub use prov::{ProvTermInfo, TermCategory, TermKind};

use provbench_rdf::Iri;
use std::sync::OnceLock;

/// Define cached term accessors under a namespace.
macro_rules! terms {
    ($ns:literal => $( $(#[$doc:meta])* $name:ident = $local:literal ),+ $(,)?) => {
        /// The namespace IRI of this vocabulary.
        pub const NS: &str = $ns;
        /// Every term this module defines, as full IRI strings — the
        /// vocabulary inventory used by coverage analysis and linting.
        pub const ALL_TERMS: &[&str] = &[ $( concat!($ns, $local) ),+ ];
        $(
            $(#[$doc])*
            pub fn $name() -> $crate::Iri {
                static CELL: std::sync::OnceLock<$crate::Iri> = std::sync::OnceLock::new();
                CELL.get_or_init(|| $crate::Iri::new_unchecked(concat!($ns, $local))).clone()
            }
        )+
    };
}
pub(crate) use terms;

/// Dublin Core terms used for corpus metadata.
pub mod dcterms {
    super::terms! { "http://purl.org/dc/terms/" =>
        /// `dcterms:title`.
        title = "title",
        /// `dcterms:description`.
        description = "description",
        /// `dcterms:creator`.
        creator = "creator",
        /// `dcterms:created`.
        created = "created",
        /// `dcterms:subject` — we use it for the application domain.
        subject = "subject",
        /// `dcterms:license`.
        license = "license",
    }
}

/// FOAF terms used for agent descriptions.
pub mod foaf {
    super::terms! { "http://xmlns.com/foaf/0.1/" =>
        /// `foaf:name`.
        name = "name",
        /// `foaf:mbox`.
        mbox = "mbox",
    }
}

/// The `rdf:type` shortcut, used pervasively.
pub fn rdf_type() -> Iri {
    static CELL: OnceLock<Iri> = OnceLock::new();
    CELL.get_or_init(|| Iri::new_unchecked("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"))
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_are_distinct_and_well_formed() {
        let all = [
            prov::NS,
            wfprov::NS,
            wfdesc::NS,
            opmw::NS,
            ro::NS,
            rdf::NS,
            rdfs::NS,
            dcterms::NS,
            foaf::NS,
        ];
        for ns in all {
            assert!(Iri::new(ns).is_ok(), "bad namespace {ns}");
        }
        let mut dedup = all.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn terms_live_in_their_namespace() {
        assert!(prov::entity().as_str().starts_with(prov::NS));
        assert!(wfprov::workflow_run().as_str().starts_with(wfprov::NS));
        assert!(opmw::workflow_execution_account()
            .as_str()
            .starts_with(opmw::NS));
        assert!(dcterms::title().as_str().starts_with(dcterms::NS));
        assert!(foaf::name().as_str().starts_with(foaf::NS));
    }

    #[test]
    fn term_functions_are_cached_and_stable() {
        assert_eq!(prov::used(), prov::used());
        assert_eq!(
            rdf_type().as_str(),
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
        );
    }
}
