//! Property tests for the SPARQL engine: algebraic invariants that must
//! hold on arbitrary graphs — pattern-order independence of BGP joins,
//! OPTIONAL never losing rows, UNION cardinality, FILTER monotonicity,
//! DISTINCT/LIMIT sanity.

use proptest::prelude::*;
use provbench_query::{QueryEngine, Solutions};
use provbench_rdf::{Graph, Iri, Literal, Triple};
use std::collections::BTreeSet;

/// Prepare and run a (statically well-formed) query against a graph.
fn run(g: &Graph, text: &str) -> Result<Solutions, provbench_query::QueryError> {
    QueryEngine::new(g).prepare(text)?.select()
}

/// Small random graphs over a closed vocabulary so patterns actually join.
fn arb_graph() -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0usize..8, 0usize..4, 0usize..10, any::<bool>()), 1..40).prop_map(
        |triples| {
            triples
                .into_iter()
                .map(|(s, p, o, lit)| {
                    let subject = Iri::new_unchecked(format!("http://t/s{s}"));
                    let predicate = Iri::new_unchecked(format!("http://t/p{p}"));
                    if lit {
                        Triple::new(subject, predicate, Literal::integer(o as i64))
                    } else {
                        Triple::new(
                            subject,
                            predicate,
                            Iri::new_unchecked(format!("http://t/o{o}")),
                        )
                    }
                })
                .collect()
        },
    )
}

fn rows(s: &Solutions) -> BTreeSet<String> {
    s.rows.iter().map(|r| format!("{r:?}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bgp_pattern_order_is_irrelevant(g in arb_graph()) {
        let a = run(&g, "SELECT ?x ?y ?z WHERE { ?x <http://t/p0> ?y . ?x <http://t/p1> ?z }").unwrap();
        let b = run(&g, "SELECT ?x ?y ?z WHERE { ?x <http://t/p1> ?z . ?x <http://t/p0> ?y }").unwrap();
        prop_assert_eq!(rows(&a), rows(&b));
    }

    #[test]
    fn wildcard_bgp_counts_triples(g in arb_graph()) {
        let s = run(&g, "SELECT ?s ?p ?o WHERE { ?s ?p ?o }").unwrap();
        prop_assert_eq!(s.len(), g.len());
    }

    #[test]
    fn optional_preserves_left_cardinality_lower_bound(g in arb_graph()) {
        let base = run(&g, "SELECT ?x WHERE { ?x <http://t/p0> ?y }").unwrap();
        let opt = run(
            &g,
            "SELECT ?x WHERE { ?x <http://t/p0> ?y OPTIONAL { ?x <http://t/p2> ?z } }",
        )
        .unwrap();
        // Left join can multiply rows but never drop a left row's subject.
        let base_subjects: BTreeSet<_> =
            base.rows.iter().filter_map(|r| r.get("x").cloned()).collect();
        let opt_subjects: BTreeSet<_> =
            opt.rows.iter().filter_map(|r| r.get("x").cloned()).collect();
        prop_assert_eq!(base_subjects, opt_subjects);
        prop_assert!(opt.len() >= base.len());
    }

    #[test]
    fn union_is_row_concatenation(g in arb_graph()) {
        let left = run(&g, "SELECT ?x WHERE { ?x <http://t/p0> ?y }").unwrap();
        let right = run(&g, "SELECT ?x WHERE { ?x <http://t/p1> ?y }").unwrap();
        let both = run(
            &g,
            "SELECT ?x WHERE { { ?x <http://t/p0> ?y } UNION { ?x <http://t/p1> ?y } }",
        )
        .unwrap();
        prop_assert_eq!(both.len(), left.len() + right.len());
    }

    #[test]
    fn filter_is_a_subset_and_true_is_identity(g in arb_graph()) {
        let all = run(&g, "SELECT ?s ?o WHERE { ?s <http://t/p0> ?o }").unwrap();
        let trues = run(
            &g,
            "SELECT ?s ?o WHERE { ?s <http://t/p0> ?o FILTER (1 = 1) }",
        )
        .unwrap();
        prop_assert_eq!(rows(&all), rows(&trues));
        let some = run(
            &g,
            "SELECT ?s ?o WHERE { ?s <http://t/p0> ?o FILTER (?o >= 5) }",
        )
        .unwrap();
        prop_assert!(rows(&some).is_subset(&rows(&all)));
        let none = run(
            &g,
            "SELECT ?s ?o WHERE { ?s <http://t/p0> ?o FILTER (1 = 2) }",
        )
        .unwrap();
        prop_assert!(none.is_empty());
    }

    #[test]
    fn distinct_and_limit_sanity(g in arb_graph(), limit in 0usize..10) {
        let distinct = run(&g, "SELECT DISTINCT ?s WHERE { ?s ?p ?o }").unwrap();
        let subjects: BTreeSet<_> = g.subjects().into_iter().collect();
        prop_assert_eq!(distinct.len(), subjects.len());

        let limited = run(
            &g,
            &format!("SELECT ?s WHERE {{ ?s ?p ?o }} LIMIT {limit}"),
        )
        .unwrap();
        prop_assert_eq!(limited.len(), limit.min(g.len()));
    }

    #[test]
    fn count_matches_row_count(g in arb_graph()) {
        let rows_q = run(&g, "SELECT ?s WHERE { ?s <http://t/p0> ?o }").unwrap();
        let count_q =
            run(&g, "SELECT (COUNT(*) AS ?n) WHERE { ?s <http://t/p0> ?o }").unwrap();
        let n = count_q
            .get(0, "n")
            .and_then(|t| t.as_literal())
            .and_then(|l| l.as_integer())
            .unwrap();
        prop_assert_eq!(n as usize, rows_q.len());
    }

    #[test]
    fn order_by_sorts(g in arb_graph()) {
        let s = run(
            &g,
            "SELECT ?o WHERE { ?s <http://t/p0> ?o FILTER (?o >= 0) } ORDER BY ?o",
        )
        .unwrap();
        let values: Vec<i64> = s
            .rows
            .iter()
            .filter_map(|r| r.get("o").and_then(|t| t.as_literal()).and_then(|l| l.as_integer()))
            .collect();
        prop_assert!(values.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn group_by_partitions_rows(g in arb_graph()) {
        let total = run(&g, "SELECT ?s WHERE { ?s ?p ?o }").unwrap();
        let grouped = run(
            &g,
            "SELECT ?s (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s",
        )
        .unwrap();
        let sum: i64 = grouped
            .rows
            .iter()
            .filter_map(|r| r.get("n").and_then(|t| t.as_literal()).and_then(|l| l.as_integer()))
            .sum();
        prop_assert_eq!(sum as usize, total.len());
    }
}
