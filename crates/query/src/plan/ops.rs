//! Pull-based physical operators.
//!
//! Every operator exposes one method — `next()` — and pulls rows from
//! its child on demand (the Volcano model). Nothing materializes unless
//! an operator is a genuine pipeline breaker (`OrderBy`, aggregation,
//! `SELECT *`'s data-dependent header), so a `LIMIT k` at the top of
//! the pipeline stops the scans at the bottom after `k` rows and
//! `ask()` stops after the first.
//!
//! Operators come in two row spaces, mirroring the evaluator's two
//! stages:
//!
//! - **Id operators** ([`IdOperator`]) stream compact [`IdRow`]s of
//!   interned term ids: [`SeedOp`], [`JoinOp`] (a scan when its input
//!   is the seed row, an indexed nested-loop join otherwise),
//!   [`FilterOp`], [`OptionalOp`], [`UnionOp`], plus the buffered
//!   sources [`ChunksOp`] (parallel chunk drain) and [`MaterialOp`].
//! - **Solution operators** ([`SolOperator`]) stream decoded
//!   [`Bindings`]: [`ProjectOp`], [`BufferedSolOp`], [`DistinctOp`],
//!   [`OrderByOp`], [`SliceOp`], [`AskGateOp`].
//!
//! The split keeps joins in id space (term decode happens exactly once,
//! at projection) and keeps the solution modifiers in the same order
//! the materializing evaluator applied them — projection, DISTINCT,
//! ORDER BY, OFFSET/LIMIT — so a full drain of the pipeline is
//! byte-identical to the old `run()`.

use super::{ExecCtx, OPERATOR_SECONDS};
use crate::sparql::ast::OrderKey;
use crate::sparql::eval::{
    bind_slot, compare_terms, effective_boolean, eval_expr, eval_pattern, slot_term, Bindings,
    EvalCtx, IdRow, QueryError, RExpr, RPattern, RPos, RTriple, UNBOUND,
};
use provbench_obs::LATENCY_BUCKETS;
use provbench_rdf::TermId;
use std::collections::BTreeSet;
use std::time::Instant;

/// A pull-based operator over compact id rows.
pub(crate) trait IdOperator<'g> {
    /// Produce the next row, or `None` when the stream is exhausted.
    fn next(&mut self, cx: &mut ExecCtx<'g>) -> Result<Option<IdRow>, QueryError>;
}

pub(crate) type BoxIdOp<'g> = Box<dyn IdOperator<'g> + 'g>;

/// A pull-based operator over decoded solution rows.
pub(crate) trait SolOperator<'g> {
    /// Produce the next row, or `None` when the stream is exhausted.
    fn next(&mut self, cx: &mut ExecCtx<'g>) -> Result<Option<Bindings>, QueryError>;
}

pub(crate) type BoxSolOp<'g> = Box<dyn SolOperator<'g> + 'g>;

// -------------------------------------------------------- id operators --

/// The evaluation seed: exactly one all-unbound row.
pub(crate) struct SeedOp {
    nvars: usize,
    done: bool,
}

impl SeedOp {
    pub(crate) fn new(nvars: usize) -> Self {
        SeedOp { nvars, done: false }
    }
}

impl<'g> IdOperator<'g> for SeedOp {
    fn next(&mut self, _cx: &mut ExecCtx<'g>) -> Result<Option<IdRow>, QueryError> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        Ok(Some(vec![UNBOUND; self.nvars]))
    }
}

/// Indexed nested-loop join of one triple pattern against the child
/// stream: for each input row, the pattern's positions are resolved to
/// constants (ground terms and already-bound variables) and the graph's
/// B-tree indexes are range-scanned for the rest. With the seed row as
/// input this *is* the leading index scan of the pipeline.
pub(crate) struct JoinOp<'g> {
    child: BoxIdOp<'g>,
    tp: RTriple,
    /// The child row currently being expanded.
    row: IdRow,
    scan: Option<Box<dyn Iterator<Item = (TermId, TermId, TermId)> + 'g>>,
}

impl<'g> JoinOp<'g> {
    pub(crate) fn new(child: BoxIdOp<'g>, tp: RTriple) -> Self {
        JoinOp {
            child,
            tp,
            row: Vec::new(),
            scan: None,
        }
    }
}

impl<'g> IdOperator<'g> for JoinOp<'g> {
    fn next(&mut self, cx: &mut ExecCtx<'g>) -> Result<Option<IdRow>, QueryError> {
        loop {
            if let Some(scan) = &mut self.scan {
                for (sid, pid, oid) in scan.by_ref() {
                    let mut nb = self.row.clone();
                    if bind_slot(&mut nb, &self.tp.s, sid)
                        && bind_slot(&mut nb, &self.tp.p, pid)
                        && bind_slot(&mut nb, &self.tp.o, oid)
                    {
                        cx.state.charge()?;
                        return Ok(Some(nb));
                    }
                }
                self.scan = None;
            }
            let Some(row) = self.child.next(cx)? else {
                return Ok(None);
            };
            let resolve = |pos: &RPos| -> Option<Option<TermId>> {
                // Outer None = can't match; inner None = wildcard scan.
                match pos {
                    RPos::Const(id) => Some(Some(*id)),
                    RPos::Missing => None,
                    RPos::Var(v) => Some(if row[*v] == UNBOUND {
                        None
                    } else {
                        Some(TermId::from_u32(row[*v]))
                    }),
                }
            };
            let (Some(s), Some(p), Some(o)) = (
                resolve(&self.tp.s),
                resolve(&self.tp.p),
                resolve(&self.tp.o),
            ) else {
                continue; // a ground term the graph never interned
            };
            self.scan = Some(cx.graph.ids_matching(s, p, o));
            self.row = row;
        }
    }
}

/// Keep only rows whose `FILTER` expression is effectively true.
pub(crate) struct FilterOp<'g> {
    child: BoxIdOp<'g>,
    expr: RExpr,
}

impl<'g> FilterOp<'g> {
    pub(crate) fn new(child: BoxIdOp<'g>, expr: RExpr) -> Self {
        FilterOp { child, expr }
    }
}

impl<'g> IdOperator<'g> for FilterOp<'g> {
    fn next(&mut self, cx: &mut ExecCtx<'g>) -> Result<Option<IdRow>, QueryError> {
        loop {
            let Some(row) = self.child.next(cx)? else {
                return Ok(None);
            };
            let keep = eval_expr(&self.expr, &row, cx.graph)
                .and_then(|v| effective_boolean(&v))
                .unwrap_or(false);
            if keep {
                return Ok(Some(row));
            }
        }
    }
}

/// `OPTIONAL`: extend each input row with the inner pattern's matches,
/// passing the row through unchanged when there are none. The inner
/// pattern is evaluated per input row through the recursive evaluator —
/// exactly how the materializing path handled it — so a whole subtree
/// (including nested UNIONs) rides behind one streaming operator.
pub(crate) struct OptionalOp<'g> {
    child: BoxIdOp<'g>,
    inner: RPattern,
    buf: std::vec::IntoIter<IdRow>,
}

impl<'g> OptionalOp<'g> {
    pub(crate) fn new(child: BoxIdOp<'g>, inner: RPattern) -> Self {
        OptionalOp {
            child,
            inner,
            buf: Vec::new().into_iter(),
        }
    }
}

impl<'g> IdOperator<'g> for OptionalOp<'g> {
    fn next(&mut self, cx: &mut ExecCtx<'g>) -> Result<Option<IdRow>, QueryError> {
        loop {
            if let Some(row) = self.buf.next() {
                return Ok(Some(row));
            }
            let Some(row) = self.child.next(cx)? else {
                return Ok(None);
            };
            let ctx = EvalCtx {
                graph: cx.graph,
                reorder: cx.reorder,
            };
            let extended = eval_pattern(&ctx, &mut cx.state, &self.inner, vec![row.clone()])?;
            if extended.is_empty() {
                cx.state.charge()?;
                return Ok(Some(row));
            }
            self.buf = extended.into_iter();
        }
    }
}

/// `UNION`: all left-arm results, then all right-arm results. A
/// pipeline breaker by construction — both arms need the *complete*
/// upstream input, so it drains its child once and replays it through
/// each arm (again via the recursive evaluator, preserving the
/// materializing path's row order and charge accounting).
pub(crate) struct UnionOp<'g> {
    child: Option<BoxIdOp<'g>>,
    left: RPattern,
    right: RPattern,
    input: Vec<IdRow>,
    buf: std::vec::IntoIter<IdRow>,
    phase: u8,
}

impl<'g> UnionOp<'g> {
    pub(crate) fn new(child: BoxIdOp<'g>, left: RPattern, right: RPattern) -> Self {
        UnionOp {
            child: Some(child),
            left,
            right,
            input: Vec::new(),
            buf: Vec::new().into_iter(),
            phase: 0,
        }
    }
}

impl<'g> IdOperator<'g> for UnionOp<'g> {
    fn next(&mut self, cx: &mut ExecCtx<'g>) -> Result<Option<IdRow>, QueryError> {
        loop {
            if let Some(row) = self.buf.next() {
                return Ok(Some(row));
            }
            let ctx = EvalCtx {
                graph: cx.graph,
                reorder: cx.reorder,
            };
            match self.phase {
                0 => {
                    let mut child = self.child.take().expect("union child taken once");
                    let mut input = Vec::new();
                    while let Some(r) = child.next(cx)? {
                        input.push(r);
                    }
                    self.input = input;
                    self.buf = eval_pattern(&ctx, &mut cx.state, &self.left, self.input.clone())?
                        .into_iter();
                    self.phase = 1;
                }
                1 => {
                    let input = std::mem::take(&mut self.input);
                    self.buf = eval_pattern(&ctx, &mut cx.state, &self.right, input)?.into_iter();
                    self.phase = 2;
                }
                _ => return Ok(None),
            }
        }
    }
}

/// Drain the parallel path's per-chunk result slabs **in chunk order**,
/// which is what makes parallel output byte-identical to serial.
pub(crate) struct ChunksOp {
    chunks: std::vec::IntoIter<Vec<IdRow>>,
    cur: std::vec::IntoIter<IdRow>,
}

impl ChunksOp {
    pub(crate) fn new(chunks: Vec<Vec<IdRow>>) -> Self {
        ChunksOp {
            chunks: chunks.into_iter(),
            cur: Vec::new().into_iter(),
        }
    }
}

impl<'g> IdOperator<'g> for ChunksOp {
    fn next(&mut self, _cx: &mut ExecCtx<'g>) -> Result<Option<IdRow>, QueryError> {
        loop {
            if let Some(row) = self.cur.next() {
                return Ok(Some(row));
            }
            match self.chunks.next() {
                Some(chunk) => self.cur = chunk.into_iter(),
                None => return Ok(None),
            }
        }
    }
}

/// Replay an already-materialized id-row slab (`SELECT *`'s
/// data-dependent header forces one).
pub(crate) struct MaterialOp {
    rows: std::vec::IntoIter<IdRow>,
}

impl MaterialOp {
    pub(crate) fn new(rows: Vec<IdRow>) -> Self {
        MaterialOp {
            rows: rows.into_iter(),
        }
    }
}

impl<'g> IdOperator<'g> for MaterialOp {
    fn next(&mut self, _cx: &mut ExecCtx<'g>) -> Result<Option<IdRow>, QueryError> {
        Ok(self.rows.next())
    }
}

// -------------------------------------------------- solution operators --

/// Decode the projected slots of each id row into named [`Bindings`].
/// This is the only place terms are decoded on the streaming path.
pub(crate) struct ProjectOp<'g> {
    child: BoxIdOp<'g>,
    keep: Vec<(usize, String)>,
}

impl<'g> ProjectOp<'g> {
    pub(crate) fn new(child: BoxIdOp<'g>, keep: Vec<(usize, String)>) -> Self {
        ProjectOp { child, keep }
    }
}

impl<'g> SolOperator<'g> for ProjectOp<'g> {
    fn next(&mut self, cx: &mut ExecCtx<'g>) -> Result<Option<Bindings>, QueryError> {
        let Some(row) = self.child.next(cx)? else {
            return Ok(None);
        };
        let mut b = Bindings::new();
        for (slot, name) in &self.keep {
            if let Some(t) = slot_term(&row, *slot, cx.graph) {
                b.insert(name.clone(), t.clone());
            }
        }
        Ok(Some(b))
    }
}

/// Replay precomputed solution rows (the aggregate path computes its
/// groups eagerly — grouping needs every input row).
pub(crate) struct BufferedSolOp {
    rows: std::vec::IntoIter<Bindings>,
}

impl BufferedSolOp {
    pub(crate) fn new(rows: Vec<Bindings>) -> Self {
        BufferedSolOp {
            rows: rows.into_iter(),
        }
    }
}

impl<'g> SolOperator<'g> for BufferedSolOp {
    fn next(&mut self, _cx: &mut ExecCtx<'g>) -> Result<Option<Bindings>, QueryError> {
        Ok(self.rows.next())
    }
}

/// `DISTINCT`, streaming: emit each row the first time it is seen.
/// First-occurrence order is exactly what the materializing
/// `retain(insert)` kept, and under a `LIMIT` the pipeline stops once
/// enough *distinct* rows came through.
pub(crate) struct DistinctOp<'g> {
    child: BoxSolOp<'g>,
    seen: BTreeSet<Bindings>,
}

impl<'g> DistinctOp<'g> {
    pub(crate) fn new(child: BoxSolOp<'g>) -> Self {
        DistinctOp {
            child,
            seen: BTreeSet::new(),
        }
    }
}

impl<'g> SolOperator<'g> for DistinctOp<'g> {
    fn next(&mut self, cx: &mut ExecCtx<'g>) -> Result<Option<Bindings>, QueryError> {
        loop {
            let Some(row) = self.child.next(cx)? else {
                return Ok(None);
            };
            if self.seen.insert(row.clone()) {
                return Ok(Some(row));
            }
        }
    }
}

/// `ORDER BY`: the pipeline breaker. Drains its child on the first
/// pull, sorts with the same stable comparator as the materializing
/// path (unbound keys first, `DESC` reverses per key), then streams the
/// sorted rows — so `LIMIT` above still short-circuits the *emission*,
/// though not the sort itself.
pub(crate) struct OrderByOp<'g> {
    child: BoxSolOp<'g>,
    keys: Vec<OrderKey>,
    sorted: Option<std::vec::IntoIter<Bindings>>,
}

impl<'g> OrderByOp<'g> {
    pub(crate) fn new(child: BoxSolOp<'g>, keys: Vec<OrderKey>) -> Self {
        OrderByOp {
            child,
            keys,
            sorted: None,
        }
    }
}

impl<'g> SolOperator<'g> for OrderByOp<'g> {
    fn next(&mut self, cx: &mut ExecCtx<'g>) -> Result<Option<Bindings>, QueryError> {
        if self.sorted.is_none() {
            let mut rows = Vec::new();
            while let Some(r) = self.child.next(cx)? {
                rows.push(r);
            }
            rows.sort_by(|a, b| {
                for key in &self.keys {
                    let (x, y) = (a.get(&key.var), b.get(&key.var));
                    let ord = match (x, y) {
                        (None, None) => std::cmp::Ordering::Equal,
                        (None, Some(_)) => std::cmp::Ordering::Less,
                        (Some(_), None) => std::cmp::Ordering::Greater,
                        (Some(x), Some(y)) => {
                            compare_terms(x, y).unwrap_or(std::cmp::Ordering::Equal)
                        }
                    };
                    let ord = if key.descending { ord.reverse() } else { ord };
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            self.sorted = Some(rows.into_iter());
        }
        Ok(self.sorted.as_mut().and_then(|it| it.next()))
    }
}

/// `OFFSET`/`LIMIT`. Once the limit is reached the child is never
/// pulled again — this is the operator that turns `LIMIT k` into an
/// early stop for every streaming operator below it.
pub(crate) struct SliceOp<'g> {
    child: BoxSolOp<'g>,
    skip: usize,
    remaining: Option<usize>,
}

impl<'g> SliceOp<'g> {
    pub(crate) fn new(child: BoxSolOp<'g>, offset: usize, limit: Option<usize>) -> Self {
        SliceOp {
            child,
            skip: offset,
            remaining: limit,
        }
    }
}

impl<'g> SolOperator<'g> for SliceOp<'g> {
    fn next(&mut self, cx: &mut ExecCtx<'g>) -> Result<Option<Bindings>, QueryError> {
        if self.remaining == Some(0) {
            return Ok(None);
        }
        while self.skip > 0 {
            if self.child.next(cx)?.is_none() {
                self.skip = 0;
                return Ok(None);
            }
            self.skip -= 1;
        }
        let Some(row) = self.child.next(cx)? else {
            return Ok(None);
        };
        if let Some(n) = &mut self.remaining {
            *n -= 1;
        }
        Ok(Some(row))
    }
}

/// The `ASK` gate: pull at most one row from the child and emit the
/// boolean result in `Solutions` shape (one empty row = true, none =
/// false). Everything below it stops after the first solution.
pub(crate) struct AskGateOp<'g> {
    child: BoxSolOp<'g>,
    done: bool,
}

impl<'g> AskGateOp<'g> {
    pub(crate) fn new(child: BoxSolOp<'g>) -> Self {
        AskGateOp { child, done: false }
    }
}

impl<'g> SolOperator<'g> for AskGateOp<'g> {
    fn next(&mut self, cx: &mut ExecCtx<'g>) -> Result<Option<Bindings>, QueryError> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        Ok(self.child.next(cx)?.map(|_| Bindings::new()))
    }
}

// --------------------------------------------------------------- spans --

/// Per-operator timing wrapper ([`EvalOptions::operator_spans`]): every
/// `next()` call records one `provbench_query_operator_seconds{op=...}`
/// observation — a span per pulled row, parent spans inclusive of their
/// children, like any nested tracing.
///
/// [`EvalOptions::operator_spans`]: crate::EvalOptions::operator_spans
pub(crate) struct SpanIdOp<'g> {
    child: BoxIdOp<'g>,
    name: &'static str,
}

impl<'g> SpanIdOp<'g> {
    pub(crate) fn new(child: BoxIdOp<'g>, name: &'static str) -> Self {
        SpanIdOp { child, name }
    }
}

impl<'g> IdOperator<'g> for SpanIdOp<'g> {
    fn next(&mut self, cx: &mut ExecCtx<'g>) -> Result<Option<IdRow>, QueryError> {
        let start = Instant::now();
        let result = self.child.next(cx);
        observe_span(cx, self.name, start);
        result
    }
}

/// [`SpanIdOp`], for the solution layer.
pub(crate) struct SpanSolOp<'g> {
    child: BoxSolOp<'g>,
    name: &'static str,
}

impl<'g> SpanSolOp<'g> {
    pub(crate) fn new(child: BoxSolOp<'g>, name: &'static str) -> Self {
        SpanSolOp { child, name }
    }
}

impl<'g> SolOperator<'g> for SpanSolOp<'g> {
    fn next(&mut self, cx: &mut ExecCtx<'g>) -> Result<Option<Bindings>, QueryError> {
        let start = Instant::now();
        let result = self.child.next(cx);
        observe_span(cx, self.name, start);
        result
    }
}

fn observe_span(cx: &ExecCtx<'_>, name: &'static str, start: Instant) {
    if let Some(registry) = cx.spans {
        registry
            .histogram_with(
                OPERATOR_SECONDS,
                "Per-operator next() time of physical query plans",
                LATENCY_BUCKETS,
                &[("op", name)],
            )
            .observe_duration(start.elapsed());
    }
}
