//! Physical query plans: lowering, streaming execution, explain.
//!
//! The evaluator's resolved pattern tree is lowered into a pipeline of
//! pull-based operators ([`ops`]) rooted in a [`Rows`] iterator — the
//! streaming half of the engine API ([`PreparedQuery::rows`] returns
//! one; `select()` is a collect over it). Lowering preserves the
//! planner-chosen join order of every BGP, and a full drain of the
//! pipeline is byte-identical to the old materialize-everything
//! evaluator — including the parallel path, which still evaluates
//! eagerly into per-worker chunks and drains them in chunk order.
//! What streaming adds is early termination: `LIMIT k` stops pulling
//! (and therefore scanning) after `k` rows, and `ASK` after the first.
//!
//! Pipeline shape, bottom to top:
//!
//! ```text
//! Seed → (Scan → IndexedJoin* | Chunks) → Filter/Optional/Union*   id space
//!      → Project | Aggregate → Distinct → OrderBy → Slice → AskGate solution space
//! ```
//!
//! Pipeline breakers — operators that must see their whole input
//! before emitting a row — are `OrderBy`, aggregation/`GROUP BY`,
//! `UNION` (left arm first), and `SELECT *` (its header is
//! data-dependent). Everything else streams.
//!
//! [`PreparedQuery::rows`]: crate::PreparedQuery::rows

pub(crate) mod ops;

use crate::sparql::ast::{GraphPattern, Projection, Query, QueryForm, VarOrIri, VarOrTerm};
use crate::sparql::eval::{
    apply_aggregates, estimate, eval_parallel_chunks, plan_bgp, plan_tp_of_ast,
    plan_tp_of_resolved, resolve, Bindings, EvalCtx, EvalOptions, EvalState, PlanTp, QueryError,
    RPattern, RTriple, Resolved, Solutions, VarTable, UNBOUND,
};
use ops::{
    AskGateOp, BoxIdOp, BoxSolOp, BufferedSolOp, ChunksOp, DistinctOp, FilterOp, JoinOp,
    MaterialOp, OptionalOp, OrderByOp, ProjectOp, SeedOp, SliceOp, SpanIdOp, SpanSolOp, UnionOp,
};
use provbench_obs::{Registry, LATENCY_BUCKETS};
use provbench_rdf::Graph;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Histogram of evaluation times, observed once per evaluation (at
/// stream exhaustion, error, or drop — whichever comes first).
pub(crate) const EVAL_SECONDS: &str = "provbench_query_eval_seconds";
/// Counter of evaluations by outcome (`result="ok"|"timeout"|"error"`).
pub(crate) const EVALS_TOTAL: &str = "provbench_query_evals_total";
/// Counter of solution rows emitted by evaluations. Public so callers
/// (the endpoint's `/stats`) can read the same series they feed.
pub const ROWS_EMITTED_TOTAL: &str = "provbench_query_rows_emitted_total";
/// Histogram of per-operator `next()` times, labelled by operator
/// (`op="scan"|"join"|...`); recorded only under
/// [`EvalOptions::operator_spans`].
pub const OPERATOR_SECONDS: &str = "provbench_query_operator_seconds";

/// Shared execution context threaded through every operator: the graph,
/// the planner toggle (OPTIONAL/UNION subtrees re-plan their inner
/// BGPs), the deadline/row-budget accounting, and the optional span
/// registry.
pub(crate) struct ExecCtx<'g> {
    pub(crate) graph: &'g Graph,
    pub(crate) reorder: bool,
    pub(crate) state: EvalState<'static>,
    pub(crate) spans: Option<&'g Registry>,
}

// ------------------------------------------------------------ lowering --

/// Flatten nested groups into the sequential spine of pipeline stages,
/// taking ownership so operators can move the subtrees in.
fn flatten_owned(pattern: RPattern, out: &mut Vec<RPattern>) {
    match pattern {
        RPattern::Group(elems) => {
            for e in elems {
                flatten_owned(e, out);
            }
        }
        other => out.push(other),
    }
}

fn maybe_span_id<'g>(op: BoxIdOp<'g>, name: &'static str, spans: bool) -> BoxIdOp<'g> {
    if spans {
        Box::new(SpanIdOp::new(op, name))
    } else {
        op
    }
}

fn maybe_span_sol<'g>(op: BoxSolOp<'g>, name: &'static str, spans: bool) -> BoxSolOp<'g> {
    if spans {
        Box::new(SpanSolOp::new(op, name))
    } else {
        op
    }
}

/// Lower the resolved pattern spine into the id-space operator chain,
/// each BGP's joins in the same planner order the recursive evaluator
/// would pick.
fn lower_spine<'g>(
    pattern: RPattern,
    graph: &'g Graph,
    reorder: bool,
    nvars: usize,
    spans: bool,
) -> BoxIdOp<'g> {
    let mut stages = Vec::new();
    flatten_owned(pattern, &mut stages);
    let mut op: BoxIdOp<'g> = Box::new(SeedOp::new(nvars));
    let mut leading = true;
    for stage in stages {
        match stage {
            RPattern::Basic(tps) => {
                let order: Vec<usize> = if reorder {
                    let plan_tps: Vec<PlanTp> = tps
                        .iter()
                        .map(|tp| plan_tp_of_resolved(tp, graph))
                        .collect();
                    plan_bgp(&plan_tps).into_iter().map(|(i, _)| i).collect()
                } else {
                    (0..tps.len()).collect()
                };
                let mut slots: Vec<Option<RTriple>> = tps.into_iter().map(Some).collect();
                for idx in order {
                    let tp = slots[idx].take().expect("plan orders each pattern once");
                    let name = if leading { "scan" } else { "join" };
                    leading = false;
                    op = maybe_span_id(Box::new(JoinOp::new(op, tp)), name, spans);
                }
            }
            RPattern::Filter(expr) => {
                op = maybe_span_id(Box::new(FilterOp::new(op, expr)), "filter", spans);
            }
            RPattern::Optional(inner) => {
                leading = false;
                op = maybe_span_id(Box::new(OptionalOp::new(op, *inner)), "optional", spans);
            }
            RPattern::Union(l, r) => {
                leading = false;
                op = maybe_span_id(Box::new(UnionOp::new(op, *l, *r)), "union", spans);
            }
            RPattern::Group(_) => unreachable!("flatten_owned removed groups"),
        }
    }
    op
}

fn projection_names(query: &Query) -> Vec<String> {
    query
        .projections
        .iter()
        .map(|p| match p {
            Projection::Var(v) => v.clone(),
            Projection::Aggregate { alias, .. } => alias.clone(),
        })
        .collect()
}

fn keep_of(variables: &[String], vars: &VarTable) -> Vec<(usize, String)> {
    variables
        .iter()
        .filter_map(|name| {
            vars.index
                .get(name.as_str())
                .map(|&slot| (slot, name.clone()))
        })
        .collect()
}

struct Built<'g> {
    cx: ExecCtx<'g>,
    op: BoxSolOp<'g>,
    variables: Vec<String>,
}

/// Resolve, plan and lower `query` into an executable pipeline.
///
/// Pipeline breakers run here, at construction: the parallel path (its
/// chunks are evaluated eagerly on worker threads and drained in
/// order), aggregation, and `SELECT *`'s header scan. Everything else
/// is deferred to the first `next()` pull.
fn build<'g>(
    graph: &'g Graph,
    query: &Query,
    opts: &EvalOptions,
    metrics: Option<&'g Registry>,
) -> Result<Built<'g>, QueryError> {
    let Resolved {
        vars,
        pattern,
        group_by,
        aggregates,
    } = resolve(query, graph)?;
    let nvars = vars.names.len();
    let ctx = EvalCtx {
        graph,
        reorder: opts.reorder_patterns,
    };
    let mut cx = ExecCtx {
        graph,
        reorder: opts.reorder_patterns,
        state: EvalState::new(opts),
        spans: if opts.operator_spans { metrics } else { None },
    };
    let spans = cx.spans.is_some();

    // Id-row source: the parallel chunk drain when jobs and the pattern
    // shape allow it, else the streaming pipeline lowered from the
    // spine. The parallel path charges its rows through its own shared
    // cost state — exactly as before — so `cx.state` only meters the
    // serial streaming path.
    let source: BoxIdOp<'g> = match eval_parallel_chunks(&ctx, opts, &pattern, nvars, metrics)? {
        Some(chunks) => maybe_span_id(Box::new(ChunksOp::new(chunks)), "chunks", spans),
        None => lower_spine(pattern, graph, opts.reorder_patterns, nvars, spans),
    };

    let has_aggs = query.has_aggregates() || !query.group_by.is_empty();
    let variables: Vec<String>;
    let mut sol: BoxSolOp<'g>;
    if query.form == QueryForm::Ask {
        // ASK needs no decoded projection — stream empty rows and let
        // the gate stop at the first one.
        variables = Vec::new();
        sol = maybe_span_sol(
            Box::new(ProjectOp::new(source, Vec::new())),
            "project",
            spans,
        );
    } else if has_aggs {
        // Grouping needs every input row: drain the source now.
        let mut src = source;
        let mut id_rows = Vec::new();
        while let Some(r) = src.next(&mut cx)? {
            id_rows.push(r);
        }
        let mut rows = apply_aggregates(&vars, &group_by, &aggregates, id_rows, graph)?;
        variables = if query.projections.is_empty() {
            let mut names: BTreeSet<String> = BTreeSet::new();
            for r in &rows {
                names.extend(r.keys().cloned());
            }
            names.into_iter().collect()
        } else {
            projection_names(query)
        };
        for row in &mut rows {
            row.retain(|k, _| variables.contains(k));
        }
        sol = maybe_span_sol(Box::new(BufferedSolOp::new(rows)), "aggregate", spans);
    } else if query.projections.is_empty() {
        // SELECT *: the header (variables bound in at least one row,
        // sorted) is data-dependent, so the id rows materialize first.
        let mut src = source;
        let mut id_rows = Vec::new();
        while let Some(r) = src.next(&mut cx)? {
            id_rows.push(r);
        }
        let mut bound = vec![false; nvars];
        for r in &id_rows {
            for (slot, &raw) in r.iter().enumerate() {
                if raw != UNBOUND {
                    bound[slot] = true;
                }
            }
        }
        let mut names: Vec<String> = vars
            .names
            .iter()
            .enumerate()
            .filter(|(slot, _)| bound[*slot])
            .map(|(_, n)| n.clone())
            .collect();
        names.sort();
        variables = names;
        let keep = keep_of(&variables, &vars);
        sol = maybe_span_sol(
            Box::new(ProjectOp::new(Box::new(MaterialOp::new(id_rows)), keep)),
            "project",
            spans,
        );
    } else {
        variables = projection_names(query);
        let keep = keep_of(&variables, &vars);
        sol = maybe_span_sol(Box::new(ProjectOp::new(source, keep)), "project", spans);
    }

    // Solution modifiers, in the same order the materializing evaluator
    // applied them: DISTINCT → ORDER BY → OFFSET/LIMIT → ASK gate.
    if query.distinct {
        sol = maybe_span_sol(Box::new(DistinctOp::new(sol)), "distinct", spans);
    }
    if !query.order_by.is_empty() {
        sol = maybe_span_sol(
            Box::new(OrderByOp::new(sol, query.order_by.clone())),
            "orderby",
            spans,
        );
    }
    if query.offset > 0 || query.limit.is_some() {
        sol = maybe_span_sol(
            Box::new(SliceOp::new(sol, query.offset, query.limit)),
            "slice",
            spans,
        );
    }
    if query.form == QueryForm::Ask {
        sol = maybe_span_sol(Box::new(AskGateOp::new(sol)), "ask", spans);
    }

    Ok(Built {
        cx,
        op: sol,
        variables,
    })
}

// ----------------------------------------------------------- execution --

/// A streaming query result: the projected header plus an iterator of
/// solution rows, pulled on demand through the physical plan.
///
/// Yielded by [`PreparedQuery::rows`](crate::PreparedQuery::rows).
/// Draining it fully produces exactly the rows (and, on over-budget
/// queries, exactly the error) that `select()` returns — `select()` is
/// literally a collect over this iterator. Stopping early is the point:
/// dropping a partially-consumed `Rows` abandons the remaining scans,
/// releases the deadline/row-budget accounting that lived inside it,
/// and still records its metrics exactly once.
///
/// After the first `Err` (or the end of the stream) the iterator is
/// fused: every later `next()` returns `None`.
pub struct Rows<'g> {
    cx: ExecCtx<'g>,
    op: BoxSolOp<'g>,
    variables: Vec<String>,
    registry: Option<&'g Registry>,
    started: Instant,
    emitted: u64,
    finished: bool,
    recorded: bool,
}

impl<'g> Rows<'g> {
    /// The projected variable names, in projection order — available
    /// before any row is pulled (for `SELECT *` the header was computed
    /// at plan time).
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    fn finalize(&mut self, outcome: &'static str) {
        if self.recorded {
            return;
        }
        self.recorded = true;
        if let Some(registry) = self.registry {
            record(registry, self.started.elapsed(), outcome, self.emitted);
        }
    }
}

impl<'g> Iterator for Rows<'g> {
    type Item = Result<Bindings, QueryError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        match self.op.next(&mut self.cx) {
            Ok(Some(row)) => {
                self.emitted += 1;
                Some(Ok(row))
            }
            Ok(None) => {
                self.finished = true;
                self.finalize("ok");
                None
            }
            Err(e) => {
                self.finished = true;
                self.finalize(outcome_of(&e));
                Some(Err(e))
            }
        }
    }
}

impl<'g> Drop for Rows<'g> {
    fn drop(&mut self) {
        // A partially-consumed stream still records exactly once; rows
        // that were pulled count, abandoned work does not.
        self.finalize("ok");
    }
}

fn outcome_of(e: &QueryError) -> &'static str {
    match e {
        QueryError::Timeout(_) => "timeout",
        _ => "error",
    }
}

fn record(registry: &Registry, elapsed: Duration, outcome: &'static str, emitted: u64) {
    registry
        .histogram(
            EVAL_SECONDS,
            "Query evaluation wall-clock time",
            LATENCY_BUCKETS,
        )
        .observe_duration(elapsed);
    registry
        .counter_with(
            EVALS_TOTAL,
            "Query evaluations by outcome",
            &[("result", outcome)],
        )
        .inc();
    registry
        .counter(
            ROWS_EMITTED_TOTAL,
            "Solution rows emitted by query evaluations",
        )
        .add(emitted);
}

/// Build the physical plan for `query` and return its streaming
/// [`Rows`]. Metrics (evaluation latency, outcome, rows emitted) are
/// recorded into `metrics` exactly once per call — at exhaustion,
/// error, or drop; a failure during plan construction records here.
pub(crate) fn rows<'g>(
    graph: &'g Graph,
    query: &Query,
    opts: &EvalOptions,
    metrics: Option<&'g Registry>,
) -> Result<Rows<'g>, QueryError> {
    let started = Instant::now();
    match build(graph, query, opts, metrics) {
        Ok(built) => Ok(Rows {
            cx: built.cx,
            op: built.op,
            variables: built.variables,
            registry: metrics,
            started,
            emitted: 0,
            finished: false,
            recorded: false,
        }),
        Err(e) => {
            if let Some(registry) = metrics {
                record(registry, started.elapsed(), outcome_of(&e), 0);
            }
            Err(e)
        }
    }
}

/// Evaluate to a fully-materialized [`Solutions`]: a collect over
/// [`rows`]. This is the old `eval::run` contract, byte for byte.
pub(crate) fn solutions(
    graph: &Graph,
    query: &Query,
    opts: &EvalOptions,
    metrics: Option<&Registry>,
) -> Result<Solutions, QueryError> {
    let mut stream = rows(graph, query, opts, metrics)?;
    let variables = stream.variables().to_vec();
    let mut out = Vec::new();
    for row in &mut stream {
        out.push(row?);
    }
    Ok(Solutions {
        variables,
        rows: out,
    })
}

// ------------------------------------------------------------- explain --

fn render_s(p: &VarOrTerm) -> String {
    match p {
        VarOrTerm::Var(v) => format!("?{v}"),
        VarOrTerm::Term(t) => t.to_string(),
    }
}

fn render_p(p: &VarOrIri) -> String {
    match p {
        VarOrIri::Var(v) => format!("?{v}"),
        VarOrIri::Iri(i) => i.to_string(),
    }
}

/// Render the physical operator tree without graph statistics (the
/// planner falls back to structural selectivity). Prefer
/// [`explain_on`], which annotates operators with real estimates.
#[cfg(test)]
pub(crate) fn explain(query: &Query, opts: &EvalOptions) -> String {
    explain_impl(None, query, opts)
}

/// Render the physical operator tree the plan layer would execute for
/// `query` against `graph`: pipeline stages in execution order (BGP
/// joins in planner order, each annotated with its cardinality
/// estimate), then the solution operators with their pushdown notes.
pub(crate) fn explain_on(graph: &Graph, query: &Query, opts: &EvalOptions) -> String {
    explain_impl(Some(graph), query, opts)
}

fn explain_impl(graph: Option<&Graph>, query: &Query, opts: &EvalOptions) -> String {
    let mut out = String::new();
    let form = match query.form {
        QueryForm::Select => "SELECT",
        QueryForm::Ask => "ASK",
    };
    out.push_str(&format!(
        "{form} plan (planner {}):\n",
        if opts.reorder_patterns { "on" } else { "off" }
    ));
    let mut leading = true;
    render_pattern(&query.pattern, 1, &mut leading, graph, opts, &mut out);
    let has_aggs = query.has_aggregates() || !query.group_by.is_empty();
    if has_aggs {
        if query.group_by.is_empty() {
            out.push_str("  Aggregate (materializes)\n");
        } else {
            out.push_str(&format!(
                "  Aggregate GroupBy {:?} (materializes)\n",
                query.group_by
            ));
        }
    }
    if query.form == QueryForm::Select {
        if query.projections.is_empty() && !has_aggs {
            out.push_str("  Project * (materializes: header is data-dependent)\n");
        } else {
            out.push_str(&format!("  Project {:?}\n", projection_names(query)));
        }
    }
    if query.distinct {
        out.push_str("  Distinct (streamed)\n");
    }
    if !query.order_by.is_empty() {
        out.push_str(&format!(
            "  OrderBy {:?} (materializes)\n",
            query.order_by.iter().map(|k| &k.var).collect::<Vec<_>>()
        ));
    }
    if query.offset > 0 {
        out.push_str(&format!("  Offset {}\n", query.offset));
    }
    if let Some(l) = query.limit {
        if query.order_by.is_empty() && !has_aggs {
            out.push_str(&format!(
                "  Limit {l} (pushed: stops the scan after {l} rows)\n"
            ));
        } else {
            out.push_str(&format!("  Limit {l}\n"));
        }
    }
    if query.form == QueryForm::Ask {
        out.push_str("  AskGate (first row short-circuits)\n");
    }
    out
}

fn render_pattern(
    p: &GraphPattern,
    depth: usize,
    leading: &mut bool,
    graph: Option<&Graph>,
    opts: &EvalOptions,
    out: &mut String,
) {
    let pad = "  ".repeat(depth);
    match p {
        GraphPattern::Basic(tps) => {
            let mut names = VarTable::default();
            let plan_tps: Vec<PlanTp> = tps
                .iter()
                .map(|tp| plan_tp_of_ast(tp, graph, &mut names))
                .collect();
            let order: Vec<(usize, u64)> = if opts.reorder_patterns {
                plan_bgp(&plan_tps)
            } else {
                plan_tps
                    .iter()
                    .enumerate()
                    .map(|(i, tp)| (i, estimate(tp, 0)))
                    .collect()
            };
            for (idx, est) in order {
                let tp = &tps[idx];
                let name = if *leading { "Scan" } else { "IndexedJoin" };
                *leading = false;
                out.push_str(&format!(
                    "{pad}{name} {} {} {}",
                    render_s(&tp.subject),
                    render_p(&tp.predicate),
                    render_s(&tp.object),
                ));
                if graph.is_some() {
                    out.push_str(&format!("  (est ~{est} rows)"));
                }
                out.push('\n');
            }
        }
        GraphPattern::Group(elems) => {
            // Nested groups flatten onto the pipeline spine.
            for e in elems {
                render_pattern(e, depth, leading, graph, opts, out);
            }
        }
        GraphPattern::Optional(inner) => {
            out.push_str(&format!("{pad}Optional (per-row probe)\n"));
            let mut inner_leading = false;
            render_pattern(inner, depth + 1, &mut inner_leading, graph, opts, out);
            *leading = false;
        }
        GraphPattern::Union(l, r) => {
            out.push_str(&format!("{pad}Union (drains input; left arm then right)\n"));
            let mut arm = false;
            render_pattern(l, depth + 1, &mut arm, graph, opts, out);
            let mut arm = false;
            render_pattern(r, depth + 1, &mut arm, graph, opts, out);
            *leading = false;
        }
        GraphPattern::Filter(_) => {
            out.push_str(&format!("{pad}Filter\n"));
        }
    }
}
