//! # provbench-query
//!
//! A SPARQL-subset query engine over `provbench-rdf` graphs, plus the
//! paper's six exemplar provenance queries ([`exemplar`]).
//!
//! ## Supported SPARQL surface
//!
//! `PREFIX`, `SELECT` (variables, `*`, `DISTINCT`, aggregate projections
//! `(COUNT(?x) AS ?n)` / `COUNT(*)` / `MIN` / `MAX`), basic graph
//! patterns with `a` and `;`/`,` abbreviations, `OPTIONAL`, `UNION`,
//! `FILTER` with comparisons, logical operators, `BOUND`, `REGEX` and
//! `STR`, `GROUP BY`, `ORDER BY` (with `ASC`/`DESC`), `LIMIT` and
//! `OFFSET`.
//!
//! ## Example
//!
//! The primary API is [`QueryEngine`]: bind it to a graph, prepare
//! queries, run them.
//!
//! ```
//! use provbench_query::QueryEngine;
//! use provbench_rdf::parse_turtle;
//!
//! let (graph, _) = parse_turtle(r#"
//!   @prefix prov: <http://www.w3.org/ns/prov#> .
//!   <http://e/r1> a prov:Activity .
//!   <http://e/r2> a prov:Activity .
//! "#).unwrap();
//! let engine = QueryEngine::new(&graph);
//! let results = engine.prepare(r#"
//!   PREFIX prov: <http://www.w3.org/ns/prov#>
//!   SELECT ?r WHERE { ?r a prov:Activity } ORDER BY ?r
//! "#).unwrap().select().unwrap();
//! assert_eq!(results.len(), 2);
//! ```

pub mod engine;
pub mod exemplar;
pub mod plan;
pub mod sparql;

pub use engine::{PreparedQuery, QueryEngine};
pub use plan::Rows;
pub use sparql::eval::{Bindings, EvalOptions, QueryError, Solutions};
pub use sparql::parser::{parse_query, QueryParseError};
