//! # provbench-query
//!
//! A SPARQL-subset query engine over `provbench-rdf` graphs, plus the
//! paper's six exemplar provenance queries ([`exemplar`]).
//!
//! ## Supported SPARQL surface
//!
//! `PREFIX`, `SELECT` (variables, `*`, `DISTINCT`, aggregate projections
//! `(COUNT(?x) AS ?n)` / `COUNT(*)` / `MIN` / `MAX`), basic graph
//! patterns with `a` and `;`/`,` abbreviations, `OPTIONAL`, `UNION`,
//! `FILTER` with comparisons, logical operators, `BOUND`, `REGEX` and
//! `STR`, `GROUP BY`, `ORDER BY` (with `ASC`/`DESC`), `LIMIT` and
//! `OFFSET`.
//!
//! ## Example
//!
//! ```
//! use provbench_query::execute_query;
//! use provbench_rdf::{parse_turtle};
//!
//! let (graph, _) = parse_turtle(r#"
//!   @prefix prov: <http://www.w3.org/ns/prov#> .
//!   <http://e/r1> a prov:Activity .
//!   <http://e/r2> a prov:Activity .
//! "#).unwrap();
//! let results = execute_query(&graph, r#"
//!   PREFIX prov: <http://www.w3.org/ns/prov#>
//!   SELECT ?r WHERE { ?r a prov:Activity } ORDER BY ?r
//! "#).unwrap();
//! assert_eq!(results.len(), 2);
//! ```

pub mod exemplar;
pub mod sparql;

pub use sparql::eval::{
    execute, execute_ask, execute_with_options, explain, Bindings, EvalOptions, QueryError,
    Solutions,
};
pub use sparql::parser::parse_query;

use provbench_rdf::Graph;

/// Parse and execute a SPARQL query over a graph.
pub fn execute_query(graph: &Graph, query: &str) -> Result<Solutions, QueryError> {
    let q = parse_query(query).map_err(QueryError::Parse)?;
    execute(graph, &q)
}

/// Parse and execute an `ASK` query, returning its boolean answer.
pub fn ask_query(graph: &Graph, query: &str) -> Result<bool, QueryError> {
    let q = parse_query(query).map_err(QueryError::Parse)?;
    execute_ask(graph, &q)
}
