//! The unified query API: [`QueryEngine`] prepares queries against one
//! graph, [`PreparedQuery`] executes them.
//!
//! Preparation parses the query text once; the resulting plan is held
//! behind an [`Arc`] so callers (notably the endpoint's plan cache) can
//! share one parsed query across requests without re-parsing:
//!
//! ```
//! use provbench_query::QueryEngine;
//! use provbench_rdf::parse_turtle;
//!
//! let (graph, _) = parse_turtle(r#"
//!   @prefix prov: <http://www.w3.org/ns/prov#> .
//!   <http://e/r1> a prov:Activity .
//! "#).unwrap();
//! let engine = QueryEngine::new(&graph);
//! let prepared = engine.prepare(
//!     "PREFIX prov: <http://www.w3.org/ns/prov#> SELECT ?r WHERE { ?r a prov:Activity }",
//! ).unwrap();
//! assert_eq!(prepared.select().unwrap().len(), 1);
//! ```

use crate::plan::{self, Rows};
use crate::sparql::ast::Query;
use crate::sparql::eval::{EvalOptions, QueryError, Solutions};
use crate::sparql::parser::parse_query;
use provbench_obs::{Registry, LATENCY_BUCKETS};
use provbench_rdf::Graph;
use std::sync::Arc;
use std::time::Instant;

/// Histogram of query-text parse times, observed by every `prepare`.
const PREPARE_SECONDS: &str = "provbench_query_prepare_seconds";

/// A query engine bound to one graph.
///
/// Cheap to construct (it borrows the graph and copies the options);
/// make one per graph, or per request when per-request options such as
/// deadlines are in play.
///
/// Every engine records prepare/eval timings into a metrics
/// [`Registry`] — the process-wide [`provbench_obs::global`] one by
/// default, or an explicit registry via [`QueryEngine::with_metrics`]
/// (the endpoint threads its own through so `GET /metrics` and tests
/// see exactly the traffic they generated).
#[derive(Clone, Copy, Debug)]
pub struct QueryEngine<'g> {
    graph: &'g Graph,
    options: EvalOptions,
    metrics: Option<&'g Registry>,
}

impl<'g> QueryEngine<'g> {
    /// An engine over `graph` with default options (selectivity planner
    /// on, no deadline or row budget).
    pub fn new(graph: &'g Graph) -> Self {
        QueryEngine {
            graph,
            options: EvalOptions::default(),
            metrics: None,
        }
    }

    /// An engine over `graph` with explicit options.
    pub fn with_options(graph: &'g Graph, options: EvalOptions) -> Self {
        QueryEngine {
            graph,
            options,
            metrics: None,
        }
    }

    /// Record this engine's timings into `registry` instead of the
    /// process-wide global one.
    pub fn with_metrics(mut self, registry: &'g Registry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// The registry this engine records into.
    fn registry(&self) -> &Registry {
        self.metrics
            .unwrap_or_else(|| provbench_obs::global().as_ref())
    }

    /// The evaluation options this engine runs with.
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// The graph this engine queries.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The planner's cardinality statistics for the bound graph: every
    /// predicate paired with its triple count, in IRI order.
    ///
    /// Sorted by IRI (not by interner id) so the numbers compare across
    /// graphs with different intern orders — in particular, a cold
    /// source parse versus a warm snapshot load of the same corpus must
    /// report identical statistics, which is how the snapshot loader's
    /// persisted stats are cross-checked end to end.
    pub fn predicate_statistics(&self) -> Vec<(provbench_rdf::Iri, usize)> {
        let mut stats: Vec<(provbench_rdf::Iri, usize)> = self
            .graph
            .predicates()
            .into_iter()
            .map(|p| {
                let count = self
                    .graph
                    .term_to_id(&provbench_rdf::Term::Iri(p.clone()))
                    .map(|id| self.graph.predicate_cardinality(id))
                    .unwrap_or(0);
                (p, count)
            })
            .collect();
        stats.sort_by(|(a, _), (b, _)| a.as_str().cmp(b.as_str()));
        stats
    }

    /// Parse `text` into an executable [`PreparedQuery`].
    pub fn prepare(&self, text: &str) -> Result<PreparedQuery<'g>, QueryError> {
        let start = Instant::now();
        let parsed = parse_query(text);
        self.registry()
            .histogram(
                PREPARE_SECONDS,
                "Time spent parsing SPARQL query text",
                LATENCY_BUCKETS,
            )
            .observe_duration(start.elapsed());
        let query = parsed.map_err(QueryError::Parse)?;
        Ok(self.prepare_parsed(Arc::new(query)))
    }

    /// Wrap an already-parsed query (e.g. one served from a plan cache)
    /// without re-parsing.
    pub fn prepare_parsed(&self, query: Arc<Query>) -> PreparedQuery<'g> {
        PreparedQuery {
            graph: self.graph,
            options: self.options,
            metrics: self.metrics,
            query,
        }
    }
}

/// A parsed query bound to a graph, ready to run any number of times.
#[derive(Clone, Debug)]
pub struct PreparedQuery<'g> {
    graph: &'g Graph,
    options: EvalOptions,
    metrics: Option<&'g Registry>,
    query: Arc<Query>,
}

impl<'g> PreparedQuery<'g> {
    /// The registry evaluations record into.
    fn registry(&self) -> &'g Registry {
        match self.metrics {
            Some(r) => r,
            None => provbench_obs::global().as_ref(),
        }
    }

    /// Evaluate and return the solution rows, fully materialized.
    ///
    /// This is exactly `rows()` collected to the end: same rows, same
    /// order, same errors.
    pub fn select(&self) -> Result<Solutions, QueryError> {
        self.select_with(&self.options)
    }

    /// Evaluate as a boolean: true iff any solution exists. Works for
    /// `ASK` and `SELECT` forms alike.
    ///
    /// Routed through the streaming first-row fast path: evaluation
    /// stops — and its scans stop — as soon as one row is produced,
    /// so an ASK over an adversarial join costs one probe chain, not
    /// the cross product. Serial evaluation is forced because the
    /// parallel path materializes whole chunks eagerly.
    pub fn ask(&self) -> Result<bool, QueryError> {
        let options = self.options.with_jobs(1);
        let mut rows = plan::rows(self.graph, &self.query, &options, Some(self.registry()))?;
        match rows.next() {
            Some(Ok(_)) => Ok(true),
            Some(Err(e)) => Err(e),
            None => Ok(false),
        }
    }

    /// Evaluate with different options than the engine's (e.g. a
    /// per-request deadline on a cached plan).
    pub fn select_with(&self, options: &EvalOptions) -> Result<Solutions, QueryError> {
        plan::solutions(self.graph, &self.query, options, Some(self.registry()))
    }

    /// Evaluate lazily: a streaming [`Rows`] iterator over the solution
    /// rows, pulled on demand through the physical plan.
    ///
    /// Dropping the iterator early abandons the remaining work — this
    /// is how `LIMIT`-style consumers avoid paying full-evaluation
    /// cost. A full drain is byte-identical to [`select`](Self::select)
    /// (which is implemented as a collect over this).
    pub fn rows(&self) -> Result<Rows<'g>, QueryError> {
        self.rows_with(&self.options)
    }

    /// Like [`rows`](Self::rows), with per-call options (e.g. a
    /// per-request deadline on a cached plan).
    pub fn rows_with(&self, options: &EvalOptions) -> Result<Rows<'g>, QueryError> {
        plan::rows(self.graph, &self.query, options, Some(self.registry()))
    }

    /// The physical operator tree as indented text: pipeline stages in
    /// execution order, BGPs in planner-chosen join order with
    /// per-operator cardinality estimates from the bound graph's
    /// statistics, and pushdown annotations.
    pub fn explain(&self) -> String {
        plan::explain_on(self.graph, &self.query, &self.options)
    }

    /// The parsed query, shareable (e.g. for a plan cache).
    pub fn query(&self) -> &Arc<Query> {
        &self.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_rdf::parse_turtle;

    fn graph() -> Graph {
        let (g, _) = parse_turtle(
            r#"
            @prefix e: <http://e/> .
            e:r1 a e:Run ; e:by e:alice .
            e:r2 a e:Run ; e:by e:bob .
            "#,
        )
        .unwrap();
        g
    }

    #[test]
    fn prepare_select_ask_explain() {
        let g = graph();
        let engine = QueryEngine::new(&g);
        let p = engine
            .prepare("PREFIX e: <http://e/> SELECT ?r WHERE { ?r a e:Run } ORDER BY ?r")
            .unwrap();
        let s = p.select().unwrap();
        assert_eq!(s.len(), 2);
        assert!(p.ask().unwrap());
        let plan = p.explain();
        assert!(plan.contains("SELECT plan (planner on)"), "{plan}");
        assert!(plan.contains("est ~"), "{plan}");

        let none = engine
            .prepare("PREFIX e: <http://e/> ASK { ?r a e:Workflow }")
            .unwrap();
        assert!(!none.ask().unwrap());
    }

    #[test]
    fn prepare_surfaces_parse_errors() {
        let g = graph();
        match QueryEngine::new(&g).prepare("SELECT WHERE") {
            Err(QueryError::Parse(e)) => assert!(e.line >= 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn prepared_query_is_reusable_and_shareable() {
        let g = graph();
        let engine = QueryEngine::new(&g);
        let p = engine
            .prepare("PREFIX e: <http://e/> SELECT ?who WHERE { ?r e:by ?who }")
            .unwrap();
        let a = p.select().unwrap();
        let b = p.select().unwrap();
        assert_eq!(a, b);
        // The plan is shared, not re-parsed.
        let again = engine.prepare_parsed(Arc::clone(p.query()));
        assert_eq!(again.select().unwrap(), a);
        assert!(Arc::ptr_eq(p.query(), again.query()));
    }

    #[test]
    fn predicate_statistics_are_iri_ordered_and_intern_order_independent() {
        let g = graph();
        let stats = QueryEngine::new(&g).predicate_statistics();
        let names: Vec<&str> = stats.iter().map(|(p, _)| p.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(stats.len(), 2); // rdf:type and e:by
        assert!(stats.iter().all(|(_, n)| *n == 2));

        // Same triples inserted in a different order intern differently
        // but must report identical statistics.
        let (shuffled, _) = parse_turtle(
            r#"
            @prefix e: <http://e/> .
            e:r2 e:by e:bob . e:r2 a e:Run .
            e:r1 e:by e:alice . e:r1 a e:Run .
            "#,
        )
        .unwrap();
        assert_eq!(QueryEngine::new(&shuffled).predicate_statistics(), stats);
    }

    #[test]
    fn ask_uses_first_row_fast_path_on_adversarial_cross_join() {
        let g = graph();
        // Budget of 2 = one charged row per join level on the
        // first-row path; the materialized cross join (4 triples
        // self-joined, 16 rows) trips it immediately.
        let tight = EvalOptions::default().with_row_budget(2);
        let engine = QueryEngine::with_options(&g, tight);
        let ask = engine.prepare("ASK { ?a ?b ?c . ?d ?e ?f }").unwrap();
        assert!(ask.ask().unwrap());

        let select = engine
            .prepare("SELECT ?a WHERE { ?a ?b ?c . ?d ?e ?f }")
            .unwrap();
        match select.select() {
            Err(QueryError::Timeout(_)) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        // ask() takes the same early-exit path even on a SELECT form.
        assert!(select.ask().unwrap());
    }

    #[test]
    fn rows_streams_and_matches_select() {
        let g = graph();
        let engine = QueryEngine::new(&g);
        let p = engine
            .prepare("PREFIX e: <http://e/> SELECT ?r WHERE { ?r a e:Run } ORDER BY ?r")
            .unwrap();
        let rows = p.rows().unwrap();
        assert_eq!(rows.variables(), ["r"]);
        let streamed: Vec<_> = rows.map(Result::unwrap).collect();
        let materialized = p.select().unwrap();
        assert_eq!(streamed, materialized.rows);

        // A partially-consumed iterator can be dropped mid-stream and
        // the plan stays reusable.
        let mut partial = p.rows().unwrap();
        assert!(partial.next().is_some());
        drop(partial);
        assert_eq!(p.select().unwrap().len(), 2);
    }

    #[test]
    fn per_request_options_on_cached_plan() {
        let g = graph();
        let engine = QueryEngine::new(&g);
        let p = engine
            .prepare("SELECT * WHERE { ?a ?b ?c . ?d ?e ?f . ?g ?h ?i }")
            .unwrap();
        let tight = EvalOptions::default().with_row_budget(5);
        match p.select_with(&tight) {
            Err(QueryError::Timeout(_)) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        // The engine's own (unbounded) options still work.
        assert!(p.select().is_ok());
    }
}
