//! Recursive-descent parser for the SPARQL subset.

use super::ast::*;
use super::lexer::{tokenize, LexError, SpannedTok, Tok};
use provbench_rdf::{Iri, Literal, PrefixMap, Term};
use std::fmt;

/// A parse error with a source span, shaped like `rdf::ParseError` and
/// consumable as a `diag`-style [`Span`](provbench_rdf::Span).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
    /// 1-based line of the first position past the offending token.
    pub end_line: usize,
    /// 1-based column of the first position past the offending token.
    pub end_column: usize,
    /// Description.
    pub message: String,
}

impl QueryParseError {
    /// The error location as an [`rdf::Span`](provbench_rdf::Span), for
    /// diagnostics rendering.
    pub fn span(&self) -> provbench_rdf::Span {
        provbench_rdf::Span {
            line: self.line,
            column: self.column,
            end_line: self.end_line,
            end_column: self.end_column,
        }
    }
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for QueryParseError {}

impl From<LexError> for QueryParseError {
    fn from(e: LexError) -> Self {
        QueryParseError {
            line: e.line,
            column: e.column,
            end_line: e.line,
            end_column: e.column,
            message: e.message,
        }
    }
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    prefixes: PrefixMap,
}

type PResult<T> = Result<T, QueryParseError>;

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    /// An error spanning the current token.
    fn err_here(&self, message: impl Into<String>) -> QueryParseError {
        let t = &self.toks[self.pos];
        QueryParseError {
            line: t.line,
            column: t.column,
            end_line: t.end_line,
            end_column: t.end_column,
            message: message.into(),
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(self.err_here(message))
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> PResult<()> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Keyword(k) if k == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> PResult<()> {
        if self.keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected {kw}, found {:?}", self.peek()))
        }
    }

    fn expand(&self, prefix: &str, local: &str) -> PResult<Iri> {
        match self.prefixes.get(prefix) {
            Some(ns) => Iri::new(format!("{ns}{local}")).map_err(|_| {
                self.err_here(format!("CURIE {prefix}:{local} expands to an invalid IRI"))
            }),
            None => Err(self.err_here(format!("unbound prefix {prefix:?}"))),
        }
    }

    fn parse_query(&mut self) -> PResult<Query> {
        // Prologue.
        while self.keyword("PREFIX") {
            let (p, l) = match self.bump() {
                Tok::PName(p, l) => (p, l),
                other => return self.err(format!("expected prefix name, found {other:?}")),
            };
            if !l.is_empty() {
                return self.err("prefix declaration must end with a bare `:`");
            }
            let iri = match self.bump() {
                Tok::IriRef(i) => i,
                other => return self.err(format!("expected IRI, found {other:?}")),
            };
            self.prefixes.insert(p, iri);
        }

        // ASK { pattern } — no projections or solution modifiers.
        if self.keyword("ASK") {
            let _ = self.keyword("WHERE");
            let pattern = self.parse_group_graph_pattern()?;
            if !matches!(self.peek(), Tok::Eof) {
                return self.err(format!("unexpected trailing {:?}", self.peek()));
            }
            return Ok(Query {
                form: QueryForm::Ask,
                projections: Vec::new(),
                distinct: false,
                pattern,
                group_by: Vec::new(),
                order_by: Vec::new(),
                limit: Some(1),
                offset: 0,
            });
        }

        self.expect_keyword("SELECT")?;
        let distinct = self.keyword("DISTINCT");
        let mut projections = Vec::new();
        if matches!(self.peek(), Tok::Star) {
            self.bump();
        } else {
            loop {
                match self.peek().clone() {
                    Tok::Var(v) => {
                        self.bump();
                        projections.push(Projection::Var(v));
                    }
                    Tok::OpenParen => {
                        self.bump();
                        projections.push(self.parse_aggregate_projection()?);
                    }
                    _ => break,
                }
            }
            if projections.is_empty() {
                return self.err("SELECT needs at least one projection or `*`");
            }
        }

        // WHERE is optional in SPARQL.
        let _ = self.keyword("WHERE");
        let pattern = self.parse_group_graph_pattern()?;

        let mut group_by = Vec::new();
        if self.keyword("GROUP") {
            self.expect_keyword("BY")?;
            while let Tok::Var(v) = self.peek().clone() {
                self.bump();
                group_by.push(v);
            }
            if group_by.is_empty() {
                return self.err("GROUP BY needs at least one variable");
            }
        }

        let mut order_by = Vec::new();
        if self.keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                match self.peek().clone() {
                    Tok::Var(v) => {
                        self.bump();
                        order_by.push(OrderKey {
                            var: v,
                            descending: false,
                        });
                    }
                    Tok::Keyword(k) if k == "ASC" || k == "DESC" => {
                        self.bump();
                        self.expect(&Tok::OpenParen, "`(`")?;
                        let v = match self.bump() {
                            Tok::Var(v) => v,
                            other => {
                                return self.err(format!("expected variable, found {other:?}"))
                            }
                        };
                        self.expect(&Tok::CloseParen, "`)`")?;
                        order_by.push(OrderKey {
                            var: v,
                            descending: k == "DESC",
                        });
                    }
                    _ => break,
                }
            }
            if order_by.is_empty() {
                return self.err("ORDER BY needs at least one key");
            }
        }

        let mut limit = None;
        let mut offset = 0usize;
        loop {
            if self.keyword("LIMIT") {
                match self.bump() {
                    Tok::Integer(n) if n >= 0 => limit = Some(n as usize),
                    other => return self.err(format!("expected limit count, found {other:?}")),
                }
            } else if self.keyword("OFFSET") {
                match self.bump() {
                    Tok::Integer(n) if n >= 0 => offset = n as usize,
                    other => return self.err(format!("expected offset, found {other:?}")),
                }
            } else {
                break;
            }
        }

        if !matches!(self.peek(), Tok::Eof) {
            return self.err(format!("unexpected trailing {:?}", self.peek()));
        }

        Ok(Query {
            form: QueryForm::Select,
            projections,
            distinct,
            pattern,
            group_by,
            order_by,
            limit,
            offset,
        })
    }

    /// After the opening `(` of `(COUNT(?x) AS ?alias)`.
    fn parse_aggregate_projection(&mut self) -> PResult<Projection> {
        let func_kw = match self.bump() {
            Tok::Keyword(k) if matches!(k.as_str(), "COUNT" | "MIN" | "MAX") => k,
            other => return self.err(format!("expected aggregate function, found {other:?}")),
        };
        self.expect(&Tok::OpenParen, "`(`")?;
        let (function, var) = match func_kw.as_str() {
            "COUNT" => {
                if matches!(self.peek(), Tok::Star) {
                    self.bump();
                    (AggregateFn::Count, None)
                } else {
                    let distinct = self.keyword("DISTINCT");
                    let v = match self.bump() {
                        Tok::Var(v) => v,
                        other => return self.err(format!("expected variable, found {other:?}")),
                    };
                    (
                        if distinct {
                            AggregateFn::CountDistinct
                        } else {
                            AggregateFn::Count
                        },
                        Some(v),
                    )
                }
            }
            "MIN" | "MAX" => {
                let v = match self.bump() {
                    Tok::Var(v) => v,
                    other => return self.err(format!("expected variable, found {other:?}")),
                };
                (
                    if func_kw == "MIN" {
                        AggregateFn::Min
                    } else {
                        AggregateFn::Max
                    },
                    Some(v),
                )
            }
            _ => unreachable!(),
        };
        self.expect(&Tok::CloseParen, "`)`")?;
        self.expect_keyword("AS")?;
        let alias = match self.bump() {
            Tok::Var(v) => v,
            other => return self.err(format!("expected alias variable, found {other:?}")),
        };
        self.expect(&Tok::CloseParen, "`)`")?;
        Ok(Projection::Aggregate {
            function,
            var,
            alias,
        })
    }

    fn parse_group_graph_pattern(&mut self) -> PResult<GraphPattern> {
        self.expect(&Tok::OpenBrace, "`{`")?;
        let mut elements: Vec<GraphPattern> = Vec::new();
        loop {
            match self.peek().clone() {
                Tok::CloseBrace => {
                    self.bump();
                    break;
                }
                Tok::Eof => return self.err("unterminated group pattern"),
                Tok::Keyword(k) if k == "OPTIONAL" => {
                    self.bump();
                    let inner = self.parse_group_graph_pattern()?;
                    elements.push(GraphPattern::Optional(Box::new(inner)));
                }
                Tok::Keyword(k) if k == "FILTER" => {
                    self.bump();
                    let e = self.parse_constraint()?;
                    elements.push(GraphPattern::Filter(e));
                }
                Tok::OpenBrace => {
                    let mut left = self.parse_group_graph_pattern()?;
                    while self.keyword("UNION") {
                        let right = self.parse_group_graph_pattern()?;
                        left = GraphPattern::Union(Box::new(left), Box::new(right));
                    }
                    elements.push(left);
                }
                Tok::Dot => {
                    self.bump();
                }
                _ => {
                    let triples = self.parse_triples_block()?;
                    elements.push(GraphPattern::Basic(triples));
                }
            }
        }
        Ok(if elements.len() == 1 {
            elements.pop().expect("len checked")
        } else {
            GraphPattern::Group(elements)
        })
    }

    fn parse_triples_block(&mut self) -> PResult<Vec<TriplePattern>> {
        let mut out = Vec::new();
        loop {
            let subject = self.parse_var_or_term()?;
            loop {
                let predicate = self.parse_var_or_iri()?;
                loop {
                    let object = self.parse_var_or_term()?;
                    out.push(TriplePattern {
                        subject: subject.clone(),
                        predicate: predicate.clone(),
                        object,
                    });
                    if matches!(self.peek(), Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                if matches!(self.peek(), Tok::Semicolon) {
                    self.bump();
                    // A dangling `;` before `.`/`}` is tolerated.
                    if matches!(self.peek(), Tok::Dot | Tok::CloseBrace) {
                        break;
                    }
                } else {
                    break;
                }
            }
            if matches!(self.peek(), Tok::Dot) {
                self.bump();
                // Another triples row may follow unless the block ends.
                if matches!(
                    self.peek(),
                    Tok::CloseBrace | Tok::Eof | Tok::Keyword(_) | Tok::OpenBrace
                ) {
                    break;
                }
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn parse_var_or_term(&mut self) -> PResult<VarOrTerm> {
        match self.bump() {
            Tok::Var(v) => Ok(VarOrTerm::Var(v)),
            Tok::IriRef(i) => Ok(VarOrTerm::Term(Term::Iri(self.iri_from(&i)?))),
            Tok::PName(p, l) => Ok(VarOrTerm::Term(Term::Iri(self.expand(&p, &l)?))),
            Tok::String(s) => {
                // Optional ^^datatype.
                if matches!(self.peek(), Tok::DoubleCaret) {
                    self.bump();
                    let dt = match self.bump() {
                        Tok::IriRef(i) => self.iri_from(&i)?,
                        Tok::PName(p, l) => self.expand(&p, &l)?,
                        other => return self.err(format!("expected datatype, found {other:?}")),
                    };
                    Ok(VarOrTerm::Term(Term::Literal(Literal::typed(s, dt))))
                } else {
                    Ok(VarOrTerm::Term(Term::Literal(Literal::simple(s))))
                }
            }
            Tok::Integer(n) => Ok(VarOrTerm::Term(Term::Literal(Literal::integer(n)))),
            Tok::Decimal(d) => Ok(VarOrTerm::Term(Term::Literal(Literal::typed(
                d,
                Iri::new_unchecked(provbench_rdf::xsd::DECIMAL),
            )))),
            Tok::Keyword(k) if k == "TRUE" => {
                Ok(VarOrTerm::Term(Term::Literal(Literal::boolean(true))))
            }
            Tok::Keyword(k) if k == "FALSE" => {
                Ok(VarOrTerm::Term(Term::Literal(Literal::boolean(false))))
            }
            other => self.err(format!("expected term or variable, found {other:?}")),
        }
    }

    fn iri_from(&self, raw: &str) -> PResult<Iri> {
        Iri::new(raw).map_err(|_| self.err_here(format!("invalid IRI <{raw}>")))
    }

    fn parse_var_or_iri(&mut self) -> PResult<VarOrIri> {
        match self.bump() {
            Tok::Var(v) => Ok(VarOrIri::Var(v)),
            Tok::A => Ok(VarOrIri::Iri(Iri::new_unchecked(
                "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
            ))),
            Tok::IriRef(i) => Ok(VarOrIri::Iri(self.iri_from(&i)?)),
            Tok::PName(p, l) => Ok(VarOrIri::Iri(self.expand(&p, &l)?)),
            other => self.err(format!("expected predicate, found {other:?}")),
        }
    }

    fn parse_constraint(&mut self) -> PResult<Expression> {
        // FILTER (expr) or FILTER builtin(...).
        if matches!(self.peek(), Tok::OpenParen) {
            self.bump();
            let e = self.parse_expression()?;
            self.expect(&Tok::CloseParen, "`)`")?;
            Ok(e)
        } else {
            self.parse_primary_expression()
        }
    }

    fn parse_expression(&mut self) -> PResult<Expression> {
        let mut left = self.parse_and_expression()?;
        while matches!(self.peek(), Tok::OrOr) {
            self.bump();
            let right = self.parse_and_expression()?;
            left = Expression::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and_expression(&mut self) -> PResult<Expression> {
        let mut left = self.parse_relational_expression()?;
        while matches!(self.peek(), Tok::AndAnd) {
            self.bump();
            let right = self.parse_relational_expression()?;
            left = Expression::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_relational_expression(&mut self) -> PResult<Expression> {
        let left = self.parse_unary_expression()?;
        let op = match self.peek() {
            Tok::Eq => CompareOp::Eq,
            Tok::Ne => CompareOp::Ne,
            Tok::Lt => CompareOp::Lt,
            Tok::Le => CompareOp::Le,
            Tok::Gt => CompareOp::Gt,
            Tok::Ge => CompareOp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.parse_unary_expression()?;
        Ok(Expression::Compare(op, Box::new(left), Box::new(right)))
    }

    fn parse_unary_expression(&mut self) -> PResult<Expression> {
        if matches!(self.peek(), Tok::Bang) {
            self.bump();
            let inner = self.parse_unary_expression()?;
            return Ok(Expression::Not(Box::new(inner)));
        }
        self.parse_primary_expression()
    }

    fn parse_primary_expression(&mut self) -> PResult<Expression> {
        match self.bump() {
            Tok::OpenParen => {
                let e = self.parse_expression()?;
                self.expect(&Tok::CloseParen, "`)`")?;
                Ok(e)
            }
            Tok::Var(v) => Ok(Expression::Var(v)),
            Tok::String(s) => {
                if matches!(self.peek(), Tok::DoubleCaret) {
                    self.bump();
                    let dt = match self.bump() {
                        Tok::IriRef(i) => self.iri_from(&i)?,
                        Tok::PName(p, l) => self.expand(&p, &l)?,
                        other => return self.err(format!("expected datatype, found {other:?}")),
                    };
                    Ok(Expression::Constant(Term::Literal(Literal::typed(s, dt))))
                } else {
                    Ok(Expression::Constant(Term::Literal(Literal::simple(s))))
                }
            }
            Tok::Integer(n) => Ok(Expression::Constant(Term::Literal(Literal::integer(n)))),
            Tok::Decimal(d) => Ok(Expression::Constant(Term::Literal(Literal::typed(
                d,
                Iri::new_unchecked(provbench_rdf::xsd::DECIMAL),
            )))),
            Tok::IriRef(i) => Ok(Expression::Constant(Term::Iri(self.iri_from(&i)?))),
            Tok::PName(p, l) => Ok(Expression::Constant(Term::Iri(self.expand(&p, &l)?))),
            Tok::Keyword(k) if k == "TRUE" => {
                Ok(Expression::Constant(Term::Literal(Literal::boolean(true))))
            }
            Tok::Keyword(k) if k == "FALSE" => {
                Ok(Expression::Constant(Term::Literal(Literal::boolean(false))))
            }
            Tok::Keyword(k) if k == "BOUND" => {
                self.expect(&Tok::OpenParen, "`(`")?;
                let v = match self.bump() {
                    Tok::Var(v) => v,
                    other => return self.err(format!("expected variable, found {other:?}")),
                };
                self.expect(&Tok::CloseParen, "`)`")?;
                Ok(Expression::Bound(v))
            }
            Tok::Keyword(k) if k == "STR" => {
                self.expect(&Tok::OpenParen, "`(`")?;
                let e = self.parse_expression()?;
                self.expect(&Tok::CloseParen, "`)`")?;
                Ok(Expression::Str(Box::new(e)))
            }
            Tok::Keyword(k) if matches!(k.as_str(), "CONTAINS" | "STRSTARTS" | "STRENDS") => {
                self.expect(&Tok::OpenParen, "`(`")?;
                let a = self.parse_expression()?;
                self.expect(&Tok::Comma, "`,`")?;
                let b = self.parse_expression()?;
                self.expect(&Tok::CloseParen, "`)`")?;
                Ok(match k.as_str() {
                    "CONTAINS" => Expression::Contains(Box::new(a), Box::new(b)),
                    "STRSTARTS" => Expression::StrStarts(Box::new(a), Box::new(b)),
                    _ => Expression::StrEnds(Box::new(a), Box::new(b)),
                })
            }
            Tok::Keyword(k)
                if matches!(
                    k.as_str(),
                    "LANG" | "DATATYPE" | "ISIRI" | "ISLITERAL" | "ISBLANK"
                ) =>
            {
                self.expect(&Tok::OpenParen, "`(`")?;
                let e = Box::new(self.parse_expression()?);
                self.expect(&Tok::CloseParen, "`)`")?;
                Ok(match k.as_str() {
                    "LANG" => Expression::Lang(e),
                    "DATATYPE" => Expression::Datatype(e),
                    "ISIRI" => Expression::IsIri(e),
                    "ISLITERAL" => Expression::IsLiteral(e),
                    _ => Expression::IsBlank(e),
                })
            }
            Tok::Keyword(k) if k == "REGEX" => {
                self.expect(&Tok::OpenParen, "`(`")?;
                let e = self.parse_expression()?;
                self.expect(&Tok::Comma, "`,`")?;
                let pattern = match self.bump() {
                    Tok::String(s) => s,
                    other => return self.err(format!("expected pattern string, found {other:?}")),
                };
                let mut case_insensitive = false;
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                    match self.bump() {
                        Tok::String(f) => case_insensitive = f.contains('i'),
                        other => {
                            return self.err(format!("expected flags string, found {other:?}"))
                        }
                    }
                }
                self.expect(&Tok::CloseParen, "`)`")?;
                Ok(Expression::Regex(Box::new(e), pattern, case_insensitive))
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

/// Parse a SPARQL query string.
pub fn parse_query(input: &str) -> Result<Query, QueryParseError> {
    let toks = tokenize(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        prefixes: PrefixMap::common(),
    };
    p.parse_query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_select() {
        let q = parse_query("SELECT ?x WHERE { ?x a prov:Activity }").unwrap();
        assert_eq!(q.projections, vec![Projection::Var("x".into())]);
        assert!(!q.distinct);
        match &q.pattern {
            GraphPattern::Basic(ps) => {
                assert_eq!(ps.len(), 1);
                assert!(matches!(&ps[0].object, VarOrTerm::Term(Term::Iri(i))
                    if i.as_str().ends_with("#Activity")));
            }
            other => panic!("unexpected pattern {other:?}"),
        }
    }

    #[test]
    fn semicolon_and_comma_abbreviations() {
        let q = parse_query(
            "SELECT * WHERE { ?r a prov:Activity ; prov:used ?a, ?b . ?a a prov:Entity }",
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::Basic(ps) => assert_eq!(ps.len(), 4),
            other => panic!("unexpected pattern {other:?}"),
        }
    }

    #[test]
    fn optional_union_filter() {
        let q = parse_query(
            r#"PREFIX e: <http://e/>
            SELECT ?x ?t WHERE {
              { ?x a e:A } UNION { ?x a e:B }
              OPTIONAL { ?x e:time ?t }
              FILTER (BOUND(?t) && ?t > 3)
            }"#,
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::Group(elems) => {
                assert_eq!(elems.len(), 3);
                assert!(matches!(elems[0], GraphPattern::Union(..)));
                assert!(matches!(elems[1], GraphPattern::Optional(..)));
                assert!(matches!(elems[2], GraphPattern::Filter(..)));
            }
            other => panic!("unexpected pattern {other:?}"),
        }
    }

    #[test]
    fn aggregates_and_modifiers() {
        let q = parse_query(
            "SELECT ?t (COUNT(?r) AS ?n) (MIN(?s) AS ?first) WHERE { ?r ?p ?t . ?r ?q ?s } \
             GROUP BY ?t ORDER BY DESC(?n) ?t LIMIT 10 OFFSET 5",
        )
        .unwrap();
        assert!(q.has_aggregates());
        assert_eq!(q.group_by, vec!["t".to_owned()]);
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].descending);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, 5);
    }

    #[test]
    fn count_star_and_distinct() {
        let q = parse_query(
            "SELECT DISTINCT (COUNT(*) AS ?n) (COUNT(DISTINCT ?x) AS ?m) WHERE { ?x ?p ?o }",
        )
        .unwrap();
        assert!(q.distinct);
        assert!(matches!(
            &q.projections[0],
            Projection::Aggregate {
                function: AggregateFn::Count,
                var: None,
                ..
            }
        ));
        assert!(matches!(
            &q.projections[1],
            Projection::Aggregate {
                function: AggregateFn::CountDistinct,
                var: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn regex_and_str() {
        let q = parse_query(r#"SELECT ?x WHERE { ?x ?p ?o FILTER REGEX(STR(?x), "^http", "i") }"#)
            .unwrap();
        let GraphPattern::Group(elems) = &q.pattern else {
            panic!("expected group")
        };
        assert!(matches!(
            &elems[1],
            GraphPattern::Filter(Expression::Regex(_, p, true)) if p == "^http"
        ));
    }

    #[test]
    fn typed_literals_in_patterns() {
        let q = parse_query(r#"SELECT ?x WHERE { ?x ?p "2013-01-15T10:30:00Z"^^xsd:dateTime }"#)
            .unwrap();
        let GraphPattern::Basic(ps) = &q.pattern else {
            panic!()
        };
        let VarOrTerm::Term(Term::Literal(l)) = &ps[0].object else {
            panic!()
        };
        assert!(l.as_date_time().is_some());
    }

    #[test]
    fn errors() {
        assert!(parse_query("SELECT").is_err());
        assert!(parse_query("SELECT ?x").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?p }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x nope:y ?z }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o } trailing").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o } LIMIT ?x").is_err());
    }

    #[test]
    fn errors_carry_token_spans() {
        // The parser anchors errors at the current token: after
        // consuming `nope:y` that is the `}` on line 2, columns 21..22.
        let e = parse_query("SELECT ?x\nWHERE { ?x a nope:y }").unwrap_err();
        assert_eq!((e.line, e.column), (2, 21));
        assert_eq!((e.end_line, e.end_column), (2, 22));
        let span = e.span();
        assert_eq!((span.line, span.column), (2, 21));
        assert_eq!((span.end_line, span.end_column), (2, 22));
        assert_eq!(e.to_string(), "2:21: unbound prefix \"nope\"");
        // A multi-character offending token spans its full width.
        let e = parse_query("SELECT ?x WHERE { ?x ?p ?o } LIMIT 3 nope:x").unwrap_err();
        assert!(e.message.contains("unexpected trailing"), "{e}");
        assert_eq!((e.line, e.column), (1, 38));
        assert_eq!((e.end_line, e.end_column), (1, 44));
        // Lexer errors degrade to point spans.
        let e = parse_query("SELECT @").unwrap_err();
        assert_eq!((e.line, e.column), (1, 8));
        assert_eq!((e.end_line, e.end_column), (1, 8));
    }

    #[test]
    fn where_keyword_is_optional() {
        assert!(parse_query("SELECT * { ?x ?p ?o }").is_ok());
    }
}
