//! Evaluation of parsed queries over a [`Graph`].

use super::ast::*;
use super::parser::QueryParseError;
use provbench_rdf::{Graph, Iri, Subject, Term, Triple};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One solution row: variable → bound term.
pub type Bindings = BTreeMap<String, Term>;

/// A query result: projected variables plus solution rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Solutions {
    /// Projected variable names, in projection order.
    pub variables: Vec<String>,
    /// Solution rows.
    pub rows: Vec<Bindings>,
}

impl Solutions {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The binding of `var` in row `row`, if any.
    pub fn get(&self, row: usize, var: &str) -> Option<&Term> {
        self.rows.get(row).and_then(|b| b.get(var))
    }
}

/// Why a query failed.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryError {
    /// The query text failed to parse.
    Parse(QueryParseError),
    /// The query was structurally invalid for evaluation.
    Eval(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "parse error: {e}"),
            QueryError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

fn term_as_subject(term: &Term) -> Option<Subject> {
    term.as_subject()
}

/// Substitute bindings into a pattern position.
fn resolve_term(pos: &VarOrTerm, b: &Bindings) -> Option<Term> {
    match pos {
        VarOrTerm::Term(t) => Some(t.clone()),
        VarOrTerm::Var(v) => b.get(v).cloned(),
    }
}

fn resolve_iri(pos: &VarOrIri, b: &Bindings) -> Option<Option<Iri>> {
    // Outer None = bound to a non-IRI (no match possible);
    // inner None = unbound (wildcard).
    match pos {
        VarOrIri::Iri(i) => Some(Some(i.clone())),
        VarOrIri::Var(v) => match b.get(v) {
            None => Some(None),
            Some(Term::Iri(i)) => Some(Some(i.clone())),
            Some(_) => None,
        },
    }
}

/// Extend `b` by unifying a pattern position with a concrete term.
fn unify(pos: &VarOrTerm, term: Term, b: &mut Bindings) -> bool {
    match pos {
        VarOrTerm::Term(t) => *t == term,
        VarOrTerm::Var(v) => match b.get(v) {
            Some(existing) => *existing == term,
            None => {
                b.insert(v.clone(), term);
                true
            }
        },
    }
}

fn unify_iri(pos: &VarOrIri, iri: Iri, b: &mut Bindings) -> bool {
    match pos {
        VarOrIri::Iri(i) => *i == iri,
        VarOrIri::Var(v) => match b.get(v) {
            Some(existing) => *existing == Term::Iri(iri),
            None => {
                b.insert(v.clone(), Term::Iri(iri));
                true
            }
        },
    }
}

fn join_triple_pattern(graph: &Graph, tp: &TriplePattern, input: Vec<Bindings>) -> Vec<Bindings> {
    let mut out = Vec::new();
    for b in input {
        // Ground what we can.
        let s_term = resolve_term(&tp.subject, &b);
        let s_subj = match &s_term {
            Some(t) => match term_as_subject(t) {
                Some(s) => Some(s),
                None => continue, // bound to a literal: no subject match
            },
            None => None,
        };
        let p_iri = match resolve_iri(&tp.predicate, &b) {
            Some(p) => p,
            None => continue,
        };
        let o_term = resolve_term(&tp.object, &b);
        for t in graph.triples_matching(s_subj.as_ref(), p_iri.as_ref(), o_term.as_ref()) {
            let mut nb = b.clone();
            let Triple {
                subject,
                predicate,
                object,
            } = t;
            if unify(&tp.subject, Term::from(subject), &mut nb)
                && unify_iri(&tp.predicate, predicate, &mut nb)
                && unify(&tp.object, object, &mut nb)
            {
                out.push(nb);
            }
        }
    }
    out
}

/// Evaluation options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalOptions {
    /// Greedily reorder the triple patterns of each BGP so that the most
    /// selective (most bound) pattern runs first and joins stay bound —
    /// the classic join-ordering heuristic. On by default; turn off for
    /// the planner ablation bench.
    pub reorder_patterns: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            reorder_patterns: true,
        }
    }
}

/// Selectivity score of a pattern given already-bound variables: bound
/// positions (constants or join variables) score high; a constant
/// predicate breaks ties (predicates are the most selective constants in
/// PROV data).
fn pattern_score(tp: &TriplePattern, bound: &BTreeSet<&str>) -> (usize, usize) {
    let position = |is_const: bool, var: Option<&str>| {
        if is_const || var.is_some_and(|v| bound.contains(v)) {
            2usize
        } else {
            0
        }
    };
    let s = position(
        matches!(tp.subject, VarOrTerm::Term(_)),
        match &tp.subject {
            VarOrTerm::Var(v) => Some(v),
            VarOrTerm::Term(_) => None,
        },
    );
    let p = position(
        matches!(tp.predicate, VarOrIri::Iri(_)),
        match &tp.predicate {
            VarOrIri::Var(v) => Some(v),
            VarOrIri::Iri(_) => None,
        },
    );
    let o = position(
        matches!(tp.object, VarOrTerm::Term(_)),
        match &tp.object {
            VarOrTerm::Var(v) => Some(v),
            VarOrTerm::Term(_) => None,
        },
    );
    (
        s + p + o,
        usize::from(matches!(tp.predicate, VarOrIri::Iri(_))),
    )
}

/// Greedy join ordering: repeatedly pick the highest-scoring remaining
/// pattern, then treat its variables as bound.
fn reorder_bgp(tps: &[TriplePattern]) -> Vec<&TriplePattern> {
    let mut remaining: Vec<&TriplePattern> = tps.iter().collect();
    let mut bound: BTreeSet<&str> = BTreeSet::new();
    let mut out = Vec::with_capacity(tps.len());
    while !remaining.is_empty() {
        let (best, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, tp)| pattern_score(tp, &bound))
            .expect("remaining is non-empty");
        let tp = remaining.remove(best);
        if let VarOrTerm::Var(v) = &tp.subject {
            bound.insert(v);
        }
        if let VarOrIri::Var(v) = &tp.predicate {
            bound.insert(v);
        }
        if let VarOrTerm::Var(v) = &tp.object {
            bound.insert(v);
        }
        out.push(tp);
    }
    out
}

fn render_position_s(p: &VarOrTerm) -> String {
    match p {
        VarOrTerm::Var(v) => format!("?{v}"),
        VarOrTerm::Term(t) => t.to_string(),
    }
}

fn render_position_p(p: &VarOrIri) -> String {
    match p {
        VarOrIri::Var(v) => format!("?{v}"),
        VarOrIri::Iri(i) => i.to_string(),
    }
}

/// Explain the evaluation plan of a query as indented text: the pattern
/// tree with BGPs shown in planner-chosen join order.
pub fn explain(query: &Query, opts: &EvalOptions) -> String {
    fn walk(p: &GraphPattern, depth: usize, opts: &EvalOptions, out: &mut String) {
        let pad = "  ".repeat(depth);
        match p {
            GraphPattern::Basic(tps) => {
                let ordered: Vec<&TriplePattern> = if opts.reorder_patterns {
                    reorder_bgp(tps)
                } else {
                    tps.iter().collect()
                };
                out.push_str(&format!("{pad}BGP ({} patterns)\n", ordered.len()));
                for tp in ordered {
                    out.push_str(&format!(
                        "{pad}  {} {} {}\n",
                        render_position_s(&tp.subject),
                        render_position_p(&tp.predicate),
                        render_position_s(&tp.object),
                    ));
                }
            }
            GraphPattern::Group(elems) => {
                out.push_str(&format!("{pad}Join\n"));
                for e in elems {
                    walk(e, depth + 1, opts, out);
                }
            }
            GraphPattern::Optional(inner) => {
                out.push_str(&format!("{pad}LeftJoin (OPTIONAL)\n"));
                walk(inner, depth + 1, opts, out);
            }
            GraphPattern::Union(l, r) => {
                out.push_str(&format!("{pad}Union\n"));
                walk(l, depth + 1, opts, out);
                walk(r, depth + 1, opts, out);
            }
            GraphPattern::Filter(_) => {
                out.push_str(&format!("{pad}Filter\n"));
            }
        }
    }
    let mut out = String::new();
    let form = match query.form {
        QueryForm::Select => "SELECT",
        QueryForm::Ask => "ASK",
    };
    out.push_str(&format!(
        "{form} plan (planner {}):\n",
        if opts.reorder_patterns { "on" } else { "off" }
    ));
    walk(&query.pattern, 1, opts, &mut out);
    if !query.group_by.is_empty() {
        out.push_str(&format!("  GroupBy {:?}\n", query.group_by));
    }
    if !query.order_by.is_empty() {
        out.push_str(&format!(
            "  OrderBy {:?}\n",
            query.order_by.iter().map(|k| &k.var).collect::<Vec<_>>()
        ));
    }
    if let Some(l) = query.limit {
        out.push_str(&format!("  Limit {l}\n"));
    }
    out
}

fn eval_pattern(
    graph: &Graph,
    pattern: &GraphPattern,
    input: Vec<Bindings>,
    opts: &EvalOptions,
) -> Vec<Bindings> {
    match pattern {
        GraphPattern::Basic(tps) => {
            let ordered: Vec<&TriplePattern> = if opts.reorder_patterns {
                reorder_bgp(tps)
            } else {
                tps.iter().collect()
            };
            let mut current = input;
            for tp in ordered {
                current = join_triple_pattern(graph, tp, current);
                if current.is_empty() {
                    break;
                }
            }
            current
        }
        GraphPattern::Group(elems) => {
            let mut current = input;
            for e in elems {
                current = eval_pattern(graph, e, current, opts);
                if current.is_empty() && !matches!(e, GraphPattern::Optional(_)) {
                    break;
                }
            }
            current
        }
        GraphPattern::Optional(inner) => {
            let mut out = Vec::new();
            for b in input {
                let extended = eval_pattern(graph, inner, vec![b.clone()], opts);
                if extended.is_empty() {
                    out.push(b);
                } else {
                    out.extend(extended);
                }
            }
            out
        }
        GraphPattern::Union(left, right) => {
            let mut out = eval_pattern(graph, left, input.clone(), opts);
            out.extend(eval_pattern(graph, right, input, opts));
            out
        }
        GraphPattern::Filter(expr) => input
            .into_iter()
            .filter(|b| {
                eval_expr(expr, b)
                    .and_then(|v| effective_boolean(&v))
                    .unwrap_or(false)
            })
            .collect(),
    }
}

/// A computed expression value.
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Term(Term),
    Bool(bool),
}

fn eval_expr(expr: &Expression, b: &Bindings) -> Option<Value> {
    match expr {
        Expression::Var(v) => b.get(v).cloned().map(Value::Term),
        Expression::Constant(t) => Some(Value::Term(t.clone())),
        Expression::Bound(v) => Some(Value::Bool(b.contains_key(v))),
        Expression::Not(inner) => {
            let v = eval_expr(inner, b)?;
            Some(Value::Bool(!effective_boolean(&v)?))
        }
        Expression::And(l, r) => {
            let lv = eval_expr(l, b).and_then(|v| effective_boolean(&v));
            let rv = eval_expr(r, b).and_then(|v| effective_boolean(&v));
            match (lv, rv) {
                (Some(false), _) | (_, Some(false)) => Some(Value::Bool(false)),
                (Some(true), Some(true)) => Some(Value::Bool(true)),
                _ => None,
            }
        }
        Expression::Or(l, r) => {
            let lv = eval_expr(l, b).and_then(|v| effective_boolean(&v));
            let rv = eval_expr(r, b).and_then(|v| effective_boolean(&v));
            match (lv, rv) {
                (Some(true), _) | (_, Some(true)) => Some(Value::Bool(true)),
                (Some(false), Some(false)) => Some(Value::Bool(false)),
                _ => None,
            }
        }
        Expression::Compare(op, l, r) => {
            let lt = match eval_expr(l, b)? {
                Value::Term(t) => t,
                Value::Bool(x) => Term::Literal(provbench_rdf::Literal::boolean(x)),
            };
            let rt = match eval_expr(r, b)? {
                Value::Term(t) => t,
                Value::Bool(x) => Term::Literal(provbench_rdf::Literal::boolean(x)),
            };
            match op {
                CompareOp::Eq => Some(Value::Bool(lt == rt)),
                CompareOp::Ne => Some(Value::Bool(lt != rt)),
                _ => {
                    let ord = compare_terms(&lt, &rt)?;
                    Some(Value::Bool(match op {
                        CompareOp::Lt => ord.is_lt(),
                        CompareOp::Le => ord.is_le(),
                        CompareOp::Gt => ord.is_gt(),
                        CompareOp::Ge => ord.is_ge(),
                        CompareOp::Eq | CompareOp::Ne => unreachable!(),
                    }))
                }
            }
        }
        Expression::Str(inner) => {
            let v = eval_expr(inner, b)?;
            let s = match v {
                Value::Term(Term::Iri(i)) => i.as_str().to_owned(),
                Value::Term(Term::Literal(l)) => l.lexical().to_owned(),
                Value::Term(Term::Blank(bl)) => bl.label().to_owned(),
                Value::Bool(x) => x.to_string(),
            };
            Some(Value::Term(Term::Literal(provbench_rdf::Literal::simple(
                s,
            ))))
        }
        Expression::Contains(h, n) | Expression::StrStarts(h, n) | Expression::StrEnds(h, n) => {
            let hay = string_of(eval_expr(h, b)?)?;
            let needle = string_of(eval_expr(n, b)?)?;
            Some(Value::Bool(match expr {
                Expression::Contains(..) => hay.contains(&needle),
                Expression::StrStarts(..) => hay.starts_with(&needle),
                _ => hay.ends_with(&needle),
            }))
        }
        Expression::Lang(inner) => {
            let Value::Term(Term::Literal(l)) = eval_expr(inner, b)? else {
                return None;
            };
            Some(Value::Term(Term::Literal(provbench_rdf::Literal::simple(
                l.language().unwrap_or(""),
            ))))
        }
        Expression::Datatype(inner) => {
            let Value::Term(Term::Literal(l)) = eval_expr(inner, b)? else {
                return None;
            };
            Some(Value::Term(Term::Iri(l.datatype())))
        }
        Expression::IsIri(inner) => {
            let v = eval_expr(inner, b)?;
            Some(Value::Bool(matches!(v, Value::Term(Term::Iri(_)))))
        }
        Expression::IsLiteral(inner) => {
            let v = eval_expr(inner, b)?;
            Some(Value::Bool(matches!(v, Value::Term(Term::Literal(_)))))
        }
        Expression::IsBlank(inner) => {
            let v = eval_expr(inner, b)?;
            Some(Value::Bool(matches!(v, Value::Term(Term::Blank(_)))))
        }
        Expression::Regex(inner, pattern, ci) => {
            let Value::Term(t) = eval_expr(inner, b)? else {
                return None;
            };
            let text = match &t {
                Term::Literal(l) => l.lexical().to_owned(),
                Term::Iri(i) => i.as_str().to_owned(),
                Term::Blank(_) => return None,
            };
            Some(Value::Bool(simple_regex_match(&text, pattern, *ci)))
        }
    }
}

/// The string form of a value (for the string builtins).
fn string_of(v: Value) -> Option<String> {
    match v {
        Value::Term(Term::Literal(l)) => Some(l.lexical().to_owned()),
        Value::Term(Term::Iri(i)) => Some(i.as_str().to_owned()),
        Value::Term(Term::Blank(_)) => None,
        Value::Bool(b) => Some(b.to_string()),
    }
}

/// Anchored-substring matching: `^` and `$` anchors are honoured; any
/// other metacharacters are treated literally (documented subset).
fn simple_regex_match(text: &str, pattern: &str, case_insensitive: bool) -> bool {
    let (text, pattern) = if case_insensitive {
        (text.to_ascii_lowercase(), pattern.to_ascii_lowercase())
    } else {
        (text.to_owned(), pattern.to_owned())
    };
    let starts = pattern.starts_with('^');
    let ends = pattern.ends_with('$') && pattern.len() > usize::from(starts);
    let core = &pattern[usize::from(starts)..pattern.len() - usize::from(ends)];
    match (starts, ends) {
        (true, true) => text == core,
        (true, false) => text.starts_with(core),
        (false, true) => text.ends_with(core),
        (false, false) => text.contains(core),
    }
}

fn effective_boolean(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        Value::Term(Term::Literal(l)) => {
            if let Some(b) = l.as_boolean() {
                return Some(b);
            }
            if let Some(i) = l.as_integer() {
                return Some(i != 0);
            }
            Some(!l.lexical().is_empty())
        }
        Value::Term(_) => None,
    }
}

/// SPARQL-ish ordering: numbers numerically, dateTimes chronologically,
/// other literals lexically, IRIs by string; mixed kinds by kind.
pub(crate) fn compare_terms(a: &Term, b: &Term) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Term::Literal(la), Term::Literal(lb)) => {
            if let (Some(x), Some(y)) = (la.as_integer(), lb.as_integer()) {
                return Some(x.cmp(&y));
            }
            if let (Ok(x), Ok(y)) = (la.lexical().parse::<f64>(), lb.lexical().parse::<f64>()) {
                if is_numeric(la) && is_numeric(lb) {
                    return x.partial_cmp(&y);
                }
            }
            if let (Some(x), Some(y)) = (la.as_date_time(), lb.as_date_time()) {
                return Some(x.cmp(&y));
            }
            Some(la.lexical().cmp(lb.lexical()))
        }
        (Term::Iri(x), Term::Iri(y)) => Some(x.as_str().cmp(y.as_str())),
        (Term::Blank(x), Term::Blank(y)) => Some(x.label().cmp(y.label())),
        // Mixed kinds: blank < IRI < literal (SPARQL's total order spirit).
        _ => Some(kind_rank(a).cmp(&kind_rank(b))),
    }
}

fn is_numeric(l: &provbench_rdf::Literal) -> bool {
    matches!(
        l.datatype().as_str(),
        provbench_rdf::xsd::INTEGER
            | provbench_rdf::xsd::DECIMAL
            | provbench_rdf::xsd::DOUBLE
            | provbench_rdf::xsd::LONG
            | provbench_rdf::xsd::INT
    )
}

fn kind_rank(t: &Term) -> u8 {
    match t {
        Term::Blank(_) => 0,
        Term::Iri(_) => 1,
        Term::Literal(_) => 2,
    }
}

fn apply_aggregates(query: &Query, rows: Vec<Bindings>) -> Result<Vec<Bindings>, QueryError> {
    // Group rows by the GROUP BY key.
    let mut groups: BTreeMap<Vec<Option<Term>>, Vec<Bindings>> = BTreeMap::new();
    for row in rows {
        let key: Vec<Option<Term>> = query.group_by.iter().map(|v| row.get(v).cloned()).collect();
        groups.entry(key).or_default().push(row);
    }
    // With no GROUP BY but aggregates present, everything is one group —
    // but zero input rows still produce one row of zero counts.
    if groups.is_empty() && query.group_by.is_empty() {
        groups.insert(Vec::new(), Vec::new());
    }

    let mut out = Vec::new();
    for (key, members) in groups {
        let mut row = Bindings::new();
        for (var, term) in query.group_by.iter().zip(key) {
            if let Some(t) = term {
                row.insert(var.clone(), t);
            }
        }
        for p in &query.projections {
            let Projection::Aggregate {
                function,
                var,
                alias,
            } = p
            else {
                continue;
            };
            let value = match (function, var) {
                (AggregateFn::Count, None) => {
                    Term::Literal(provbench_rdf::Literal::integer(members.len() as i64))
                }
                (AggregateFn::Count, Some(v)) => Term::Literal(provbench_rdf::Literal::integer(
                    members.iter().filter(|m| m.contains_key(v)).count() as i64,
                )),
                (AggregateFn::CountDistinct, Some(v)) => {
                    let distinct: BTreeSet<&Term> =
                        members.iter().filter_map(|m| m.get(v)).collect();
                    Term::Literal(provbench_rdf::Literal::integer(distinct.len() as i64))
                }
                (AggregateFn::CountDistinct, None) => {
                    return Err(QueryError::Eval("COUNT(DISTINCT *) unsupported".into()))
                }
                (AggregateFn::Min | AggregateFn::Max, Some(v)) => {
                    let mut best: Option<Term> = None;
                    for m in &members {
                        if let Some(t) = m.get(v) {
                            let better = match &best {
                                None => true,
                                Some(cur) => {
                                    let ord =
                                        compare_terms(t, cur).unwrap_or(std::cmp::Ordering::Equal);
                                    if *function == AggregateFn::Min {
                                        ord.is_lt()
                                    } else {
                                        ord.is_gt()
                                    }
                                }
                            };
                            if better {
                                best = Some(t.clone());
                            }
                        }
                    }
                    match best {
                        Some(t) => t,
                        None => continue, // no values: leave alias unbound
                    }
                }
                (f, None) => return Err(QueryError::Eval(format!("{f:?} needs a variable"))),
            };
            row.insert(alias.clone(), value);
        }
        out.push(row);
    }
    Ok(out)
}

/// Execute a parsed query over a graph with default options.
pub fn execute(graph: &Graph, query: &Query) -> Result<Solutions, QueryError> {
    execute_with_options(graph, query, &EvalOptions::default())
}

/// Execute a parsed query over a graph with explicit options.
pub fn execute_with_options(
    graph: &Graph,
    query: &Query,
    opts: &EvalOptions,
) -> Result<Solutions, QueryError> {
    let mut rows = eval_pattern(graph, &query.pattern, vec![Bindings::new()], opts);

    if query.has_aggregates() || !query.group_by.is_empty() {
        rows = apply_aggregates(query, rows)?;
    }

    // Projection.
    let variables: Vec<String> = if query.projections.is_empty() {
        let mut vars: BTreeSet<String> = BTreeSet::new();
        for r in &rows {
            vars.extend(r.keys().cloned());
        }
        vars.into_iter().collect()
    } else {
        query
            .projections
            .iter()
            .map(|p| match p {
                Projection::Var(v) => v.clone(),
                Projection::Aggregate { alias, .. } => alias.clone(),
            })
            .collect()
    };
    for row in &mut rows {
        row.retain(|k, _| variables.contains(k));
    }

    if query.distinct {
        let mut seen = BTreeSet::new();
        rows.retain(|r| seen.insert(r.clone()));
    }

    if !query.order_by.is_empty() {
        rows.sort_by(|a, b| {
            for key in &query.order_by {
                let (x, y) = (a.get(&key.var), b.get(&key.var));
                let ord = match (x, y) {
                    (None, None) => std::cmp::Ordering::Equal,
                    (None, Some(_)) => std::cmp::Ordering::Less,
                    (Some(_), None) => std::cmp::Ordering::Greater,
                    (Some(x), Some(y)) => compare_terms(x, y).unwrap_or(std::cmp::Ordering::Equal),
                };
                let ord = if key.descending { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    let rows: Vec<Bindings> = rows
        .into_iter()
        .skip(query.offset)
        .take(query.limit.unwrap_or(usize::MAX))
        .collect();

    if query.form == QueryForm::Ask {
        // ASK: boolean result; keep the Solutions shape (one empty row =
        // true, no rows = false) so callers share one code path.
        return Ok(Solutions {
            variables: Vec::new(),
            rows: if rows.is_empty() {
                Vec::new()
            } else {
                vec![Bindings::new()]
            },
        });
    }

    Ok(Solutions { variables, rows })
}

/// Execute an `ASK` (or any) query as a boolean: true iff any solution.
pub fn execute_ask(graph: &Graph, query: &Query) -> Result<bool, QueryError> {
    Ok(!execute(graph, query)?.is_empty())
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse_query;
    use super::*;
    use provbench_rdf::{parse_turtle, Literal};

    fn graph() -> Graph {
        let (g, _) = parse_turtle(
            r#"
            @prefix e: <http://e/> .
            @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
            e:r1 a e:Run ; e:start "2013-01-01T00:00:00Z"^^xsd:dateTime ; e:by e:alice ; e:size 5 .
            e:r2 a e:Run ; e:start "2013-02-01T00:00:00Z"^^xsd:dateTime ; e:by e:bob ; e:size 9 .
            e:r3 a e:Run ; e:by e:alice ; e:size 2 .
            e:t1 a e:Template .
            e:r1 e:of e:t1 . e:r2 e:of e:t1 .
            "#,
        )
        .unwrap();
        g
    }

    fn run(q: &str) -> Solutions {
        let query = parse_query(q).unwrap();
        execute(&graph(), &query).unwrap()
    }

    #[test]
    fn basic_bgp() {
        let s = run("PREFIX e: <http://e/> SELECT ?r WHERE { ?r a e:Run }");
        assert_eq!(s.len(), 3);
        assert_eq!(s.variables, vec!["r"]);
    }

    #[test]
    fn join_across_patterns() {
        let s = run(
            "PREFIX e: <http://e/> SELECT ?r ?who WHERE { ?r a e:Run . ?r e:by ?who . ?r e:of e:t1 }",
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn optional_keeps_unmatched() {
        let s = run(
            "PREFIX e: <http://e/> SELECT ?r ?start WHERE { ?r a e:Run OPTIONAL { ?r e:start ?start } } ORDER BY ?r",
        );
        assert_eq!(s.len(), 3);
        assert!(s.get(0, "start").is_some()); // r1
        assert!(s.get(2, "start").is_none()); // r3
    }

    #[test]
    fn union_combines() {
        let s = run(
            "PREFIX e: <http://e/> SELECT ?x WHERE { { ?x a e:Run } UNION { ?x a e:Template } }",
        );
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn filter_comparisons() {
        let s = run("PREFIX e: <http://e/> SELECT ?r WHERE { ?r e:size ?s FILTER (?s > 4) }");
        assert_eq!(s.len(), 2);
        let s = run(
            "PREFIX e: <http://e/> SELECT ?r WHERE { ?r e:size ?s FILTER (?s >= 2 && ?s != 9) }",
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn filter_on_datetime() {
        let s = run(
            r#"PREFIX e: <http://e/> PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
               SELECT ?r WHERE { ?r e:start ?t FILTER (?t < "2013-01-15T00:00:00Z"^^xsd:dateTime) }"#,
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn filter_bound_and_not() {
        let s = run(
            "PREFIX e: <http://e/> SELECT ?r WHERE { ?r a e:Run OPTIONAL { ?r e:start ?t } FILTER (!BOUND(?t)) }",
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn regex_and_str_filters() {
        let s = run(
            r#"PREFIX e: <http://e/> SELECT ?r WHERE { ?r a e:Run FILTER REGEX(STR(?r), "r[0-9]") }"#,
        );
        // Our regex subset is literal: "r[0-9]" matches nothing.
        assert_eq!(s.len(), 0);
        let s = run(
            r#"PREFIX e: <http://e/> SELECT ?r WHERE { ?r a e:Run FILTER REGEX(STR(?r), "^http://e/r") }"#,
        );
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn order_limit_offset() {
        let s = run(
            "PREFIX e: <http://e/> SELECT ?r ?s WHERE { ?r e:size ?s } ORDER BY DESC(?s) LIMIT 2",
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0, "s").unwrap(), &Term::Literal(Literal::integer(9)));
        let s2 =
            run("PREFIX e: <http://e/> SELECT ?r ?s WHERE { ?r e:size ?s } ORDER BY ?s OFFSET 1");
        assert_eq!(s2.len(), 2);
        assert_eq!(s2.get(0, "s").unwrap(), &Term::Literal(Literal::integer(5)));
    }

    #[test]
    fn group_by_count() {
        let s = run(
            "PREFIX e: <http://e/> SELECT ?who (COUNT(?r) AS ?n) WHERE { ?r e:by ?who } GROUP BY ?who ORDER BY ?who",
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0, "n").unwrap(), &Term::Literal(Literal::integer(2))); // alice
        assert_eq!(s.get(1, "n").unwrap(), &Term::Literal(Literal::integer(1)));
        // bob
    }

    #[test]
    fn count_star_on_empty_is_zero() {
        let s = run("PREFIX e: <http://e/> SELECT (COUNT(*) AS ?n) WHERE { ?r a e:Nothing }");
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0, "n").unwrap(), &Term::Literal(Literal::integer(0)));
    }

    #[test]
    fn min_max_aggregates() {
        let s = run(
            "PREFIX e: <http://e/> SELECT (MIN(?s) AS ?lo) (MAX(?s) AS ?hi) WHERE { ?r e:size ?s }",
        );
        assert_eq!(s.get(0, "lo").unwrap(), &Term::Literal(Literal::integer(2)));
        assert_eq!(s.get(0, "hi").unwrap(), &Term::Literal(Literal::integer(9)));
    }

    #[test]
    fn distinct_dedups() {
        let s = run("PREFIX e: <http://e/> SELECT DISTINCT ?who WHERE { ?r e:by ?who }");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn repeated_variable_join_consistency() {
        // ?x e:of ?x never matches (no self loops).
        let s = run("PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:of ?x }");
        assert!(s.is_empty());
    }

    #[test]
    fn select_star_projects_all_vars() {
        let s = run("PREFIX e: <http://e/> SELECT * WHERE { ?r e:by ?who }");
        assert_eq!(s.variables, vec!["r", "who"]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn ground_triple_check() {
        let s = run("PREFIX e: <http://e/> SELECT (COUNT(*) AS ?n) WHERE { e:r1 e:by e:alice }");
        assert_eq!(s.get(0, "n").unwrap(), &Term::Literal(Literal::integer(1)));
    }

    #[test]
    fn explain_shows_planned_order() {
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?r WHERE { ?x ?p ?o . ?r a e:Run } ORDER BY ?r LIMIT 2",
        )
        .unwrap();
        let on = explain(
            &q,
            &EvalOptions {
                reorder_patterns: true,
            },
        );
        // The typed pattern must come first under the planner.
        let typed_pos = on.find("?r <http").unwrap();
        let wildcard_pos = on.find("?x ?p ?o").unwrap();
        assert!(typed_pos < wildcard_pos, "{on}");
        assert!(on.contains("planner on"));
        assert!(on.contains("OrderBy"));
        assert!(on.contains("Limit 2"));
        let off = explain(
            &q,
            &EvalOptions {
                reorder_patterns: false,
            },
        );
        let typed_pos = off.find("?r <http").unwrap();
        let wildcard_pos = off.find("?x ?p ?o").unwrap();
        assert!(wildcard_pos < typed_pos, "{off}");
        // Composite patterns render their algebra nodes.
        let q2 = parse_query(
            "SELECT ?x WHERE { { ?x ?p ?o } UNION { ?x ?q ?z } OPTIONAL { ?x ?r ?w } FILTER (1=1) }",
        )
        .unwrap();
        let plan = explain(&q2, &EvalOptions::default());
        for node in ["Join", "Union", "LeftJoin (OPTIONAL)", "Filter"] {
            assert!(plan.contains(node), "missing {node} in {plan}");
        }
    }

    #[test]
    fn ask_queries() {
        let g = graph();
        let q = parse_query("PREFIX e: <http://e/> ASK { ?r a e:Run }").unwrap();
        assert_eq!(q.form, QueryForm::Ask);
        assert!(execute_ask(&g, &q).unwrap());
        let s = execute(&g, &q).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.variables.is_empty());
        let q = parse_query("PREFIX e: <http://e/> ASK { ?r a e:Nothing }").unwrap();
        assert!(!execute_ask(&g, &q).unwrap());
        // WHERE keyword also allowed.
        assert!(parse_query("ASK WHERE { ?s ?p ?o }").is_ok());
        // No modifiers after ASK.
        assert!(parse_query("ASK { ?s ?p ?o } LIMIT 3").is_err());
    }

    #[test]
    fn string_builtins() {
        let n = |q: &str| run(q).len();
        assert_eq!(
            n("PREFIX e: <http://e/> SELECT ?r WHERE { ?r a e:Run FILTER CONTAINS(STR(?r), \"r2\") }"),
            1
        );
        assert_eq!(
            n("PREFIX e: <http://e/> SELECT ?r WHERE { ?r a e:Run FILTER STRSTARTS(STR(?r), \"http://e/\") }"),
            3
        );
        assert_eq!(
            n("PREFIX e: <http://e/> SELECT ?r WHERE { ?r a e:Run FILTER STRENDS(STR(?r), \"3\") }"),
            1
        );
    }

    #[test]
    fn term_introspection_builtins() {
        let g = graph();
        let _ = &g;
        // isIRI/isLiteral partition objects.
        let iris = run("PREFIX e: <http://e/> SELECT ?o WHERE { ?s e:by ?o FILTER ISIRI(?o) }");
        assert_eq!(iris.len(), 3);
        let lits =
            run("PREFIX e: <http://e/> SELECT ?o WHERE { ?s e:size ?o FILTER ISLITERAL(?o) }");
        assert_eq!(lits.len(), 3);
        let blanks = run("SELECT ?o WHERE { ?s ?p ?o FILTER ISBLANK(?o) }");
        assert!(blanks.is_empty());
        // DATATYPE of the sizes is xsd:integer.
        let typed = run(
            "PREFIX e: <http://e/> PREFIX xsd: <http://www.w3.org/2001/XMLSchema#> \
             SELECT ?o WHERE { ?s e:size ?o FILTER (DATATYPE(?o) = xsd:integer) }",
        );
        assert_eq!(typed.len(), 3);
        // LANG of a plain literal is "".
        let lang =
            run("PREFIX e: <http://e/> SELECT ?s WHERE { ?s e:size ?o FILTER (LANG(?o) = \"\") }");
        assert_eq!(lang.len(), 3);
    }

    #[test]
    fn planner_reordering_is_semantically_transparent() {
        // A deliberately bad written order: unbound wildcard first.
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?r ?who WHERE { ?r ?p ?x . ?r e:by ?who . ?r a e:Run }",
        )
        .unwrap();
        let with = execute_with_options(
            &graph(),
            &q,
            &EvalOptions {
                reorder_patterns: true,
            },
        )
        .unwrap();
        let without = execute_with_options(
            &graph(),
            &q,
            &EvalOptions {
                reorder_patterns: false,
            },
        )
        .unwrap();
        let norm = |s: &Solutions| {
            let mut v: Vec<String> = s.rows.iter().map(|r| format!("{r:?}")).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&with), norm(&without));
    }

    #[test]
    fn planner_prefers_bound_patterns() {
        use super::super::ast::{TriplePattern, VarOrIri, VarOrTerm};
        let wildcard = TriplePattern {
            subject: VarOrTerm::Var("s".into()),
            predicate: VarOrIri::Var("p".into()),
            object: VarOrTerm::Var("o".into()),
        };
        let typed = TriplePattern {
            subject: VarOrTerm::Var("s".into()),
            predicate: VarOrIri::Iri(iri_of("http://e/q")),
            object: VarOrTerm::Term(Term::Iri(iri_of("http://e/T"))),
        };
        let patterns = [wildcard.clone(), typed.clone()];
        let ordered = reorder_bgp(&patterns);
        assert_eq!(ordered[0], &typed);
        assert_eq!(ordered[1], &wildcard);
    }

    fn iri_of(s: &str) -> provbench_rdf::Iri {
        provbench_rdf::Iri::new(s).unwrap()
    }

    #[test]
    fn count_distinct() {
        let s =
            run("PREFIX e: <http://e/> SELECT (COUNT(DISTINCT ?who) AS ?n) WHERE { ?r e:by ?who }");
        assert_eq!(s.get(0, "n").unwrap(), &Term::Literal(Literal::integer(2)));
    }
}
