//! Evaluation of parsed queries over a [`Graph`].
//!
//! The evaluator works in two stages:
//!
//! 1. **Resolution** — the parsed AST is compiled against the target
//!    graph: every variable gets a dense slot id, and every ground term
//!    is looked up in the graph's interner once. A constant that the
//!    graph has never interned can match nothing, which resolution
//!    records directly.
//! 2. **Id-space evaluation** — solution rows are compact slabs of
//!    `u32` term ids (one slot per variable), joins run over the graph's
//!    integer indexes, and terms are decoded only at projection time
//!    (or inside `FILTER` expressions, which need lexical values).
//!
//! Basic graph patterns are reordered by estimated selectivity before
//! evaluation (bound-term count first, then per-predicate cardinality
//! from the graph's statistics); see [`explain_on`] for the chosen order
//! and the estimates behind it.

use super::ast::*;
use super::parser::QueryParseError;
use provbench_obs::{Registry, LATENCY_BUCKETS};
use provbench_rdf::{Graph, Term, TermId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One solution row: variable → bound term.
pub type Bindings = BTreeMap<String, Term>;

/// A query result: projected variables plus solution rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Solutions {
    /// Projected variable names, in projection order.
    pub variables: Vec<String>,
    /// Solution rows.
    pub rows: Vec<Bindings>,
}

impl Solutions {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The binding of `var` in row `row`, if any.
    pub fn get(&self, row: usize, var: &str) -> Option<&Term> {
        self.rows.get(row).and_then(|b| b.get(var))
    }
}

/// Why a query failed.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryError {
    /// The query text failed to parse.
    Parse(QueryParseError),
    /// The query was structurally invalid for evaluation.
    Eval(String),
    /// Evaluation was aborted: the deadline passed or the row budget
    /// (both set through [`EvalOptions`]) was exhausted.
    Timeout(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "parse error: {e}"),
            QueryError::Eval(m) => write!(f, "evaluation error: {m}"),
            QueryError::Timeout(m) => write!(f, "evaluation aborted: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Evaluation options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalOptions {
    /// Reorder the triple patterns of each BGP by estimated selectivity
    /// (most-bound first, per-predicate cardinality as tie-break) so
    /// joins stay bound. On by default; turn off for the planner
    /// ablation bench.
    pub reorder_patterns: bool,
    /// Abort evaluation once this instant passes. Checked periodically
    /// on the intermediate-row hot path.
    pub deadline: Option<Instant>,
    /// Abort evaluation after producing this many intermediate rows —
    /// a deterministic cost bound independent of wall-clock speed.
    pub row_budget: Option<u64>,
    /// Worker threads for the parallel evaluation path. `1` (the
    /// default) evaluates serially; `0` means one per core, capped
    /// at 8. Results are byte-identical for every job count — see
    /// [`EvalOptions::with_jobs`].
    pub jobs: usize,
    /// Record a `provbench_query_operator_seconds{op=...}` observation
    /// per physical-operator `next()` call (one span per pulled row).
    /// Off by default: per-row timestamping is only worth paying for
    /// when profiling a plan.
    pub operator_spans: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            reorder_patterns: true,
            deadline: None,
            row_budget: None,
            jobs: 1,
            operator_spans: false,
        }
    }
}

impl EvalOptions {
    /// Options with the selectivity planner disabled (patterns run in
    /// written order).
    pub fn lexical() -> Self {
        EvalOptions {
            reorder_patterns: false,
            ..EvalOptions::default()
        }
    }

    /// Abort evaluation `timeout` from now.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Abort evaluation at the given instant.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Abort evaluation after `rows` intermediate rows.
    pub fn with_row_budget(mut self, rows: u64) -> Self {
        self.row_budget = Some(rows);
        self
    }

    /// Evaluate with `jobs` worker threads (`1` = serial, `0` = one per
    /// core capped at 8). The parallel path partitions the first (most
    /// selective) pattern's candidate rows into per-worker chunks and
    /// concatenates chunk results in chunk order, so the output is
    /// byte-identical to serial evaluation regardless of job count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Record per-operator timing spans while evaluating (see
    /// [`EvalOptions::operator_spans`]).
    pub fn with_operator_spans(mut self) -> Self {
        self.operator_spans = true;
        self
    }

    /// The concrete worker count `jobs` resolves to.
    pub fn effective_jobs(&self) -> usize {
        match self.jobs {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            n => n,
        }
    }
}

// ------------------------------------------------------- resolution --

/// Sentinel for an unbound slot in a compact binding row.
pub(crate) const UNBOUND: u32 = u32::MAX;

/// A compact solution row: one `u32` term id per variable slot.
pub(crate) type IdRow = Vec<u32>;

/// Dense variable numbering for one (query, graph) evaluation.
#[derive(Default)]
pub(crate) struct VarTable {
    pub(crate) names: Vec<String>,
    pub(crate) index: HashMap<String, usize>,
}

impl VarTable {
    pub(crate) fn slot(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), i);
        i
    }
}

/// A pattern position after resolution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum RPos {
    /// A variable slot.
    Var(usize),
    /// A ground term the graph knows.
    Const(TermId),
    /// A ground term the graph has never interned: matches nothing.
    Missing,
}

#[derive(Clone, Debug)]
pub(crate) struct RTriple {
    pub(crate) s: RPos,
    pub(crate) p: RPos,
    pub(crate) o: RPos,
}

pub(crate) enum RPattern {
    Basic(Vec<RTriple>),
    Group(Vec<RPattern>),
    Optional(Box<RPattern>),
    Union(Box<RPattern>, Box<RPattern>),
    Filter(RExpr),
}

/// [`Expression`] with variables resolved to slots.
pub(crate) enum RExpr {
    Var(usize),
    Constant(Term),
    Compare(CompareOp, Box<RExpr>, Box<RExpr>),
    And(Box<RExpr>, Box<RExpr>),
    Or(Box<RExpr>, Box<RExpr>),
    Not(Box<RExpr>),
    Bound(usize),
    Contains(Box<RExpr>, Box<RExpr>),
    StrStarts(Box<RExpr>, Box<RExpr>),
    StrEnds(Box<RExpr>, Box<RExpr>),
    Lang(Box<RExpr>),
    Datatype(Box<RExpr>),
    IsIri(Box<RExpr>),
    IsLiteral(Box<RExpr>),
    IsBlank(Box<RExpr>),
    Regex(Box<RExpr>, String, bool),
    Str(Box<RExpr>),
}

pub(crate) struct RAggregate {
    pub(crate) function: AggregateFn,
    pub(crate) var: Option<usize>,
    pub(crate) alias: String,
}

/// The query compiled against one graph.
pub(crate) struct Resolved {
    pub(crate) vars: VarTable,
    pub(crate) pattern: RPattern,
    pub(crate) group_by: Vec<usize>,
    pub(crate) aggregates: Vec<RAggregate>,
}

fn resolve_var_or_term(pos: &VarOrTerm, vars: &mut VarTable, graph: &Graph) -> RPos {
    match pos {
        VarOrTerm::Var(v) => RPos::Var(vars.slot(v)),
        VarOrTerm::Term(t) => match graph.term_to_id(t) {
            Some(id) => RPos::Const(id),
            None => RPos::Missing,
        },
    }
}

fn resolve_var_or_iri(pos: &VarOrIri, vars: &mut VarTable, graph: &Graph) -> RPos {
    match pos {
        VarOrIri::Var(v) => RPos::Var(vars.slot(v)),
        VarOrIri::Iri(i) => match graph.term_to_id(&Term::Iri(i.clone())) {
            Some(id) => RPos::Const(id),
            None => RPos::Missing,
        },
    }
}

fn resolve_expr(e: &Expression, vars: &mut VarTable) -> RExpr {
    let go = |e: &Expression, vars: &mut VarTable| Box::new(resolve_expr(e, vars));
    match e {
        Expression::Var(v) => RExpr::Var(vars.slot(v)),
        Expression::Constant(t) => RExpr::Constant(t.clone()),
        Expression::Compare(op, l, r) => RExpr::Compare(*op, go(l, vars), go(r, vars)),
        Expression::And(l, r) => RExpr::And(go(l, vars), go(r, vars)),
        Expression::Or(l, r) => RExpr::Or(go(l, vars), go(r, vars)),
        Expression::Not(i) => RExpr::Not(go(i, vars)),
        Expression::Bound(v) => RExpr::Bound(vars.slot(v)),
        Expression::Contains(h, n) => RExpr::Contains(go(h, vars), go(n, vars)),
        Expression::StrStarts(h, n) => RExpr::StrStarts(go(h, vars), go(n, vars)),
        Expression::StrEnds(h, n) => RExpr::StrEnds(go(h, vars), go(n, vars)),
        Expression::Lang(i) => RExpr::Lang(go(i, vars)),
        Expression::Datatype(i) => RExpr::Datatype(go(i, vars)),
        Expression::IsIri(i) => RExpr::IsIri(go(i, vars)),
        Expression::IsLiteral(i) => RExpr::IsLiteral(go(i, vars)),
        Expression::IsBlank(i) => RExpr::IsBlank(go(i, vars)),
        Expression::Regex(i, p, ci) => RExpr::Regex(go(i, vars), p.clone(), *ci),
        Expression::Str(i) => RExpr::Str(go(i, vars)),
    }
}

fn resolve_pattern(p: &GraphPattern, vars: &mut VarTable, graph: &Graph) -> RPattern {
    match p {
        GraphPattern::Basic(tps) => RPattern::Basic(
            tps.iter()
                .map(|tp| RTriple {
                    s: resolve_var_or_term(&tp.subject, vars, graph),
                    p: resolve_var_or_iri(&tp.predicate, vars, graph),
                    o: resolve_var_or_term(&tp.object, vars, graph),
                })
                .collect(),
        ),
        GraphPattern::Group(elems) => RPattern::Group(
            elems
                .iter()
                .map(|e| resolve_pattern(e, vars, graph))
                .collect(),
        ),
        GraphPattern::Optional(inner) => {
            RPattern::Optional(Box::new(resolve_pattern(inner, vars, graph)))
        }
        GraphPattern::Union(l, r) => RPattern::Union(
            Box::new(resolve_pattern(l, vars, graph)),
            Box::new(resolve_pattern(r, vars, graph)),
        ),
        GraphPattern::Filter(e) => RPattern::Filter(resolve_expr(e, vars)),
    }
}

pub(crate) fn resolve(query: &Query, graph: &Graph) -> Result<Resolved, QueryError> {
    let mut vars = VarTable::default();
    let pattern = resolve_pattern(&query.pattern, &mut vars, graph);
    // Slots for variables that only appear outside the pattern (they
    // stay unbound, but grouping and aggregation still reference them).
    let group_by: Vec<usize> = query.group_by.iter().map(|v| vars.slot(v)).collect();
    let mut aggregates = Vec::new();
    for p in &query.projections {
        if let Projection::Aggregate {
            function,
            var,
            alias,
        } = p
        {
            let var = match (function, var) {
                (AggregateFn::CountDistinct, None) => {
                    return Err(QueryError::Eval("COUNT(DISTINCT *) unsupported".into()))
                }
                (AggregateFn::Min | AggregateFn::Max, None) => {
                    return Err(QueryError::Eval(format!("{function:?} needs a variable")))
                }
                (_, v) => v.as_deref().map(|v| vars.slot(v)),
            };
            aggregates.push(RAggregate {
                function: *function,
                var,
                alias: alias.clone(),
            });
        }
    }
    for k in &query.order_by {
        vars.slot(&k.var);
    }
    Ok(Resolved {
        vars,
        pattern,
        group_by,
        aggregates,
    })
}

// ----------------------------------------------------------- planner --

/// Planner view of one triple pattern: which slots are variables (by an
/// arbitrary dense key) and the cardinality estimate when unbound.
pub(crate) struct PlanTp {
    /// Variable key per position; `None` = ground.
    pub(crate) vars: [Option<usize>; 3],
    /// Estimated matches with nothing bound (predicate cardinality when
    /// the predicate is ground, graph size otherwise).
    pub(crate) card: u64,
    /// A ground term is absent from the graph: matches nothing.
    pub(crate) missing: bool,
}

/// Greedy join ordering: repeatedly pick the most selective remaining
/// pattern — most bound positions first (ground terms and already-bound
/// variables), smallest cardinality estimate as tie-break — then treat
/// its variables as bound. Returns `(original index, estimate)` pairs in
/// execution order.
pub(crate) fn plan_bgp(tps: &[PlanTp]) -> Vec<(usize, u64)> {
    let mut remaining: Vec<usize> = (0..tps.len()).collect();
    let mut bound: BTreeSet<usize> = BTreeSet::new();
    let mut out = Vec::with_capacity(tps.len());
    while !remaining.is_empty() {
        let mut best = 0usize;
        let mut best_key = (0usize, 0i64);
        for (i, &idx) in remaining.iter().enumerate() {
            let tp = &tps[idx];
            let bound_count = tp
                .vars
                .iter()
                .filter(|v| match v {
                    None => true,
                    Some(v) => bound.contains(v),
                })
                .count();
            let est = estimate(tp, bound_count);
            // Highest bound count, then lowest estimate; first wins ties.
            let key = (bound_count, -(est as i64));
            if i == 0 || key > best_key {
                best = i;
                best_key = key;
            }
        }
        let idx = remaining.remove(best);
        let tp = &tps[idx];
        let bound_count = tp
            .vars
            .iter()
            .filter(|v| match v {
                None => true,
                Some(v) => bound.contains(v),
            })
            .count();
        let est = estimate(tp, bound_count);
        for v in tp.vars.iter().flatten() {
            bound.insert(*v);
        }
        out.push((idx, est));
    }
    out
}

/// Cardinality estimate for a pattern given how many of its positions
/// are bound at this point of the plan.
pub(crate) fn estimate(tp: &PlanTp, bound_count: usize) -> u64 {
    if tp.missing {
        return 0;
    }
    if bound_count == 3 {
        return 1;
    }
    // A bound join variable narrows the scan; halve per bound position
    // so estimates stay comparable between plans without pretending to
    // more precision than one-dimensional statistics give us.
    tp.card >> bound_count.min(2)
}

pub(crate) fn plan_tp_of_resolved(tp: &RTriple, graph: &Graph) -> PlanTp {
    let var_of = |p: &RPos| match p {
        RPos::Var(v) => Some(*v),
        _ => None,
    };
    let missing = [tp.s, tp.p, tp.o]
        .iter()
        .any(|p| matches!(p, RPos::Missing));
    let card = match tp.p {
        RPos::Const(pid) => graph.predicate_cardinality(pid) as u64,
        RPos::Missing => 0,
        RPos::Var(_) => graph.len() as u64,
    };
    PlanTp {
        vars: [var_of(&tp.s), var_of(&tp.p), var_of(&tp.o)],
        card,
        missing,
    }
}

/// Planner view of an AST pattern, used by [`explain`]/[`explain_on`].
/// With a graph the estimates are real statistics; without one, ground
/// predicates are simply assumed more selective than variable ones.
pub(crate) fn plan_tp_of_ast(
    tp: &TriplePattern,
    graph: Option<&Graph>,
    names: &mut VarTable,
) -> PlanTp {
    let mut vars = [None, None, None];
    if let VarOrTerm::Var(v) = &tp.subject {
        vars[0] = Some(names.slot(v));
    }
    if let VarOrIri::Var(v) = &tp.predicate {
        vars[1] = Some(names.slot(v));
    }
    if let VarOrTerm::Var(v) = &tp.object {
        vars[2] = Some(names.slot(v));
    }
    let (card, missing) = match (&tp.predicate, graph) {
        (VarOrIri::Iri(i), Some(g)) => match g.term_to_id(&Term::Iri(i.clone())) {
            Some(pid) => (g.predicate_cardinality(pid) as u64, false),
            None => (0, true),
        },
        (VarOrIri::Var(_), Some(g)) => (g.len() as u64, false),
        (VarOrIri::Iri(_), None) => (1, false),
        (VarOrIri::Var(_), None) => (u64::MAX >> 2, false),
    };
    PlanTp {
        vars,
        card,
        missing,
    }
}

// -------------------------------------------------------- evaluation --

/// Cross-worker cost state for one parallel evaluation: the
/// produced-row count is shared so the row budget bounds the query as a
/// whole (not each chunk), and the first worker to fail flips
/// `cancelled` so the others stop at their next stride check instead of
/// running their chunk to completion.
struct SharedCost {
    produced: AtomicU64,
    cancelled: AtomicBool,
}

/// Sentinel message of a worker that stopped because a *peer* failed;
/// filtered out at merge time so the peer's real error is what
/// surfaces.
const CANCELLED_BY_PEER: &str = "cancelled: another evaluation worker failed";

/// Per-evaluation cost accounting: every intermediate row produced is
/// charged against the row budget, and the deadline is polled every
/// `DEADLINE_STRIDE` rows so `Instant::now` stays off the hot path.
/// Workers of a parallel evaluation additionally share a [`SharedCost`]
/// through which budget accounting and cancellation are cooperative.
pub(crate) struct EvalState<'s> {
    pub(crate) produced: u64,
    deadline: Option<Instant>,
    row_budget: Option<u64>,
    shared: Option<&'s SharedCost>,
}

const DEADLINE_STRIDE: u64 = 1024;

impl<'s> EvalState<'s> {
    pub(crate) fn new(opts: &EvalOptions) -> Self {
        EvalState {
            produced: 0,
            deadline: opts.deadline,
            row_budget: opts.row_budget,
            shared: None,
        }
    }

    /// State for one worker of a parallel evaluation.
    fn worker(opts: &EvalOptions, shared: &'s SharedCost) -> Self {
        EvalState {
            produced: 0,
            deadline: opts.deadline,
            row_budget: opts.row_budget,
            shared: Some(shared),
        }
    }

    #[inline]
    pub(crate) fn charge(&mut self) -> Result<(), QueryError> {
        self.produced += 1;
        if let Some(budget) = self.row_budget {
            let total = match self.shared {
                Some(shared) => shared.produced.fetch_add(1, Ordering::Relaxed) + 1,
                None => self.produced,
            };
            if total > budget {
                if let Some(shared) = self.shared {
                    shared.cancelled.store(true, Ordering::Relaxed);
                }
                return Err(QueryError::Timeout(format!(
                    "row budget of {budget} intermediate rows exhausted"
                )));
            }
        }
        if self.produced.is_multiple_of(DEADLINE_STRIDE) {
            if let Some(shared) = self.shared {
                if shared.cancelled.load(Ordering::Relaxed) {
                    return Err(QueryError::Timeout(CANCELLED_BY_PEER.into()));
                }
            }
            if let Some(deadline) = self.deadline {
                if Instant::now() > deadline {
                    if let Some(shared) = self.shared {
                        shared.cancelled.store(true, Ordering::Relaxed);
                    }
                    return Err(QueryError::Timeout("deadline exceeded".into()));
                }
            }
        }
        Ok(())
    }
}

pub(crate) struct EvalCtx<'g> {
    pub(crate) graph: &'g Graph,
    pub(crate) reorder: bool,
}

/// Bind a scanned id into a row slot, or check consistency when the
/// pattern repeats a variable.
#[inline]
pub(crate) fn bind_slot(row: &mut IdRow, pos: &RPos, id: TermId) -> bool {
    match pos {
        RPos::Var(v) => {
            let raw = id.to_u32();
            if row[*v] == UNBOUND {
                row[*v] = raw;
                true
            } else {
                row[*v] == raw
            }
        }
        // Ground positions were matched by the index scan itself.
        RPos::Const(_) | RPos::Missing => true,
    }
}

fn join_triple(
    ctx: &EvalCtx<'_>,
    state: &mut EvalState<'_>,
    tp: &RTriple,
    input: Vec<IdRow>,
) -> Result<Vec<IdRow>, QueryError> {
    let mut out = Vec::new();
    for row in input {
        let resolve = |pos: &RPos| -> Option<Option<TermId>> {
            // Outer None = can't match; inner None = wildcard scan.
            match pos {
                RPos::Const(id) => Some(Some(*id)),
                RPos::Missing => None,
                RPos::Var(v) => Some(if row[*v] == UNBOUND {
                    None
                } else {
                    Some(TermId::from_u32(row[*v]))
                }),
            }
        };
        let (Some(s), Some(p), Some(o)) = (resolve(&tp.s), resolve(&tp.p), resolve(&tp.o)) else {
            continue;
        };
        for (sid, pid, oid) in ctx.graph.ids_matching(s, p, o) {
            let mut nb = row.clone();
            if bind_slot(&mut nb, &tp.s, sid)
                && bind_slot(&mut nb, &tp.p, pid)
                && bind_slot(&mut nb, &tp.o, oid)
            {
                state.charge()?;
                out.push(nb);
            }
        }
    }
    Ok(out)
}

pub(crate) fn eval_pattern(
    ctx: &EvalCtx<'_>,
    state: &mut EvalState<'_>,
    pattern: &RPattern,
    input: Vec<IdRow>,
) -> Result<Vec<IdRow>, QueryError> {
    match pattern {
        RPattern::Basic(tps) => {
            let order: Vec<usize> = if ctx.reorder {
                let plan_tps: Vec<PlanTp> = tps
                    .iter()
                    .map(|tp| plan_tp_of_resolved(tp, ctx.graph))
                    .collect();
                plan_bgp(&plan_tps).into_iter().map(|(i, _)| i).collect()
            } else {
                (0..tps.len()).collect()
            };
            let mut current = input;
            for idx in order {
                current = join_triple(ctx, state, &tps[idx], current)?;
                if current.is_empty() {
                    break;
                }
            }
            Ok(current)
        }
        RPattern::Group(elems) => {
            let mut current = input;
            for e in elems {
                current = eval_pattern(ctx, state, e, current)?;
                if current.is_empty() && !matches!(e, RPattern::Optional(_)) {
                    break;
                }
            }
            Ok(current)
        }
        RPattern::Optional(inner) => {
            let mut out = Vec::new();
            for row in input {
                let extended = eval_pattern(ctx, state, inner, vec![row.clone()])?;
                if extended.is_empty() {
                    state.charge()?;
                    out.push(row);
                } else {
                    out.extend(extended);
                }
            }
            Ok(out)
        }
        RPattern::Union(left, right) => {
            let mut out = eval_pattern(ctx, state, left, input.clone())?;
            out.extend(eval_pattern(ctx, state, right, input)?);
            Ok(out)
        }
        RPattern::Filter(expr) => Ok(input
            .into_iter()
            .filter(|row| {
                eval_expr(expr, row, ctx.graph)
                    .and_then(|v| effective_boolean(&v))
                    .unwrap_or(false)
            })
            .collect()),
    }
}

// ------------------------------------------------------- expressions --

/// A computed expression value.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Value {
    Term(Term),
    Bool(bool),
}

pub(crate) fn slot_term<'g>(row: &IdRow, slot: usize, graph: &'g Graph) -> Option<&'g Term> {
    if row[slot] == UNBOUND {
        None
    } else {
        Some(graph.id_to_term(TermId::from_u32(row[slot])))
    }
}

pub(crate) fn eval_expr(expr: &RExpr, row: &IdRow, graph: &Graph) -> Option<Value> {
    match expr {
        RExpr::Var(slot) => slot_term(row, *slot, graph).cloned().map(Value::Term),
        RExpr::Constant(t) => Some(Value::Term(t.clone())),
        RExpr::Bound(slot) => Some(Value::Bool(row[*slot] != UNBOUND)),
        RExpr::Not(inner) => {
            let v = eval_expr(inner, row, graph)?;
            Some(Value::Bool(!effective_boolean(&v)?))
        }
        RExpr::And(l, r) => {
            let lv = eval_expr(l, row, graph).and_then(|v| effective_boolean(&v));
            let rv = eval_expr(r, row, graph).and_then(|v| effective_boolean(&v));
            match (lv, rv) {
                (Some(false), _) | (_, Some(false)) => Some(Value::Bool(false)),
                (Some(true), Some(true)) => Some(Value::Bool(true)),
                _ => None,
            }
        }
        RExpr::Or(l, r) => {
            let lv = eval_expr(l, row, graph).and_then(|v| effective_boolean(&v));
            let rv = eval_expr(r, row, graph).and_then(|v| effective_boolean(&v));
            match (lv, rv) {
                (Some(true), _) | (_, Some(true)) => Some(Value::Bool(true)),
                (Some(false), Some(false)) => Some(Value::Bool(false)),
                _ => None,
            }
        }
        RExpr::Compare(op, l, r) => {
            let lt = match eval_expr(l, row, graph)? {
                Value::Term(t) => t,
                Value::Bool(x) => Term::Literal(provbench_rdf::Literal::boolean(x)),
            };
            let rt = match eval_expr(r, row, graph)? {
                Value::Term(t) => t,
                Value::Bool(x) => Term::Literal(provbench_rdf::Literal::boolean(x)),
            };
            match op {
                CompareOp::Eq => Some(Value::Bool(lt == rt)),
                CompareOp::Ne => Some(Value::Bool(lt != rt)),
                _ => {
                    let ord = compare_terms(&lt, &rt)?;
                    Some(Value::Bool(match op {
                        CompareOp::Lt => ord.is_lt(),
                        CompareOp::Le => ord.is_le(),
                        CompareOp::Gt => ord.is_gt(),
                        CompareOp::Ge => ord.is_ge(),
                        CompareOp::Eq | CompareOp::Ne => unreachable!(),
                    }))
                }
            }
        }
        RExpr::Str(inner) => {
            let v = eval_expr(inner, row, graph)?;
            let s = match v {
                Value::Term(Term::Iri(i)) => i.as_str().to_owned(),
                Value::Term(Term::Literal(l)) => l.lexical().to_owned(),
                Value::Term(Term::Blank(bl)) => bl.label().to_owned(),
                Value::Bool(x) => x.to_string(),
            };
            Some(Value::Term(Term::Literal(provbench_rdf::Literal::simple(
                s,
            ))))
        }
        RExpr::Contains(h, n) | RExpr::StrStarts(h, n) | RExpr::StrEnds(h, n) => {
            let hay = string_of(eval_expr(h, row, graph)?)?;
            let needle = string_of(eval_expr(n, row, graph)?)?;
            Some(Value::Bool(match expr {
                RExpr::Contains(..) => hay.contains(&needle),
                RExpr::StrStarts(..) => hay.starts_with(&needle),
                _ => hay.ends_with(&needle),
            }))
        }
        RExpr::Lang(inner) => {
            let Value::Term(Term::Literal(l)) = eval_expr(inner, row, graph)? else {
                return None;
            };
            Some(Value::Term(Term::Literal(provbench_rdf::Literal::simple(
                l.language().unwrap_or(""),
            ))))
        }
        RExpr::Datatype(inner) => {
            let Value::Term(Term::Literal(l)) = eval_expr(inner, row, graph)? else {
                return None;
            };
            Some(Value::Term(Term::Iri(l.datatype())))
        }
        RExpr::IsIri(inner) => {
            let v = eval_expr(inner, row, graph)?;
            Some(Value::Bool(matches!(v, Value::Term(Term::Iri(_)))))
        }
        RExpr::IsLiteral(inner) => {
            let v = eval_expr(inner, row, graph)?;
            Some(Value::Bool(matches!(v, Value::Term(Term::Literal(_)))))
        }
        RExpr::IsBlank(inner) => {
            let v = eval_expr(inner, row, graph)?;
            Some(Value::Bool(matches!(v, Value::Term(Term::Blank(_)))))
        }
        RExpr::Regex(inner, pattern, ci) => {
            let Value::Term(t) = eval_expr(inner, row, graph)? else {
                return None;
            };
            let text = match &t {
                Term::Literal(l) => l.lexical().to_owned(),
                Term::Iri(i) => i.as_str().to_owned(),
                Term::Blank(_) => return None,
            };
            Some(Value::Bool(simple_regex_match(&text, pattern, *ci)))
        }
    }
}

/// The string form of a value (for the string builtins).
fn string_of(v: Value) -> Option<String> {
    match v {
        Value::Term(Term::Literal(l)) => Some(l.lexical().to_owned()),
        Value::Term(Term::Iri(i)) => Some(i.as_str().to_owned()),
        Value::Term(Term::Blank(_)) => None,
        Value::Bool(b) => Some(b.to_string()),
    }
}

/// Anchored-substring matching: `^` and `$` anchors are honoured; any
/// other metacharacters are treated literally (documented subset).
fn simple_regex_match(text: &str, pattern: &str, case_insensitive: bool) -> bool {
    let (text, pattern) = if case_insensitive {
        (text.to_ascii_lowercase(), pattern.to_ascii_lowercase())
    } else {
        (text.to_owned(), pattern.to_owned())
    };
    let starts = pattern.starts_with('^');
    let ends = pattern.ends_with('$') && pattern.len() > usize::from(starts);
    let core = &pattern[usize::from(starts)..pattern.len() - usize::from(ends)];
    match (starts, ends) {
        (true, true) => text == core,
        (true, false) => text.starts_with(core),
        (false, true) => text.ends_with(core),
        (false, false) => text.contains(core),
    }
}

pub(crate) fn effective_boolean(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        Value::Term(Term::Literal(l)) => {
            if let Some(b) = l.as_boolean() {
                return Some(b);
            }
            if let Some(i) = l.as_integer() {
                return Some(i != 0);
            }
            Some(!l.lexical().is_empty())
        }
        Value::Term(_) => None,
    }
}

/// SPARQL-ish ordering: numbers numerically, dateTimes chronologically,
/// other literals lexically, IRIs by string; mixed kinds by kind.
pub(crate) fn compare_terms(a: &Term, b: &Term) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Term::Literal(la), Term::Literal(lb)) => {
            if let (Some(x), Some(y)) = (la.as_integer(), lb.as_integer()) {
                return Some(x.cmp(&y));
            }
            if let (Ok(x), Ok(y)) = (la.lexical().parse::<f64>(), lb.lexical().parse::<f64>()) {
                if is_numeric(la) && is_numeric(lb) {
                    return x.partial_cmp(&y);
                }
            }
            if let (Some(x), Some(y)) = (la.as_date_time(), lb.as_date_time()) {
                return Some(x.cmp(&y));
            }
            Some(la.lexical().cmp(lb.lexical()))
        }
        (Term::Iri(x), Term::Iri(y)) => Some(x.as_str().cmp(y.as_str())),
        (Term::Blank(x), Term::Blank(y)) => Some(x.label().cmp(y.label())),
        // Mixed kinds: blank < IRI < literal (SPARQL's total order spirit).
        _ => Some(kind_rank(a).cmp(&kind_rank(b))),
    }
}

fn is_numeric(l: &provbench_rdf::Literal) -> bool {
    matches!(
        l.datatype().as_str(),
        provbench_rdf::xsd::INTEGER
            | provbench_rdf::xsd::DECIMAL
            | provbench_rdf::xsd::DOUBLE
            | provbench_rdf::xsd::LONG
            | provbench_rdf::xsd::INT
    )
}

fn kind_rank(t: &Term) -> u8 {
    match t {
        Term::Blank(_) => 0,
        Term::Iri(_) => 1,
        Term::Literal(_) => 2,
    }
}

// --------------------------------------------------------- aggregates --

pub(crate) fn apply_aggregates(
    vars: &VarTable,
    group_by: &[usize],
    aggregates: &[RAggregate],
    rows: Vec<IdRow>,
    graph: &Graph,
) -> Result<Vec<Bindings>, QueryError> {
    // Group rows by the GROUP BY key, still in id-space.
    let mut groups: BTreeMap<Vec<u32>, Vec<IdRow>> = BTreeMap::new();
    for row in rows {
        let key: Vec<u32> = group_by.iter().map(|&slot| row[slot]).collect();
        groups.entry(key).or_default().push(row);
    }
    // With no GROUP BY but aggregates present, everything is one group —
    // but zero input rows still produce one row of zero counts.
    if groups.is_empty() && group_by.is_empty() {
        groups.insert(Vec::new(), Vec::new());
    }

    // Decode the group keys and emit output in term order (matching the
    // pre-interning evaluator, which grouped on decoded terms).
    let mut keyed: Vec<(Vec<Option<Term>>, Bindings)> = Vec::with_capacity(groups.len());
    for (key, members) in groups {
        let decoded_key: Vec<Option<Term>> = key
            .iter()
            .map(|&raw| (raw != UNBOUND).then(|| graph.id_to_term(TermId::from_u32(raw)).clone()))
            .collect();
        let mut out_row = Bindings::new();
        for (&slot, term) in group_by.iter().zip(&decoded_key) {
            if let Some(t) = term {
                out_row.insert(vars.names[slot].clone(), t.clone());
            }
        }
        for agg in aggregates {
            let value = match (agg.function, agg.var) {
                (AggregateFn::Count, None) => {
                    Term::Literal(provbench_rdf::Literal::integer(members.len() as i64))
                }
                (AggregateFn::Count, Some(slot)) => Term::Literal(provbench_rdf::Literal::integer(
                    members.iter().filter(|m| m[slot] != UNBOUND).count() as i64,
                )),
                (AggregateFn::CountDistinct, Some(slot)) => {
                    let distinct: BTreeSet<u32> = members
                        .iter()
                        .map(|m| m[slot])
                        .filter(|&raw| raw != UNBOUND)
                        .collect();
                    Term::Literal(provbench_rdf::Literal::integer(distinct.len() as i64))
                }
                (AggregateFn::Min | AggregateFn::Max, Some(slot)) => {
                    let mut best: Option<&Term> = None;
                    for m in &members {
                        if let Some(t) = slot_term(m, slot, graph) {
                            let better = match best {
                                None => true,
                                Some(cur) => {
                                    let ord =
                                        compare_terms(t, cur).unwrap_or(std::cmp::Ordering::Equal);
                                    if agg.function == AggregateFn::Min {
                                        ord.is_lt()
                                    } else {
                                        ord.is_gt()
                                    }
                                }
                            };
                            if better {
                                best = Some(t);
                            }
                        }
                    }
                    match best {
                        Some(t) => t.clone(),
                        None => continue, // no values: leave alias unbound
                    }
                }
                // Unreachable: resolution already rejected these shapes.
                (f, None) => return Err(QueryError::Eval(format!("{f:?} needs a variable"))),
            };
            out_row.insert(agg.alias.clone(), value);
        }
        keyed.push((decoded_key, out_row));
    }
    keyed.sort_by(|(a, _), (b, _)| a.cmp(b));
    Ok(keyed.into_iter().map(|(_, row)| row).collect())
}

// ------------------------------------------------- parallel execution --

/// Counter of parallel evaluation chunks by outcome
/// (`result="ok"|"cancelled"|"timeout"|"error"`).
const PARALLEL_CHUNKS_TOTAL: &str = "provbench_query_parallel_chunks_total";
/// Histogram of per-chunk wall-clock time on the parallel path.
const PARALLEL_CHUNK_SECONDS: &str = "provbench_query_parallel_chunk_seconds";

/// Flatten nested groups into the sequential "spine" of stages the
/// top-level evaluation runs through.
fn flatten_spine<'p>(pattern: &'p RPattern, out: &mut Vec<&'p RPattern>) {
    match pattern {
        RPattern::Group(elems) => {
            for e in elems {
                flatten_spine(e, out);
            }
        }
        other => out.push(other),
    }
}

/// Whether a spine stage maps input rows to output rows independently
/// and in input order (`f(a ++ b) == f(a) ++ f(b)`), so per-chunk
/// evaluation concatenated in chunk order reproduces the serial output
/// byte for byte. `UNION` on the spine emits all left results before
/// all right results — chunking would interleave them — so it forces
/// the serial path. A UNION *nested inside* an OPTIONAL is fine:
/// OPTIONAL evaluates its inner pattern one row at a time.
fn order_preserving(stage: &RPattern) -> bool {
    match stage {
        RPattern::Basic(_) | RPattern::Optional(_) | RPattern::Filter(_) => true,
        RPattern::Group(elems) => elems.iter().all(order_preserving),
        RPattern::Union(..) => false,
    }
}

/// Evaluate the tail of the spine: the remaining joins of the leading
/// BGP (already in planner order), then the remaining stages.
fn eval_chain(
    ctx: &EvalCtx<'_>,
    state: &mut EvalState<'_>,
    rest_tps: &[RTriple],
    rest_stages: &[&RPattern],
    input: Vec<IdRow>,
) -> Result<Vec<IdRow>, QueryError> {
    let mut current = input;
    for tp in rest_tps {
        if current.is_empty() {
            break;
        }
        current = join_triple(ctx, state, tp, current)?;
    }
    for stage in rest_stages {
        if current.is_empty() && !matches!(stage, RPattern::Optional(_)) {
            break;
        }
        current = eval_pattern(ctx, state, stage, current)?;
    }
    Ok(current)
}

/// Parallel pattern evaluation, when the options and the pattern shape
/// allow it.
///
/// The parallel path evaluates the first (most selective) pattern of
/// the leading BGP serially into a candidate slab, splits the slab into
/// per-worker chunks, runs the remaining join chain per chunk on scoped
/// threads, and returns the per-chunk row slabs **in chunk order** —
/// the caller (the plan layer's chunk-drain operator) concatenates them
/// in that order, so the output is byte-identical to serial evaluation
/// for any job count. Every stage downstream of the split is
/// [`order_preserving`]. Deadline and row-budget enforcement is
/// cooperative: the budget counter lives in a [`SharedCost`] and the
/// first worker to fail cancels the rest.
///
/// Returns `Ok(None)` when the parallel path does not apply — `jobs <=
/// 1`, or the pattern has no splittable leading BGP (e.g. a top-level
/// UNION) — and the caller should stream through the serial operator
/// pipeline instead. A candidate slab with fewer than two rows finishes
/// on this thread (nothing to split) but still reports `Some`.
pub(crate) fn eval_parallel_chunks(
    ctx: &EvalCtx<'_>,
    opts: &EvalOptions,
    pattern: &RPattern,
    nvars: usize,
    metrics: Option<&Registry>,
) -> Result<Option<Vec<Vec<IdRow>>>, QueryError> {
    let jobs = opts.effective_jobs();
    let mut stages: Vec<&RPattern> = Vec::new();
    flatten_spine(pattern, &mut stages);
    let splittable = jobs > 1
        && matches!(stages.first(), Some(RPattern::Basic(tps)) if !tps.is_empty())
        && stages.iter().all(|s| order_preserving(s));
    if !splittable {
        return Ok(None);
    }
    let seed = vec![vec![UNBOUND; nvars]];
    let Some(RPattern::Basic(tps)) = stages.first() else {
        unreachable!("splittable checked the leading stage is a BGP");
    };
    // Same plan the serial path would pick for this BGP.
    let order: Vec<usize> = if ctx.reorder {
        let plan_tps: Vec<PlanTp> = tps
            .iter()
            .map(|tp| plan_tp_of_resolved(tp, ctx.graph))
            .collect();
        plan_bgp(&plan_tps).into_iter().map(|(i, _)| i).collect()
    } else {
        (0..tps.len()).collect()
    };
    let mut state = EvalState::new(opts);
    let candidates = join_triple(ctx, &mut state, &tps[order[0]], seed)?;
    let rest_tps: Vec<RTriple> = order[1..].iter().map(|&i| tps[i].clone()).collect();
    let rest_stages = &stages[1..];
    if candidates.len() < 2 {
        // Nothing to split; finish on this thread (same state, same
        // chain — identical to the serial path by construction).
        return Ok(Some(vec![eval_chain(
            ctx,
            &mut state,
            &rest_tps,
            rest_stages,
            candidates,
        )?]));
    }

    let chunk_size = candidates.len().div_ceil(jobs);
    let chunks: Vec<&[IdRow]> = candidates.chunks(chunk_size).collect();
    // The seed scan above already charged for the candidate rows; start
    // the shared counter there so the budget bounds the whole query
    // exactly as it does serially.
    let shared = SharedCost {
        produced: AtomicU64::new(state.produced),
        cancelled: AtomicBool::new(false),
    };
    let first_error: Mutex<Option<QueryError>> = Mutex::new(None);
    let (shared, first_error) = (&shared, &first_error);
    let rest_tps = rest_tps.as_slice();
    let chunk_results: Vec<Option<Vec<IdRow>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let start = Instant::now();
                    let mut state = EvalState::worker(opts, shared);
                    let result = eval_chain(ctx, &mut state, rest_tps, rest_stages, chunk.to_vec());
                    if let Some(registry) = metrics {
                        let outcome = match &result {
                            Ok(_) => "ok",
                            Err(QueryError::Timeout(m)) if m == CANCELLED_BY_PEER => "cancelled",
                            Err(QueryError::Timeout(_)) => "timeout",
                            Err(_) => "error",
                        };
                        registry
                            .histogram(
                                PARALLEL_CHUNK_SECONDS,
                                "Per-chunk wall-clock time of parallel query evaluation",
                                LATENCY_BUCKETS,
                            )
                            .observe_duration(start.elapsed());
                        registry
                            .counter_with(
                                PARALLEL_CHUNKS_TOTAL,
                                "Parallel evaluation chunks by outcome",
                                &[("result", outcome)],
                            )
                            .inc();
                    }
                    match result {
                        Ok(rows) => Some(rows),
                        Err(e) => {
                            shared.cancelled.store(true, Ordering::Relaxed);
                            if !matches!(&e, QueryError::Timeout(m) if m == CANCELLED_BY_PEER) {
                                let mut slot = first_error.lock().unwrap();
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                            }
                            None
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });
    if let Some(e) = first_error.lock().unwrap().take() {
        return Err(e);
    }
    // A worker only fails after recording an error (or after a peer
    // recorded one), and the merge above returned it — so every chunk
    // here succeeded.
    Ok(Some(
        chunk_results
            .into_iter()
            .map(|rows| rows.expect("chunk failed without a recorded error"))
            .collect(),
    ))
}

// ---------------------------------------------------------- execution --

/// Execute a parsed query over a graph: a thin wrapper over the
/// physical plan layer in [`crate::plan`] (lowering, streaming
/// operators, and the parallel chunk drain all live there), kept as
/// the evaluator tests' materializing entry point. `metrics` receives
/// the parallel path's per-chunk timings, when set.
#[cfg(test)]
pub(crate) fn run(
    graph: &Graph,
    query: &Query,
    opts: &EvalOptions,
    metrics: Option<&Registry>,
) -> Result<Solutions, QueryError> {
    crate::plan::solutions(graph, query, opts, metrics)
}

/// Execute a parsed query over a graph with default options. Crate
/// internal: [`crate::QueryEngine`] is the public entry point.
#[cfg(test)]
pub(crate) fn execute(graph: &Graph, query: &Query) -> Result<Solutions, QueryError> {
    run(graph, query, &EvalOptions::default(), None)
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse_query;
    use super::*;
    use crate::plan::{explain, explain_on};
    use provbench_rdf::{parse_turtle, Literal};

    fn graph() -> Graph {
        let (g, _) = parse_turtle(
            r#"
            @prefix e: <http://e/> .
            @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
            e:r1 a e:Run ; e:start "2013-01-01T00:00:00Z"^^xsd:dateTime ; e:by e:alice ; e:size 5 .
            e:r2 a e:Run ; e:start "2013-02-01T00:00:00Z"^^xsd:dateTime ; e:by e:bob ; e:size 9 .
            e:r3 a e:Run ; e:by e:alice ; e:size 2 .
            e:t1 a e:Template .
            e:r1 e:of e:t1 . e:r2 e:of e:t1 .
            "#,
        )
        .unwrap();
        g
    }

    fn run_q(q: &str) -> Solutions {
        let query = parse_query(q).unwrap();
        execute(&graph(), &query).unwrap()
    }

    #[test]
    fn basic_bgp() {
        let s = run_q("PREFIX e: <http://e/> SELECT ?r WHERE { ?r a e:Run }");
        assert_eq!(s.len(), 3);
        assert_eq!(s.variables, vec!["r"]);
    }

    #[test]
    fn join_across_patterns() {
        let s = run_q(
            "PREFIX e: <http://e/> SELECT ?r ?who WHERE { ?r a e:Run . ?r e:by ?who . ?r e:of e:t1 }",
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn optional_keeps_unmatched() {
        let s = run_q(
            "PREFIX e: <http://e/> SELECT ?r ?start WHERE { ?r a e:Run OPTIONAL { ?r e:start ?start } } ORDER BY ?r",
        );
        assert_eq!(s.len(), 3);
        assert!(s.get(0, "start").is_some()); // r1
        assert!(s.get(2, "start").is_none()); // r3
    }

    #[test]
    fn union_combines() {
        let s = run_q(
            "PREFIX e: <http://e/> SELECT ?x WHERE { { ?x a e:Run } UNION { ?x a e:Template } }",
        );
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn filter_comparisons() {
        let s = run_q("PREFIX e: <http://e/> SELECT ?r WHERE { ?r e:size ?s FILTER (?s > 4) }");
        assert_eq!(s.len(), 2);
        let s = run_q(
            "PREFIX e: <http://e/> SELECT ?r WHERE { ?r e:size ?s FILTER (?s >= 2 && ?s != 9) }",
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn filter_on_datetime() {
        let s = run_q(
            r#"PREFIX e: <http://e/> PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
               SELECT ?r WHERE { ?r e:start ?t FILTER (?t < "2013-01-15T00:00:00Z"^^xsd:dateTime) }"#,
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn filter_bound_and_not() {
        let s = run_q(
            "PREFIX e: <http://e/> SELECT ?r WHERE { ?r a e:Run OPTIONAL { ?r e:start ?t } FILTER (!BOUND(?t)) }",
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn regex_and_str_filters() {
        let s = run_q(
            r#"PREFIX e: <http://e/> SELECT ?r WHERE { ?r a e:Run FILTER REGEX(STR(?r), "r[0-9]") }"#,
        );
        // Our regex subset is literal: "r[0-9]" matches nothing.
        assert_eq!(s.len(), 0);
        let s = run_q(
            r#"PREFIX e: <http://e/> SELECT ?r WHERE { ?r a e:Run FILTER REGEX(STR(?r), "^http://e/r") }"#,
        );
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn order_limit_offset() {
        let s = run_q(
            "PREFIX e: <http://e/> SELECT ?r ?s WHERE { ?r e:size ?s } ORDER BY DESC(?s) LIMIT 2",
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0, "s").unwrap(), &Term::Literal(Literal::integer(9)));
        let s2 =
            run_q("PREFIX e: <http://e/> SELECT ?r ?s WHERE { ?r e:size ?s } ORDER BY ?s OFFSET 1");
        assert_eq!(s2.len(), 2);
        assert_eq!(s2.get(0, "s").unwrap(), &Term::Literal(Literal::integer(5)));
    }

    #[test]
    fn group_by_count() {
        let s = run_q(
            "PREFIX e: <http://e/> SELECT ?who (COUNT(?r) AS ?n) WHERE { ?r e:by ?who } GROUP BY ?who ORDER BY ?who",
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0, "n").unwrap(), &Term::Literal(Literal::integer(2))); // alice
        assert_eq!(s.get(1, "n").unwrap(), &Term::Literal(Literal::integer(1)));
        // bob
    }

    #[test]
    fn count_star_on_empty_is_zero() {
        let s = run_q("PREFIX e: <http://e/> SELECT (COUNT(*) AS ?n) WHERE { ?r a e:Nothing }");
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0, "n").unwrap(), &Term::Literal(Literal::integer(0)));
    }

    #[test]
    fn min_max_aggregates() {
        let s = run_q(
            "PREFIX e: <http://e/> SELECT (MIN(?s) AS ?lo) (MAX(?s) AS ?hi) WHERE { ?r e:size ?s }",
        );
        assert_eq!(s.get(0, "lo").unwrap(), &Term::Literal(Literal::integer(2)));
        assert_eq!(s.get(0, "hi").unwrap(), &Term::Literal(Literal::integer(9)));
    }

    #[test]
    fn distinct_dedups() {
        let s = run_q("PREFIX e: <http://e/> SELECT DISTINCT ?who WHERE { ?r e:by ?who }");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn repeated_variable_join_consistency() {
        // ?x e:of ?x never matches (no self loops).
        let s = run_q("PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:of ?x }");
        assert!(s.is_empty());
    }

    #[test]
    fn select_star_projects_all_vars() {
        let s = run_q("PREFIX e: <http://e/> SELECT * WHERE { ?r e:by ?who }");
        assert_eq!(s.variables, vec!["r", "who"]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn ground_triple_check() {
        let s = run_q("PREFIX e: <http://e/> SELECT (COUNT(*) AS ?n) WHERE { e:r1 e:by e:alice }");
        assert_eq!(s.get(0, "n").unwrap(), &Term::Literal(Literal::integer(1)));
    }

    #[test]
    fn unknown_constant_matches_nothing() {
        // e:r9 was never interned by this graph: resolution marks the
        // position Missing and the BGP yields no rows (instead of
        // panicking or scanning).
        let s = run_q("PREFIX e: <http://e/> SELECT ?p WHERE { e:r9 ?p ?o }");
        assert!(s.is_empty());
        let s = run_q("PREFIX e: <http://e/> SELECT ?r WHERE { ?r a e:Run . ?r e:nope ?o }");
        assert!(s.is_empty());
    }

    #[test]
    fn explain_shows_planned_order() {
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?r WHERE { ?x ?p ?o . ?r a e:Run } ORDER BY ?r LIMIT 2",
        )
        .unwrap();
        let on = explain(&q, &EvalOptions::default());
        // The typed pattern must come first under the planner.
        let typed_pos = on.find("?r <http").unwrap();
        let wildcard_pos = on.find("?x ?p ?o").unwrap();
        assert!(typed_pos < wildcard_pos, "{on}");
        assert!(on.contains("planner on"));
        assert!(on.contains("OrderBy"));
        assert!(on.contains("Limit 2"));
        let off = explain(&q, &EvalOptions::lexical());
        let typed_pos = off.find("?r <http").unwrap();
        let wildcard_pos = off.find("?x ?p ?o").unwrap();
        assert!(wildcard_pos < typed_pos, "{off}");
        // Composite patterns render their algebra nodes.
        let q2 = parse_query(
            "SELECT ?x WHERE { { ?x ?p ?o } UNION { ?x ?q ?z } OPTIONAL { ?x ?r ?w } FILTER (1=1) }",
        )
        .unwrap();
        let plan = explain(&q2, &EvalOptions::default());
        for node in ["IndexedJoin", "Union", "Optional", "Filter"] {
            assert!(plan.contains(node), "missing {node} in {plan}");
        }
    }

    #[test]
    fn explain_on_shows_estimates() {
        let g = graph();
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?r ?who WHERE { ?x ?p ?o . ?r e:by ?who . ?r a e:Run }",
        )
        .unwrap();
        let plan = explain_on(&g, &q, &EvalOptions::default());
        assert!(plan.contains("est ~"), "{plan}");
        // `a` has 4 triples, `e:by` has 3: the planner starts with one of
        // the ground-predicate patterns, never the wildcard.
        let first_line = plan.lines().nth(2).unwrap();
        assert!(!first_line.contains("?x ?p ?o"), "{plan}");
        // The wildcard pattern is estimated at the graph size while
        // unjoined patterns with ground predicates use their statistics.
        assert!(
            plan.contains("(est ~3 rows)") || plan.contains("(est ~1 rows)"),
            "{plan}"
        );
    }

    #[test]
    fn ask_queries() {
        let g = graph();
        let q = parse_query("PREFIX e: <http://e/> ASK { ?r a e:Run }").unwrap();
        assert_eq!(q.form, QueryForm::Ask);
        assert!(!execute(&g, &q).unwrap().is_empty());
        let s = execute(&g, &q).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.variables.is_empty());
        let q = parse_query("PREFIX e: <http://e/> ASK { ?r a e:Nothing }").unwrap();
        assert!(execute(&g, &q).unwrap().is_empty());
        // WHERE keyword also allowed.
        assert!(parse_query("ASK WHERE { ?s ?p ?o }").is_ok());
        // No modifiers after ASK.
        assert!(parse_query("ASK { ?s ?p ?o } LIMIT 3").is_err());
    }

    #[test]
    fn string_builtins() {
        let n = |q: &str| run_q(q).len();
        assert_eq!(
            n("PREFIX e: <http://e/> SELECT ?r WHERE { ?r a e:Run FILTER CONTAINS(STR(?r), \"r2\") }"),
            1
        );
        assert_eq!(
            n("PREFIX e: <http://e/> SELECT ?r WHERE { ?r a e:Run FILTER STRSTARTS(STR(?r), \"http://e/\") }"),
            3
        );
        assert_eq!(
            n("PREFIX e: <http://e/> SELECT ?r WHERE { ?r a e:Run FILTER STRENDS(STR(?r), \"3\") }"),
            1
        );
    }

    #[test]
    fn term_introspection_builtins() {
        // isIRI/isLiteral partition objects.
        let iris = run_q("PREFIX e: <http://e/> SELECT ?o WHERE { ?s e:by ?o FILTER ISIRI(?o) }");
        assert_eq!(iris.len(), 3);
        let lits =
            run_q("PREFIX e: <http://e/> SELECT ?o WHERE { ?s e:size ?o FILTER ISLITERAL(?o) }");
        assert_eq!(lits.len(), 3);
        let blanks = run_q("SELECT ?o WHERE { ?s ?p ?o FILTER ISBLANK(?o) }");
        assert!(blanks.is_empty());
        // DATATYPE of the sizes is xsd:integer.
        let typed = run_q(
            "PREFIX e: <http://e/> PREFIX xsd: <http://www.w3.org/2001/XMLSchema#> \
             SELECT ?o WHERE { ?s e:size ?o FILTER (DATATYPE(?o) = xsd:integer) }",
        );
        assert_eq!(typed.len(), 3);
        // LANG of a plain literal is "".
        let lang = run_q(
            "PREFIX e: <http://e/> SELECT ?s WHERE { ?s e:size ?o FILTER (LANG(?o) = \"\") }",
        );
        assert_eq!(lang.len(), 3);
    }

    #[test]
    fn planner_reordering_is_semantically_transparent() {
        // A deliberately bad written order: unbound wildcard first.
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?r ?who WHERE { ?r ?p ?x . ?r e:by ?who . ?r a e:Run }",
        )
        .unwrap();
        let with = run(&graph(), &q, &EvalOptions::default(), None).unwrap();
        let without = run(&graph(), &q, &EvalOptions::lexical(), None).unwrap();
        let norm = |s: &Solutions| {
            let mut v: Vec<String> = s.rows.iter().map(|r| format!("{r:?}")).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&with), norm(&without));
    }

    #[test]
    fn planner_prefers_bound_patterns() {
        // wildcard (card = |G|) vs ground predicate and object.
        let g = graph();
        let type_id = g
            .term_to_id(&Term::Iri(iri_of(
                "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
            )))
            .unwrap();
        let tps = vec![
            PlanTp {
                vars: [Some(0), Some(1), Some(2)],
                card: g.len() as u64,
                missing: false,
            },
            PlanTp {
                vars: [Some(0), None, None],
                card: g.predicate_cardinality(type_id) as u64,
                missing: false,
            },
        ];
        let order = plan_bgp(&tps);
        assert_eq!(order[0].0, 1, "ground pattern first: {order:?}");
        assert_eq!(order[1].0, 0);
        // Once ?s is bound by the first pattern, the wildcard's estimate
        // shrinks below its unbound cardinality.
        assert!(order[1].1 < g.len() as u64);
    }

    #[test]
    fn row_budget_aborts_cross_join() {
        let g = graph();
        let q = parse_query("SELECT * WHERE { ?a ?b ?c . ?d ?e ?f . ?g ?h ?i }").unwrap();
        let opts = EvalOptions::default().with_row_budget(100);
        match run(&g, &q, &opts, None) {
            Err(QueryError::Timeout(m)) => assert!(m.contains("row budget"), "{m}"),
            other => panic!("expected Timeout, got {other:?}"),
        }
        // A generous budget lets the same query finish.
        let opts = EvalOptions::default().with_row_budget(10_000_000);
        assert!(run(&g, &q, &opts, None).is_ok());
    }

    #[test]
    fn past_deadline_aborts() {
        let g = graph();
        let q = parse_query("SELECT * WHERE { ?a ?b ?c . ?d ?e ?f . ?g ?h ?i }").unwrap();
        // A deadline in the past trips at the first stride check.
        let opts = EvalOptions::default().with_deadline(Instant::now() - Duration::from_secs(1));
        match run(&g, &q, &opts, None) {
            Err(QueryError::Timeout(m)) => assert!(m.contains("deadline"), "{m}"),
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    fn iri_of(s: &str) -> provbench_rdf::Iri {
        provbench_rdf::Iri::new(s).unwrap()
    }

    /// A graph big enough that the parallel path actually splits the
    /// candidate slab across several chunks.
    fn big_graph() -> Graph {
        let mut ttl = String::from("@prefix e: <http://e/> .\n");
        for i in 0..64 {
            ttl.push_str(&format!(
                "e:r{i} a e:Run ; e:by e:u{} ; e:size {} .\n",
                i % 7,
                i % 13
            ));
        }
        parse_turtle(&ttl).unwrap().0
    }

    #[test]
    fn parallel_evaluation_is_byte_identical_to_serial() {
        let g = big_graph();
        for text in [
            "PREFIX e: <http://e/> SELECT ?r ?who WHERE { ?r a e:Run . ?r e:by ?who }",
            "PREFIX e: <http://e/> SELECT * WHERE { ?r a e:Run . ?r e:size ?s FILTER (?s > 6) }",
            "PREFIX e: <http://e/> SELECT ?r ?s WHERE { ?r a e:Run OPTIONAL { ?r e:size ?s FILTER (?s < 3) } }",
            "PREFIX e: <http://e/> SELECT ?who (COUNT(?r) AS ?n) WHERE { ?r a e:Run . ?r e:by ?who } GROUP BY ?who",
            "PREFIX e: <http://e/> SELECT DISTINCT ?who WHERE { ?r e:by ?who } ORDER BY ?who LIMIT 3",
            // UNION on the spine forces the serial fallback; output must
            // still match.
            "PREFIX e: <http://e/> SELECT ?x WHERE { { ?x a e:Run } UNION { ?x e:by e:u1 } }",
        ] {
            let q = parse_query(text).unwrap();
            let serial = run(&g, &q, &EvalOptions::default(), None).unwrap();
            for jobs in [0, 2, 3, 8] {
                let par = run(&g, &q, &EvalOptions::default().with_jobs(jobs), None).unwrap();
                assert_eq!(par, serial, "jobs={jobs} diverged for {text}");
            }
        }
    }

    #[test]
    fn parallel_lexical_order_matches_serial_lexical_order() {
        let g = big_graph();
        let q =
            parse_query("PREFIX e: <http://e/> SELECT ?r ?who WHERE { ?r a e:Run . ?r e:by ?who }")
                .unwrap();
        let serial = run(&g, &q, &EvalOptions::lexical(), None).unwrap();
        let par = run(&g, &q, &EvalOptions::lexical().with_jobs(4), None).unwrap();
        assert_eq!(par, serial);
    }

    #[test]
    fn parallel_row_budget_is_shared_across_workers() {
        let g = big_graph();
        let q = parse_query("SELECT * WHERE { ?a ?b ?c . ?d ?e ?f }").unwrap();
        // Each chunk stays well under the budget on its own; only the
        // shared counter can trip it.
        let opts = EvalOptions::default().with_jobs(8).with_row_budget(1_000);
        match run(&g, &q, &opts, None) {
            Err(QueryError::Timeout(m)) => assert!(m.contains("row budget"), "{m}"),
            other => panic!("expected Timeout, got {other:?}"),
        }
        // Serial agrees that the same budget is insufficient.
        let serial = EvalOptions::default().with_row_budget(1_000);
        assert!(matches!(
            run(&g, &q, &serial, None),
            Err(QueryError::Timeout(_))
        ));
    }

    #[test]
    fn parallel_past_deadline_aborts() {
        let g = big_graph();
        let q = parse_query("SELECT * WHERE { ?a ?b ?c . ?d ?e ?f }").unwrap();
        let opts = EvalOptions::default()
            .with_jobs(4)
            .with_deadline(Instant::now() - Duration::from_secs(1));
        match run(&g, &q, &opts, None) {
            Err(QueryError::Timeout(m)) => assert!(m.contains("deadline"), "{m}"),
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn parallel_chunk_metrics_are_recorded() {
        let g = big_graph();
        let q =
            parse_query("PREFIX e: <http://e/> SELECT ?r ?who WHERE { ?r a e:Run . ?r e:by ?who }")
                .unwrap();
        let registry = provbench_obs::Registry::new();
        let opts = EvalOptions::default().with_jobs(4);
        run(&g, &q, &opts, Some(&registry)).unwrap();
        let rendered = registry.render_prometheus();
        assert!(
            rendered.contains("provbench_query_parallel_chunks_total{result=\"ok\"} 4"),
            "missing chunk counter in\n{rendered}"
        );
        assert!(
            rendered.contains("provbench_query_parallel_chunk_seconds_count"),
            "missing chunk histogram in\n{rendered}"
        );
    }

    #[test]
    fn effective_jobs_resolves_auto() {
        assert_eq!(EvalOptions::default().effective_jobs(), 1);
        assert_eq!(EvalOptions::default().with_jobs(3).effective_jobs(), 3);
        let auto = EvalOptions::default().with_jobs(0).effective_jobs();
        assert!((1..=8).contains(&auto), "auto jobs out of range: {auto}");
    }

    #[test]
    fn count_distinct() {
        let s = run_q(
            "PREFIX e: <http://e/> SELECT (COUNT(DISTINCT ?who) AS ?n) WHERE { ?r e:by ?who }",
        );
        assert_eq!(s.get(0, "n").unwrap(), &Term::Literal(Literal::integer(2)));
    }
}
