//! Abstract syntax of the supported SPARQL subset.

use provbench_rdf::{Iri, Term};

/// A variable name, without the leading `?`.
pub type Var = String;

/// Subject/object position of a triple pattern.
#[derive(Clone, Debug, PartialEq)]
pub enum VarOrTerm {
    /// A variable.
    Var(Var),
    /// A ground term.
    Term(Term),
}

/// Predicate position of a triple pattern.
#[derive(Clone, Debug, PartialEq)]
pub enum VarOrIri {
    /// A variable.
    Var(Var),
    /// A ground IRI.
    Iri(Iri),
}

/// One triple pattern.
#[derive(Clone, Debug, PartialEq)]
pub struct TriplePattern {
    /// Subject.
    pub subject: VarOrTerm,
    /// Predicate.
    pub predicate: VarOrIri,
    /// Object.
    pub object: VarOrTerm,
}

/// A graph pattern.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphPattern {
    /// A basic graph pattern: a conjunction of triple patterns.
    Basic(Vec<TriplePattern>),
    /// Sequential composition (join) of sub-patterns.
    Group(Vec<GraphPattern>),
    /// Left join: solutions extended by the inner pattern when possible.
    Optional(Box<GraphPattern>),
    /// Set union of two patterns.
    Union(Box<GraphPattern>, Box<GraphPattern>),
    /// A filter constraining the enclosing group.
    Filter(Expression),
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Filter expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expression {
    /// A variable reference.
    Var(Var),
    /// A constant term (literal or IRI).
    Constant(Term),
    /// Binary comparison.
    Compare(CompareOp, Box<Expression>, Box<Expression>),
    /// Logical conjunction.
    And(Box<Expression>, Box<Expression>),
    /// Logical disjunction.
    Or(Box<Expression>, Box<Expression>),
    /// Logical negation.
    Not(Box<Expression>),
    /// `BOUND(?v)`.
    Bound(Var),
    /// `CONTAINS(haystack, needle)` (string containment).
    Contains(Box<Expression>, Box<Expression>),
    /// `STRSTARTS(s, prefix)`.
    StrStarts(Box<Expression>, Box<Expression>),
    /// `STRENDS(s, suffix)`.
    StrEnds(Box<Expression>, Box<Expression>),
    /// `LANG(?v)` — the language tag ("" when none).
    Lang(Box<Expression>),
    /// `DATATYPE(?v)` — the datatype IRI of a literal.
    Datatype(Box<Expression>),
    /// `isIRI(?v)`.
    IsIri(Box<Expression>),
    /// `isLiteral(?v)`.
    IsLiteral(Box<Expression>),
    /// `isBlank(?v)`.
    IsBlank(Box<Expression>),
    /// `REGEX(expr, "pattern" [, "i"])` — substring match with optional
    /// `^`/`$` anchors and the case-insensitivity flag.
    Regex(Box<Expression>, String, bool),
    /// `STR(expr)` — the lexical form / IRI string of a term.
    Str(Box<Expression>),
}

/// Aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregateFn {
    /// `COUNT(?v)` or `COUNT(*)` (when the inner var is `None`).
    Count,
    /// `COUNT(DISTINCT ?v)`.
    CountDistinct,
    /// `MIN(?v)`.
    Min,
    /// `MAX(?v)`.
    Max,
}

/// One projected column.
#[derive(Clone, Debug, PartialEq)]
pub enum Projection {
    /// A plain variable.
    Var(Var),
    /// An aggregate: `(COUNT(?x) AS ?alias)`.
    Aggregate {
        /// The function.
        function: AggregateFn,
        /// The aggregated variable; `None` for `COUNT(*)`.
        var: Option<Var>,
        /// The output variable name.
        alias: Var,
    },
}

/// An `ORDER BY` key.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderKey {
    /// The sort variable.
    pub var: Var,
    /// Descending when true.
    pub descending: bool,
}

/// The query form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryForm {
    /// `SELECT …` — returns solution rows.
    Select,
    /// `ASK { … }` — returns whether any solution exists.
    Ask,
}

/// A parsed `SELECT` or `ASK` query.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// The query form.
    pub form: QueryForm,
    /// Projected columns; empty means `SELECT *`.
    pub projections: Vec<Projection>,
    /// Whether `DISTINCT` was given.
    pub distinct: bool,
    /// The `WHERE` pattern.
    pub pattern: GraphPattern,
    /// `GROUP BY` variables.
    pub group_by: Vec<Var>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT`.
    pub limit: Option<usize>,
    /// `OFFSET`.
    pub offset: usize,
}

impl Query {
    /// Whether the query uses aggregates.
    pub fn has_aggregates(&self) -> bool {
        self.projections
            .iter()
            .any(|p| matches!(p, Projection::Aggregate { .. }))
    }
}
