//! The SPARQL-subset engine: lexer, AST, parser and evaluator.

pub mod ast;
pub mod eval;
mod lexer;
pub mod parser;
