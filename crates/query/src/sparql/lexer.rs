//! Tokenizer for the SPARQL subset.

use std::fmt;

/// A lexical error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    Keyword(String), // uppercased
    Var(String),     // without '?'
    IriRef(String),
    PName(String, String),
    String(String),
    Integer(i64),
    Decimal(String),
    A,
    Star,
    Dot,
    Semicolon,
    Comma,
    OpenBrace,
    CloseBrace,
    OpenParen,
    CloseParen,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    DoubleCaret,
    Eof,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SpannedTok {
    pub tok: Tok,
    pub line: usize,
    pub column: usize,
    /// Line of the first position past the token.
    pub end_line: usize,
    /// Column of the first position past the token.
    pub end_column: usize,
}

const KEYWORDS: &[&str] = &[
    "SELECT",
    "WHERE",
    "PREFIX",
    "FILTER",
    "OPTIONAL",
    "UNION",
    "ORDER",
    "BY",
    "ASC",
    "DESC",
    "LIMIT",
    "OFFSET",
    "DISTINCT",
    "GROUP",
    "COUNT",
    "MIN",
    "MAX",
    "AS",
    "BOUND",
    "REGEX",
    "STR",
    "TRUE",
    "FALSE",
    "ASK",
    "CONTAINS",
    "STRSTARTS",
    "STRENDS",
    "LANG",
    "DATATYPE",
    "ISIRI",
    "ISLITERAL",
    "ISBLANK",
];

pub(crate) fn tokenize(input: &str) -> Result<Vec<SpannedTok>, LexError> {
    let chars: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let (mut i, mut line, mut col) = (0usize, 1usize, 1usize);
    let err = |line: usize, col: usize, m: String| LexError {
        line,
        column: col,
        message: m,
    };

    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            // `line`/`col` have already advanced past the token here.
            out.push(SpannedTok {
                tok: $tok,
                line: $l,
                column: $c,
                end_line: line,
                end_column: col,
            })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let (tl, tc) = (line, col);
        let adv = |n: usize, i: &mut usize, line: &mut usize, col: &mut usize| {
            for _ in 0..n {
                if chars[*i] == '\n' {
                    *line += 1;
                    *col = 1;
                } else {
                    *col += 1;
                }
                *i += 1;
            }
        };
        match c {
            c if c.is_whitespace() => adv(1, &mut i, &mut line, &mut col),
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    adv(1, &mut i, &mut line, &mut col);
                }
            }
            '?' | '$' => {
                adv(1, &mut i, &mut line, &mut col);
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    adv(1, &mut i, &mut line, &mut col);
                }
                if i == start {
                    return Err(err(tl, tc, "empty variable name".into()));
                }
                push!(Tok::Var(chars[start..i].iter().collect()), tl, tc);
            }
            '<' => {
                // IRIREF or comparison. An IRIREF has no whitespace before '>'.
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '>' || c.is_whitespace() || c == '<');
                match close {
                    Some(n) if chars[i + 1 + n] == '>' => {
                        let iri: String = chars[i + 1..i + 1 + n].iter().collect();
                        adv(n + 2, &mut i, &mut line, &mut col);
                        push!(Tok::IriRef(iri), tl, tc);
                    }
                    _ => {
                        adv(1, &mut i, &mut line, &mut col);
                        if i < chars.len() && chars[i] == '=' {
                            adv(1, &mut i, &mut line, &mut col);
                            push!(Tok::Le, tl, tc);
                        } else {
                            push!(Tok::Lt, tl, tc);
                        }
                    }
                }
            }
            '>' => {
                adv(1, &mut i, &mut line, &mut col);
                if i < chars.len() && chars[i] == '=' {
                    adv(1, &mut i, &mut line, &mut col);
                    push!(Tok::Ge, tl, tc);
                } else {
                    push!(Tok::Gt, tl, tc);
                }
            }
            '"' | '\'' => {
                let quote = c;
                adv(1, &mut i, &mut line, &mut col);
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        return Err(err(tl, tc, "unterminated string".into()));
                    }
                    let ch = chars[i];
                    adv(1, &mut i, &mut line, &mut col);
                    if ch == quote {
                        break;
                    }
                    if ch == '\\' {
                        if i >= chars.len() {
                            return Err(err(tl, tc, "truncated escape".into()));
                        }
                        let e = chars[i];
                        adv(1, &mut i, &mut line, &mut col);
                        s.push(match e {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            '"' => '"',
                            '\'' => '\'',
                            '\\' => '\\',
                            other => return Err(err(tl, tc, format!("bad escape \\{other}"))),
                        });
                    } else {
                        s.push(ch);
                    }
                }
                push!(Tok::String(s), tl, tc);
            }
            '0'..='9' | '-' | '+' => {
                let start = i;
                if c == '-' || c == '+' {
                    adv(1, &mut i, &mut line, &mut col);
                }
                let mut saw_dot = false;
                while i < chars.len()
                    && (chars[i].is_ascii_digit() || (chars[i] == '.' && !saw_dot))
                {
                    if chars[i] == '.' {
                        // A trailing dot is the statement terminator.
                        if !chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                            break;
                        }
                        saw_dot = true;
                    }
                    adv(1, &mut i, &mut line, &mut col);
                }
                let text: String = chars[start..i].iter().collect();
                if text == "-" || text == "+" || text.is_empty() {
                    return Err(err(tl, tc, "malformed number".into()));
                }
                if saw_dot {
                    push!(Tok::Decimal(text), tl, tc);
                } else {
                    let v = text
                        .parse()
                        .map_err(|_| err(tl, tc, format!("bad integer {text}")))?;
                    push!(Tok::Integer(v), tl, tc);
                }
            }
            '*' => {
                adv(1, &mut i, &mut line, &mut col);
                push!(Tok::Star, tl, tc);
            }
            '.' => {
                adv(1, &mut i, &mut line, &mut col);
                push!(Tok::Dot, tl, tc);
            }
            ';' => {
                adv(1, &mut i, &mut line, &mut col);
                push!(Tok::Semicolon, tl, tc);
            }
            ',' => {
                adv(1, &mut i, &mut line, &mut col);
                push!(Tok::Comma, tl, tc);
            }
            '{' => {
                adv(1, &mut i, &mut line, &mut col);
                push!(Tok::OpenBrace, tl, tc);
            }
            '}' => {
                adv(1, &mut i, &mut line, &mut col);
                push!(Tok::CloseBrace, tl, tc);
            }
            '(' => {
                adv(1, &mut i, &mut line, &mut col);
                push!(Tok::OpenParen, tl, tc);
            }
            ')' => {
                adv(1, &mut i, &mut line, &mut col);
                push!(Tok::CloseParen, tl, tc);
            }
            '=' => {
                adv(1, &mut i, &mut line, &mut col);
                push!(Tok::Eq, tl, tc);
            }
            '!' => {
                adv(1, &mut i, &mut line, &mut col);
                if i < chars.len() && chars[i] == '=' {
                    adv(1, &mut i, &mut line, &mut col);
                    push!(Tok::Ne, tl, tc);
                } else {
                    push!(Tok::Bang, tl, tc);
                }
            }
            '&' => {
                adv(1, &mut i, &mut line, &mut col);
                if i < chars.len() && chars[i] == '&' {
                    adv(1, &mut i, &mut line, &mut col);
                    push!(Tok::AndAnd, tl, tc);
                } else {
                    return Err(err(tl, tc, "expected `&&`".into()));
                }
            }
            '|' => {
                adv(1, &mut i, &mut line, &mut col);
                if i < chars.len() && chars[i] == '|' {
                    adv(1, &mut i, &mut line, &mut col);
                    push!(Tok::OrOr, tl, tc);
                } else {
                    return Err(err(tl, tc, "expected `||`".into()));
                }
            }
            '^' => {
                adv(1, &mut i, &mut line, &mut col);
                if i < chars.len() && chars[i] == '^' {
                    adv(1, &mut i, &mut line, &mut col);
                    push!(Tok::DoubleCaret, tl, tc);
                } else {
                    return Err(err(tl, tc, "expected `^^`".into()));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || matches!(chars[i], '_' | '-'))
                {
                    adv(1, &mut i, &mut line, &mut col);
                }
                let word: String = chars[start..i].iter().collect();
                if i < chars.len() && chars[i] == ':' {
                    adv(1, &mut i, &mut line, &mut col);
                    let lstart = i;
                    while i < chars.len()
                        && (chars[i].is_ascii_alphanumeric()
                            || matches!(chars[i], '_' | '-')
                            || (chars[i] == '.'
                                && chars.get(i + 1).is_some_and(|c| c.is_ascii_alphanumeric())))
                    {
                        adv(1, &mut i, &mut line, &mut col);
                    }
                    push!(Tok::PName(word, chars[lstart..i].iter().collect()), tl, tc);
                } else if word == "a" {
                    push!(Tok::A, tl, tc);
                } else {
                    let upper = word.to_ascii_uppercase();
                    if KEYWORDS.contains(&upper.as_str()) {
                        push!(Tok::Keyword(upper), tl, tc);
                    } else {
                        return Err(err(tl, tc, format!("unexpected word {word:?}")));
                    }
                }
            }
            ':' => {
                // Default-prefix pname `:local`.
                adv(1, &mut i, &mut line, &mut col);
                let lstart = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || matches!(chars[i], '_' | '-'))
                {
                    adv(1, &mut i, &mut line, &mut col);
                }
                push!(
                    Tok::PName(String::new(), chars[lstart..i].iter().collect()),
                    tl,
                    tc
                );
            }
            other => return Err(err(tl, tc, format!("unexpected character {other:?}"))),
        }
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line,
        column: col,
        end_line: line,
        end_column: col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Tok> {
        tokenize(s).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_query_tokens() {
        let ts = toks("SELECT ?r WHERE { ?r a prov:Activity . }");
        assert_eq!(
            ts,
            vec![
                Tok::Keyword("SELECT".into()),
                Tok::Var("r".into()),
                Tok::Keyword("WHERE".into()),
                Tok::OpenBrace,
                Tok::Var("r".into()),
                Tok::A,
                Tok::PName("prov".into(), "Activity".into()),
                Tok::Dot,
                Tok::CloseBrace,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comparisons_and_iris() {
        let ts = toks("<http://e/x> < <= > >= = != && || !");
        assert_eq!(
            ts,
            vec![
                Tok::IriRef("http://e/x".into()),
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Eq,
                Tok::Ne,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Bang,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn strings_numbers_and_keywords_case() {
        let ts = toks("filter(\"a\\\"b\" 42 -7 3.5) order by desc");
        assert_eq!(
            ts,
            vec![
                Tok::Keyword("FILTER".into()),
                Tok::OpenParen,
                Tok::String("a\"b".into()),
                Tok::Integer(42),
                Tok::Integer(-7),
                Tok::Decimal("3.5".into()),
                Tok::CloseParen,
                Tok::Keyword("ORDER".into()),
                Tok::Keyword("BY".into()),
                Tok::Keyword("DESC".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn trailing_dot_is_not_a_decimal() {
        let ts = toks("?x prov:used 5 .");
        assert!(ts.contains(&Tok::Integer(5)));
        assert!(ts.contains(&Tok::Dot));
    }

    #[test]
    fn errors_have_positions() {
        let e = tokenize("SELECT @").unwrap_err();
        assert_eq!((e.line, e.column), (1, 8));
        assert!(tokenize("\"open").is_err());
        assert!(tokenize("nonkeyword ?x").is_err());
    }

    #[test]
    fn comments_skipped() {
        let ts = toks("SELECT # comment\n?x");
        assert_eq!(ts.len(), 3);
    }
}
