//! The paper's six exemplar provenance queries (§4), as SPARQL text and
//! as typed convenience APIs over a corpus graph.
//!
//! The corpus mixes two trace dialects, so every query that must span
//! systems is a `UNION` of a Taverna-shaped branch (wfprov +
//! `prov:startedAtTime`/`endedAtTime`) and a Wings-shaped branch (OPMW
//! accounts with `opmw:overallStartTime`/`EndTime`). Q4's process times
//! only bind on Taverna traces and Q6 only answers on Wings traces —
//! exactly the availability notes the paper attaches to those queries.

use crate::{QueryEngine, Solutions};
use provbench_rdf::{DateTime, Graph, Iri, Term};

/// Run one of the (statically well-formed) exemplar queries.
fn select(graph: &Graph, text: &str) -> Solutions {
    QueryEngine::new(graph)
        .prepare(text)
        .and_then(|p| p.select())
        .expect("exemplar queries are well-formed")
}

/// Shared prefix header for the exemplar queries.
pub const PREFIXES: &str = r#"
PREFIX prov: <http://www.w3.org/ns/prov#>
PREFIX wfprov: <http://purl.org/wf4ever/wfprov#>
PREFIX wfdesc: <http://purl.org/wf4ever/wfdesc#>
PREFIX opmw: <http://www.opmw.org/ontology/>
PREFIX tavernaprov: <http://ns.taverna.org.uk/2012/tavernaprov/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
"#;

/// The Taverna-side description IRI of a template (myExperiment style).
pub fn taverna_template_iri(template_name: &str) -> Iri {
    Iri::new_unchecked(format!(
        "http://www.myexperiment.org/workflows/{template_name}"
    ))
}

/// The Wings-side template IRI (OPMW export style).
pub fn wings_template_iri(template_name: &str) -> Iri {
    Iri::new_unchecked(format!(
        "http://www.opmw.org/export/resource/WorkflowTemplate/{template_name}"
    ))
}

fn iri_of(term: &Term) -> Option<Iri> {
    term.as_iri().cloned()
}

fn datetime_of(term: &Term) -> Option<DateTime> {
    term.as_literal().and_then(|l| l.as_date_time())
}

// ---------------------------------------------------------------- Q1 --

/// One row of Q1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// The run (Taverna workflow-run activity or Wings account).
    pub run: Iri,
    /// Start time, when the system records one.
    pub started: Option<DateTime>,
    /// End time, when the system records one.
    pub ended: Option<DateTime>,
}

/// Q1 SPARQL: "What are the workflow runs available, and what is their
/// start and end time?"
pub fn q1_sparql() -> String {
    format!(
        "{PREFIXES}
SELECT ?run ?start ?end WHERE {{
  {{ ?run a wfprov:WorkflowRun .
     OPTIONAL {{ ?run prov:startedAtTime ?start }}
     OPTIONAL {{ ?run prov:endedAtTime ?end }} }}
  UNION
  {{ ?run a opmw:WorkflowExecutionAccount .
     OPTIONAL {{ ?run opmw:overallStartTime ?start }}
     OPTIONAL {{ ?run opmw:overallEndTime ?end }} }}
}} ORDER BY ?run"
    )
}

/// Q1, typed.
pub fn q1_runs(graph: &Graph) -> Vec<RunSummary> {
    let solutions = select(graph, &q1_sparql());
    solutions
        .rows
        .iter()
        .filter_map(|row| {
            Some(RunSummary {
                run: iri_of(row.get("run")?)?,
                started: row.get("start").and_then(datetime_of),
                ended: row.get("end").and_then(datetime_of),
            })
        })
        .collect()
}

// ---------------------------------------------------------------- Q2 --

/// Q2 result: the runs of a template and how many of them failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TemplateRuns {
    /// All runs of the template.
    pub runs: Vec<Iri>,
    /// How many of them failed.
    pub failed: usize,
}

/// Q2 SPARQL (runs part): "What are the workflow runs associated with a
/// given workflow template…"
pub fn q2_runs_sparql(template_name: &str) -> String {
    let tav = taverna_template_iri(template_name);
    let wgs = wings_template_iri(template_name);
    format!(
        "{PREFIXES}
SELECT DISTINCT ?run WHERE {{
  {{ ?run wfprov:describedByWorkflow {tav} }}
  UNION
  {{ ?run a opmw:WorkflowExecutionAccount . ?run opmw:correspondsToTemplate {wgs} }}
}} ORDER BY ?run"
    )
}

/// Q2 SPARQL (failure part): "…and how many of them failed?"
pub fn q2_failed_sparql(template_name: &str) -> String {
    let tav = taverna_template_iri(template_name);
    let wgs = wings_template_iri(template_name);
    format!(
        "{PREFIXES}
SELECT (COUNT(DISTINCT ?run) AS ?failed) WHERE {{
  {{ ?run wfprov:describedByWorkflow {tav} .
     ?p wfprov:wasPartOfWorkflowRun ?run .
     ?p tavernaprov:errorMessage ?msg }}
  UNION
  {{ ?run a opmw:WorkflowExecutionAccount .
     ?run opmw:correspondsToTemplate {wgs} .
     ?run opmw:hasStatus \"FAILURE\" }}
}}"
    )
}

/// Q2, typed.
pub fn q2_template_runs(graph: &Graph, template_name: &str) -> TemplateRuns {
    let runs = select(graph, &q2_runs_sparql(template_name))
        .rows
        .iter()
        .filter_map(|r| iri_of(r.get("run")?))
        .collect();
    let failed = select(graph, &q2_failed_sparql(template_name))
        .get(0, "failed")
        .and_then(|t| t.as_literal())
        .and_then(|l| l.as_integer())
        .unwrap_or(0) as usize;
    TemplateRuns { runs, failed }
}

// ---------------------------------------------------------------- Q3 --

/// Q3 result row: one run with its workflow-level inputs and outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunIo {
    /// The run.
    pub run: Iri,
    /// Workflow-level inputs it used.
    pub inputs: Vec<Iri>,
    /// Workflow-level outputs it generated (empty for failed runs that
    /// never produced them).
    pub outputs: Vec<Iri>,
}

/// Q3 SPARQL (per-run inputs): Taverna runs `prov:used` their inputs,
/// Wings marks them `opmw:isInputOf` the account.
pub fn q3_inputs_sparql(template_name: &str) -> String {
    let tav = taverna_template_iri(template_name);
    let wgs = wings_template_iri(template_name);
    format!(
        "{PREFIXES}
SELECT ?run ?input WHERE {{
  {{ ?run wfprov:describedByWorkflow {tav} . ?run prov:used ?input }}
  UNION
  {{ ?run a opmw:WorkflowExecutionAccount .
     ?run opmw:correspondsToTemplate {wgs} . ?input opmw:isInputOf ?run }}
}} ORDER BY ?run ?input"
    )
}

/// Q3 SPARQL (per-run outputs).
pub fn q3_outputs_sparql(template_name: &str) -> String {
    let tav = taverna_template_iri(template_name);
    let wgs = wings_template_iri(template_name);
    format!(
        "{PREFIXES}
SELECT ?run ?output WHERE {{
  {{ ?run wfprov:describedByWorkflow {tav} . ?output prov:wasGeneratedBy ?run }}
  UNION
  {{ ?run a opmw:WorkflowExecutionAccount .
     ?run opmw:correspondsToTemplate {wgs} . ?output opmw:isOutputOf ?run }}
}} ORDER BY ?run ?output"
    )
}

/// Q3, typed: "What are the workflow runs of a given workflow template,
/// and what are the inputs they used and the outputs they generated?"
pub fn q3_template_run_io(graph: &Graph, template_name: &str) -> Vec<RunIo> {
    let mut by_run: std::collections::BTreeMap<Iri, RunIo> = std::collections::BTreeMap::new();
    for run in q2_template_runs(graph, template_name).runs {
        by_run.insert(
            run.clone(),
            RunIo {
                run,
                inputs: Vec::new(),
                outputs: Vec::new(),
            },
        );
    }
    let inputs = select(graph, &q3_inputs_sparql(template_name));
    for row in &inputs.rows {
        if let (Some(run), Some(input)) = (
            row.get("run").and_then(iri_of),
            row.get("input").and_then(iri_of),
        ) {
            if let Some(io) = by_run.get_mut(&run) {
                io.inputs.push(input);
            }
        }
    }
    let outputs = select(graph, &q3_outputs_sparql(template_name));
    for row in &outputs.rows {
        if let (Some(run), Some(output)) = (
            row.get("run").and_then(iri_of),
            row.get("output").and_then(iri_of),
        ) {
            if let Some(io) = by_run.get_mut(&run) {
                io.outputs.push(output);
            }
        }
    }
    by_run.into_values().collect()
}

// ---------------------------------------------------------------- Q4 --

/// Q4 result row: one process run of a workflow run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessRunInfo {
    /// The process run.
    pub process: Iri,
    /// Start time ("only available in Taverna provenance logs").
    pub started: Option<DateTime>,
    /// End time (idem).
    pub ended: Option<DateTime>,
    /// Inputs used.
    pub inputs: Vec<Iri>,
    /// Outputs generated.
    pub outputs: Vec<Iri>,
}

/// Q4 SPARQL (processes with optional times).
pub fn q4_sparql(run: &Iri) -> String {
    format!(
        "{PREFIXES}
SELECT DISTINCT ?p ?start ?end WHERE {{
  {{ ?p wfprov:wasPartOfWorkflowRun {run} }}
  UNION
  {{ ?p a opmw:WorkflowExecutionProcess . ?p opmw:belongsToAccount {run} }}
  OPTIONAL {{ ?p prov:startedAtTime ?start }}
  OPTIONAL {{ ?p prov:endedAtTime ?end }}
}} ORDER BY ?p"
    )
}

/// Q4, typed: "How many process runs are associated with a given workflow
/// run, what is the start and end time of each one of them (only
/// available in Taverna provenance logs), and what are the inputs they
/// used and the outputs they generated?"
pub fn q4_process_runs(graph: &Graph, run: &Iri) -> Vec<ProcessRunInfo> {
    let base = select(graph, &q4_sparql(run));
    base.rows
        .iter()
        .filter_map(|row| {
            let process = iri_of(row.get("p")?)?;
            let io_q = format!(
                "{PREFIXES}
SELECT ?in ?out WHERE {{
  {{ {process} prov:used ?in }} UNION {{ ?out prov:wasGeneratedBy {process} }}
}} ORDER BY ?in ?out"
            );
            let io = select(graph, &io_q);
            let mut inputs = Vec::new();
            let mut outputs = Vec::new();
            for r in &io.rows {
                if let Some(i) = r.get("in").and_then(iri_of) {
                    if !inputs.contains(&i) {
                        inputs.push(i);
                    }
                }
                if let Some(o) = r.get("out").and_then(iri_of) {
                    if !outputs.contains(&o) {
                        outputs.push(o);
                    }
                }
            }
            Some(ProcessRunInfo {
                process,
                started: row.get("start").and_then(datetime_of),
                ended: row.get("end").and_then(datetime_of),
                inputs,
                outputs,
            })
        })
        .collect()
}

// ---------------------------------------------------------------- Q5 --

/// Q5 SPARQL: "Who executed a given workflow run?"
pub fn q5_sparql(run: &Iri) -> String {
    format!(
        "{PREFIXES}
SELECT DISTINCT ?agent ?name WHERE {{
  {{ {run} prov:wasAssociatedWith ?agent . ?agent a prov:Person }}
  UNION
  {{ {run} prov:wasAttributedTo ?agent . ?agent a prov:Person }}
  OPTIONAL {{ ?agent foaf:name ?name }}
}} ORDER BY ?agent"
    )
}

/// Q5, typed: the person agents behind a run, with names when recorded.
pub fn q5_executor(graph: &Graph, run: &Iri) -> Vec<(Iri, Option<String>)> {
    select(graph, &q5_sparql(run))
        .rows
        .iter()
        .filter_map(|row| {
            Some((
                iri_of(row.get("agent")?)?,
                row.get("name")
                    .and_then(|t| t.as_literal())
                    .map(|l| l.lexical().to_owned()),
            ))
        })
        .collect()
}

// ---------------------------------------------------------------- Q6 --

/// Q6 SPARQL: "What are the services executed as a result of the
/// execution of a given workflow run? (only available in Wings
/// provenance logs)."
pub fn q6_sparql(run: &Iri) -> String {
    format!(
        "{PREFIXES}
SELECT DISTINCT ?service WHERE {{
  ?p opmw:belongsToAccount {run} .
  ?p opmw:hasExecutableComponent ?service
}} ORDER BY ?service"
    )
}

/// Q6, typed.
pub fn q6_services(graph: &Graph, run: &Iri) -> Vec<Iri> {
    select(graph, &q6_sparql(run))
        .rows
        .iter()
        .filter_map(|row| iri_of(row.get("service")?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_rdf::parse_turtle;

    /// A hand-written miniature corpus graph: one Taverna run of template
    /// `t1` (with one failed process) and one Wings account of `t2`.
    fn mini_corpus() -> Graph {
        let (g, _) = parse_turtle(
            r#"
@prefix prov: <http://www.w3.org/ns/prov#> .
@prefix wfprov: <http://purl.org/wf4ever/wfprov#> .
@prefix opmw: <http://www.opmw.org/ontology/> .
@prefix tavernaprov: <http://ns.taverna.org.uk/2012/tavernaprov/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix ex: <http://example.org/> .

# --- Taverna run of t1 ---
ex:trun a wfprov:WorkflowRun, prov:Activity ;
    prov:startedAtTime "2013-01-15T09:00:00Z"^^xsd:dateTime ;
    prov:endedAtTime "2013-01-15T09:10:00Z"^^xsd:dateTime ;
    wfprov:describedByWorkflow <http://www.myexperiment.org/workflows/t1> ;
    prov:used ex:in1 ;
    prov:wasAssociatedWith ex:alice .
ex:out1 prov:wasGeneratedBy ex:trun .
ex:alice a prov:Agent, prov:Person ; foaf:name "alice" .
ex:p1 a wfprov:ProcessRun, prov:Activity ;
    wfprov:wasPartOfWorkflowRun ex:trun ;
    prov:startedAtTime "2013-01-15T09:01:00Z"^^xsd:dateTime ;
    prov:endedAtTime "2013-01-15T09:02:00Z"^^xsd:dateTime ;
    prov:used ex:in1 ;
    tavernaprov:errorMessage "unavailability of third party resources" .
ex:mid1 prov:wasGeneratedBy ex:p1 .

# --- Wings account of t2 ---
ex:wacct a opmw:WorkflowExecutionAccount, prov:Entity ;
    opmw:overallStartTime "2013-02-01T12:00:00Z"^^xsd:dateTime ;
    opmw:overallEndTime "2013-02-01T12:30:00Z"^^xsd:dateTime ;
    opmw:correspondsToTemplate <http://www.opmw.org/export/resource/WorkflowTemplate/t2> ;
    opmw:hasStatus "SUCCESS" ;
    prov:wasAttributedTo ex:dana .
ex:dana a prov:Agent, prov:Person ; foaf:name "dana" .
ex:win opmw:isInputOf ex:wacct .
ex:wout opmw:isOutputOf ex:wacct .
ex:wp1 a opmw:WorkflowExecutionProcess, prov:Activity ;
    opmw:belongsToAccount ex:wacct ;
    opmw:hasExecutableComponent <http://components.wings-components.org/x/align> ;
    prov:used ex:win .
ex:wout prov:wasGeneratedBy ex:wp1 .
"#,
        )
        .unwrap();
        g
    }

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    #[test]
    fn q1_finds_both_dialects() {
        let runs = q1_runs(&mini_corpus());
        assert_eq!(runs.len(), 2);
        let tav = runs
            .iter()
            .find(|r| r.run.as_str().ends_with("trun"))
            .unwrap();
        assert!(tav.started.is_some() && tav.ended.is_some());
        let wgs = runs
            .iter()
            .find(|r| r.run.as_str().ends_with("wacct"))
            .unwrap();
        assert!(wgs.started.is_some() && wgs.ended.is_some());
    }

    #[test]
    fn q2_counts_runs_and_failures() {
        let g = mini_corpus();
        let t1 = q2_template_runs(&g, "t1");
        assert_eq!(t1.runs.len(), 1);
        assert_eq!(t1.failed, 1); // the errorMessage marks trun as failed
        let t2 = q2_template_runs(&g, "t2");
        assert_eq!(t2.runs.len(), 1);
        assert_eq!(t2.failed, 0);
        let none = q2_template_runs(&g, "t3");
        assert!(none.runs.is_empty());
    }

    #[test]
    fn q3_collects_io_per_run() {
        let g = mini_corpus();
        let io = q3_template_run_io(&g, "t1");
        assert_eq!(io.len(), 1);
        assert_eq!(io[0].inputs, vec![iri("http://example.org/in1")]);
        assert_eq!(io[0].outputs, vec![iri("http://example.org/out1")]);
        let io2 = q3_template_run_io(&g, "t2");
        assert_eq!(io2[0].inputs, vec![iri("http://example.org/win")]);
        assert_eq!(io2[0].outputs, vec![iri("http://example.org/wout")]);
    }

    #[test]
    fn q4_times_only_for_taverna() {
        let g = mini_corpus();
        let tav = q4_process_runs(&g, &iri("http://example.org/trun"));
        assert_eq!(tav.len(), 1);
        assert!(tav[0].started.is_some());
        assert_eq!(tav[0].inputs.len(), 1);
        assert_eq!(tav[0].outputs.len(), 1);
        let wgs = q4_process_runs(&g, &iri("http://example.org/wacct"));
        assert_eq!(wgs.len(), 1);
        assert!(wgs[0].started.is_none(), "Wings records no activity times");
        assert_eq!(wgs[0].outputs, vec![iri("http://example.org/wout")]);
    }

    #[test]
    fn q5_finds_the_person() {
        let g = mini_corpus();
        let tav = q5_executor(&g, &iri("http://example.org/trun"));
        assert_eq!(tav.len(), 1);
        assert_eq!(tav[0].1.as_deref(), Some("alice"));
        let wgs = q5_executor(&g, &iri("http://example.org/wacct"));
        assert_eq!(wgs[0].1.as_deref(), Some("dana"));
    }

    #[test]
    fn q6_only_answers_on_wings() {
        let g = mini_corpus();
        let wgs = q6_services(&g, &iri("http://example.org/wacct"));
        assert_eq!(wgs.len(), 1);
        assert!(wgs[0].as_str().contains("align"));
        let tav = q6_services(&g, &iri("http://example.org/trun"));
        assert!(tav.is_empty(), "services are only available in Wings logs");
    }
}
