//! A minimal JSON document model with a writer and a parser — enough for
//! the JSONL/SARIF renderers and for tests that re-read their output.
//! Object members keep insertion order so rendered output is
//! deterministic.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (serialized via `f64`; integers print without `.0`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build a number from an integer without precision surprises.
    pub fn int(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Intended for tests and tooling, not hostile
/// input: errors are strings, recursion is bounded by input nesting.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed for our output.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = Json::Obj(vec![
            ("version".into(), Json::str("2.1.0")),
            ("count".into(), Json::int(3)),
            ("ok".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "items".into(),
                Json::Arr(vec![Json::str("a\"b\\c\nd"), Json::Num(-1.5)]),
            ),
        ]);
        let text = doc.to_compact();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("version").unwrap().as_str(), Some("2.1.0"));
        assert_eq!(back.get("count").unwrap().as_num(), Some(3.0));
        assert_eq!(back.get("items").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::int(42).to_compact(), "42");
        assert_eq!(Json::Num(1.25).to_compact(), "1.25");
    }

    #[test]
    fn escapes_roundtrip() {
        let s = Json::str("tab\t nl\n quote\" back\\ unicode\u{1}é中");
        let back = parse(&s.to_compact()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
