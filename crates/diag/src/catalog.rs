//! The rule catalog with long-form documentation — the single source of
//! truth behind `provbench lint --explain PB0xxx` and the rule tables in
//! `docs/linting.md` (a test asserts the two stay in sync).

use crate::diagnostic::RuleInfo;
use crate::rules::{constraints, corpus, profile, vocabulary, PARSE_ERROR};

/// Everything `--explain` prints about one rule: the static
/// [`RuleInfo`] plus a rationale and a minimal triggering example.
#[derive(Debug, Clone, Copy)]
pub struct RuleDoc {
    /// The rule's id/slug/severity/summary.
    pub info: &'static RuleInfo,
    /// Why the rule exists — what goes wrong in a corpus that trips it.
    pub rationale: &'static str,
    /// A minimal sketch of input that fires the rule.
    pub example: &'static str,
}

/// Long-form documentation for every rule in the full catalog,
/// including the corpus pack, sorted by rule id.
pub fn all_rule_docs() -> Vec<RuleDoc> {
    let mut docs = vec![
        RuleDoc {
            info: &PARSE_ERROR,
            rationale: "Nothing downstream — queries, snapshots, lineage — can work with \
                        a file the Turtle/TriG parser rejects; every other rule is skipped \
                        for such a file.",
            example: "ex:a prov:used   # truncated statement, missing object and '.'",
        },
        RuleDoc {
            info: &constraints::ENDS_BEFORE_START,
            rationale: "PROV-CONSTRAINTS requires start(a) ≤ end(a); an activity that ends \
                        before it starts has its timestamps swapped or corrupted.",
            example: "ex:run prov:startedAtTime \"2013-01-01T12:00:00Z\" ; \
                      prov:endedAtTime \"2013-01-01T10:00:00Z\" .",
        },
        RuleDoc {
            info: &constraints::USAGE_BEFORE_GENERATION,
            rationale: "An entity must exist before an activity can consume it: the usage \
                        interval cannot lie entirely before the generation event.",
            example: "ex:late prov:wasGeneratedBy ex:a2 . ex:a1 prov:used ex:late . \
                      # but a1 ended before a2 started",
        },
        RuleDoc {
            info: &constraints::MULTIPLE_GENERATION,
            rationale: "PROV's uniqueness constraint: an entity is generated once. Two \
                        independent generating activities mean two distinct entities were \
                        conflated under one IRI.",
            example: "ex:out prov:wasGeneratedBy ex:run1 , ex:run2 .",
        },
        RuleDoc {
            info: &constraints::DERIVATION_CYCLE,
            rationale: "Derivation is causal and therefore acyclic: an artifact cannot be \
                        (transitively) derived from itself. Cycles usually come from \
                        copy-paste of derivation chains.",
            example: "ex:a prov:wasDerivedFrom ex:b . ex:b prov:wasDerivedFrom ex:a .",
        },
        RuleDoc {
            info: &constraints::SELF_DERIVATION,
            rationale: "The one-edge special case of a derivation cycle, common enough \
                        (template expansion bugs) to deserve its own precise message.",
            example: "ex:a prov:wasDerivedFrom ex:a .",
        },
        RuleDoc {
            info: &constraints::SELF_COMMUNICATION,
            rationale: "prov:wasInformedBy means 'used an entity the other generated'; an \
                        activity informing itself collapses that exchange into nonsense.",
            example: "ex:run prov:wasInformedBy ex:run .",
        },
        RuleDoc {
            info: &constraints::EVENT_ORDERING_CYCLE,
            rationale: "Generation, usage, start/end and derivation each impose event \
                        precedences; if their union contains a cycle through a strict \
                        edge, no timeline can realize the trace.",
            example: "ex:b prov:wasDerivedFrom ex:a . ex:a prov:wasDerivedFrom ex:b . \
                      # gen(a) < gen(b) < gen(a)",
        },
        RuleDoc {
            info: &constraints::ENTITY_ACTIVITY_DISJOINT,
            rationale: "prov:Entity and prov:Activity are disjoint classes in PROV-O; a \
                        node typed as both is almost always an IRI-minting bug.",
            example: "ex:x a prov:Entity , prov:Activity .",
        },
        RuleDoc {
            info: &profile::TAVERNA_PROCESS_RUN_PARENT,
            rationale: "Taverna nests every process run inside exactly one workflow run; \
                        a missing or doubled wfprov:wasPartOfWorkflowRun breaks the run \
                        tree the corpus queries navigate.",
            example: "ex:proc a wfprov:ProcessRun .  # no wasPartOfWorkflowRun",
        },
        RuleDoc {
            info: &profile::TAVERNA_PROCESS_RUN_TIMES,
            rationale: "The paper's Taverna profile (Table 2) records both timestamps on \
                        every process run; without them duration analyses silently drop \
                        the run.",
            example: "ex:proc a wfprov:ProcessRun .  # no startedAtTime/endedAtTime",
        },
        RuleDoc {
            info: &profile::TAVERNA_PROCESS_RUN_DESCRIPTION,
            rationale: "Linking a run to its wfdesc process is what makes prospective ⇄ \
                        retrospective queries possible; an unlinked run can't be joined \
                        to the workflow definition.",
            example: "ex:proc a wfprov:ProcessRun .  # no describedByProcess",
        },
        RuleDoc {
            info: &profile::TAVERNA_RUN_DESCRIPTION,
            rationale: "A workflow run without wfprov:describedByWorkflow cannot be tied \
                        back to any workflow definition at all.",
            example: "ex:run a wfprov:WorkflowRun .  # no describedByWorkflow",
        },
        RuleDoc {
            info: &profile::TAVERNA_ARTIFACT_VALUE,
            rationale: "Taverna exports inline values for artifacts; their absence usually \
                        means the export was truncated.",
            example: "ex:art a wfprov:Artifact .  # no prov:value",
        },
        RuleDoc {
            info: &profile::TAVERNA_PROFILE_PURITY,
            rationale: "The corpus's Taverna traces use a fixed property inventory \
                        (Tables 2/3); anything outside it is either a tool-version drift \
                        or a hand edit worth reviewing.",
            example: "ex:proc ex:customProperty \"x\" .  # not in the Taverna profile",
        },
        RuleDoc {
            info: &profile::WINGS_PROCESS_ACCOUNT,
            rationale: "Wings groups an execution's processes under an account \
                        (opmw:WorkflowExecutionAccount); a process without \
                        belongsToAccount is unreachable from its execution.",
            example: "ex:proc a opmw:WorkflowExecutionProcess .  # no belongsToAccount",
        },
        RuleDoc {
            info: &profile::WINGS_PROCESS_COMPONENT,
            rationale: "Every Wings execution process instantiates a workflow component; \
                        without hasExecutableComponent the template join fails.",
            example: "ex:proc a opmw:WorkflowExecutionProcess .  # no hasExecutableComponent",
        },
        RuleDoc {
            info: &profile::WINGS_PROCESS_STATUS,
            rationale: "Wings records SUCCESS/FAILURE per process; a missing status makes \
                        the execution's outcome ambiguous.",
            example: "ex:proc a opmw:WorkflowExecutionProcess .  # no hasStatus",
        },
        RuleDoc {
            info: &profile::WINGS_ARTIFACT_LOCATION,
            rationale: "Wings artifacts point at their on-disk location; the corpus uses \
                        it to resolve data files.",
            example: "ex:art a opmw:WorkflowExecutionArtifact .  # no prov:atLocation",
        },
        RuleDoc {
            info: &profile::WINGS_ARTIFACT_ACCOUNT,
            rationale: "Like processes, Wings artifacts hang off the execution account; \
                        unanchored artifacts disappear from account-scoped queries.",
            example: "ex:art a opmw:WorkflowExecutionArtifact .  # no belongsToAccount",
        },
        RuleDoc {
            info: &profile::WINGS_PROFILE_PURITY,
            rationale: "Wings models time and communication at the account level only; \
                        per-activity times or wasInformedBy edges signal a trace that \
                        mixes profiles.",
            example: "ex:proc prov:startedAtTime \"...\" .  # per-process time in Wings",
        },
        RuleDoc {
            info: &corpus::DANGLING_REFERENCE,
            rationale: "Cross-document provenance only works if every prov:used / \
                        prov:wasDerivedFrom target is declared somewhere in the corpus; \
                        a dangling target breaks lineage walks at that point. This rule \
                        needs the whole corpus: any one file legitimately references \
                        entities declared in another.",
            example: "a.ttl: ex:out prov:wasDerivedFrom ex:ghost .  \
                      # no document declares ex:ghost",
        },
        RuleDoc {
            info: &corpus::UNANCHORED_DERIVATION,
            rationale: "Derivation chains must bottom out in source entities. A cycle \
                        assembled across documents (each file acyclic on its own) keeps \
                        every member from ever reaching a source; only the corpus-level \
                        fixpoint over per-file summaries can see it.",
            example: "a.ttl: ex:x prov:wasDerivedFrom ex:y . \
                      b.ttl: ex:y prov:wasDerivedFrom ex:x .",
        },
        RuleDoc {
            info: &corpus::CROSS_RUN_TEMPORAL,
            rationale: "The PB0107 event network, lifted to the union of all documents: \
                        generation/usage/start constraints asserted in different runs can \
                        contradict each other even when each file is consistent alone.",
            example: "a.ttl: ex:e2 prov:wasDerivedFrom ex:e1 . \
                      b.ttl: ex:e1 prov:wasDerivedFrom ex:e2 .",
        },
        RuleDoc {
            info: &corpus::ORPHAN_DOCUMENT,
            rationale: "A document sharing no data IRIs with the rest of the corpus is \
                        disconnected from every cross-run query — typically a stray file \
                        or an export under freshly minted IRIs.",
            example: "island.ttl uses only ex-private:* IRIs no other file mentions",
        },
        RuleDoc {
            info: &vocabulary::UNKNOWN_TERM,
            rationale: "A term spelled inside a corpus ontology namespace but absent from \
                        the ontology is almost certainly a typo (wfprov:usedInput vs \
                        wfprov:usedInput_).",
            example: "ex:proc wfprov:usedImput ex:art .  # misspelled term",
        },
        RuleDoc {
            info: &vocabulary::CROSS_PROFILE_TERM,
            rationale: "Taverna traces speak wfprov/wfdesc, Wings traces speak OPMW; a \
                        trace mixing both vocabularies was probably stitched together \
                        from different exports.",
            example: "a Taverna trace asserting opmw:belongsToAccount",
        },
        RuleDoc {
            info: &vocabulary::OUTSIDE_INVENTORY,
            rationale: "The paper's Tables 2/3 fix the property inventory each system \
                        emits; valid PROV-O outside it is worth knowing about but not \
                        wrong.",
            example: "ex:run prov:wasAssociatedWith ex:agent .  # valid, untracked",
        },
    ];
    docs.sort_by_key(|d| d.info.id);
    docs
}

/// Look up the documentation for one rule id (exact, case-sensitive
/// `PB0xxx` form).
pub fn rule_doc(id: &str) -> Option<RuleDoc> {
    all_rule_docs().into_iter().find(|d| d.info.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Registry;

    #[test]
    fn every_catalog_rule_has_a_doc_and_vice_versa() {
        let registry = Registry::with_corpus_rules();
        let infos = registry.rule_infos();
        let docs = all_rule_docs();
        assert_eq!(infos.len(), docs.len(), "doc count must match catalog");
        for (info, doc) in infos.iter().zip(&docs) {
            assert_eq!(info.id, doc.info.id, "docs must be sorted like the catalog");
            assert!(!doc.rationale.is_empty());
            assert!(!doc.example.is_empty());
        }
    }

    #[test]
    fn rule_doc_lookup() {
        assert_eq!(
            rule_doc("PB0104").expect("doc").info.slug,
            "prov/derivation-cycle"
        );
        assert_eq!(
            rule_doc("PB0210").expect("doc").info.slug,
            "corpus/dangling-reference"
        );
        assert!(rule_doc("PB9999").is_none());
        assert!(rule_doc("pb0104").is_none());
    }

    #[test]
    fn docs_page_lists_every_rule() {
        let page = include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../docs/linting.md"
        ));
        for doc in all_rule_docs() {
            assert!(
                page.contains(doc.info.id),
                "docs/linting.md is missing rule {} ({}) — regenerate the catalog table",
                doc.info.id,
                doc.info.slug
            );
        }
    }
}
