//! Per-graph analysis summaries — the unit of incrementality for the
//! corpus-wide rules.
//!
//! An [`AnalysisSummary`] is everything the inter-graph fixpoint
//! (`rules::corpus`) needs to know about one document, extracted once
//! per parse and small enough to persist in the lint snapshot
//! (`provbench-core`'s `corpus.lint.snapshot`): the IRIs the document
//! declares and references (its export/import frontier), its derivation
//! edges and `prov:used` targets, the PB0107 event-precedence edges
//! lifted to strings, and the document's time-interval bounds. On a warm
//! run the corpus rules re-solve from these summaries alone — no graph
//! is re-parsed, no per-file rule body re-runs.

use crate::rules::constraints::{build_event_graph, Event};
use provbench_rdf::{Graph, Subject, Term};
use provbench_vocab::{dcterms, foaf, opmw, prov, rdf, rdfs, ro, void, wfdesc, wfprov};
use std::collections::BTreeSet;

/// Which event of a node's lifetime an edge endpoint refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// The start event of an activity.
    Start,
    /// The end event of an activity.
    End,
    /// The generation event of an entity.
    Gen,
}

impl EventKind {
    /// Stable wire code for snapshot persistence.
    pub fn code(self) -> u8 {
        match self {
            EventKind::Start => 0,
            EventKind::End => 1,
            EventKind::Gen => 2,
        }
    }

    /// Inverse of [`EventKind::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(EventKind::Start),
            1 => Some(EventKind::End),
            2 => Some(EventKind::Gen),
            _ => None,
        }
    }

    /// Human phrasing used in diagnostics ("start of", …).
    pub fn describe(self) -> &'static str {
        match self {
            EventKind::Start => "start of",
            EventKind::End => "end of",
            EventKind::Gen => "generation of",
        }
    }
}

/// One event-precedence edge, lifted from graph terms to plain strings
/// so it survives snapshot round-trips without an interner.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SummaryEdge {
    /// Source event.
    pub from: (EventKind, String),
    /// Target event.
    pub to: (EventKind, String),
    /// `<` rather than `≤` — a cycle through a strict edge is
    /// temporally impossible.
    pub strict: bool,
    /// The edge comes from `prov:wasDerivedFrom` (purely derivational
    /// cycles are PB0104/PB0211's business, not the temporal rule's).
    pub derivation: bool,
}

/// The compact per-document summary the corpus fixpoint runs on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnalysisSummary {
    /// IRIs the document declares: every non-vocabulary subject.
    pub declared: BTreeSet<String>,
    /// IRI targets of `prov:used`.
    pub used_targets: BTreeSet<String>,
    /// IRI targets of `prov:wasDerivedFrom`.
    pub derived_targets: BTreeSet<String>,
    /// Every non-vocabulary IRI in object position — the document's
    /// outgoing reference frontier (superset of the two target sets).
    pub references: BTreeSet<String>,
    /// `(derived, source)` pairs as asserted, sorted and deduplicated.
    pub derivations: Vec<(String, String)>,
    /// Event-precedence edges (the PB0107 network), sorted and
    /// deduplicated.
    pub events: Vec<SummaryEdge>,
    /// Lexicographically smallest timestamp literal seen (ISO 8601
    /// timestamps order lexicographically).
    pub time_min: Option<String>,
    /// Lexicographically largest timestamp literal seen.
    pub time_max: Option<String>,
}

/// True for IRIs inside an ontology / schema namespace — those are
/// shared vocabulary, not corpus data, and must not make two documents
/// "connected" or count as declarations.
pub fn is_vocab_iri(iri: &str) -> bool {
    const SCHEMA_NAMESPACES: &[&str] = &[
        "http://www.w3.org/2001/XMLSchema#",
        "http://www.w3.org/2002/07/owl#",
    ];
    [
        prov::NS,
        wfprov::NS,
        wfdesc::NS,
        opmw::NS,
        ro::NS,
        void::NS,
        rdf::NS,
        rdfs::NS,
        dcterms::NS,
        foaf::NS,
    ]
    .iter()
    .chain(SCHEMA_NAMESPACES)
    .any(|ns| iri.starts_with(ns))
}

impl AnalysisSummary {
    /// Extract the summary of one parsed graph. Works identically on a
    /// span-recording parse and a snapshot-loaded graph — summaries
    /// carry no positions.
    pub fn of_graph(g: &Graph) -> Self {
        let mut summary = AnalysisSummary::default();
        for t in g.iter() {
            if let Subject::Iri(s) = &t.subject {
                if !is_vocab_iri(s.as_str()) {
                    summary.declared.insert(s.as_str().to_owned());
                }
            }
            if let Term::Iri(o) = &t.object {
                if !is_vocab_iri(o.as_str()) {
                    summary.references.insert(o.as_str().to_owned());
                }
            }
            if let Term::Literal(lit) = &t.object {
                let p = t.predicate.as_str();
                let temporal = p == prov::started_at_time().as_str()
                    || p == prov::ended_at_time().as_str()
                    || p == prov::at_time().as_str()
                    || p == prov::generated_at_time().as_str();
                if temporal {
                    let value = lit.lexical();
                    if summary
                        .time_min
                        .as_deref()
                        .is_none_or(|current| value < current)
                    {
                        summary.time_min = Some(value.to_owned());
                    }
                    if summary
                        .time_max
                        .as_deref()
                        .is_none_or(|current| value > current)
                    {
                        summary.time_max = Some(value.to_owned());
                    }
                }
            }
        }
        for t in g.triples_matching(None, Some(&prov::used()), None) {
            if let Term::Iri(o) = &t.object {
                summary.used_targets.insert(o.as_str().to_owned());
            }
        }
        for t in g.triples_matching(None, Some(&prov::was_derived_from()), None) {
            if let (Subject::Iri(d), Term::Iri(s)) = (&t.subject, &t.object) {
                summary.derived_targets.insert(s.as_str().to_owned());
                summary
                    .derivations
                    .push((d.as_str().to_owned(), s.as_str().to_owned()));
            }
        }
        summary.derivations.sort();
        summary.derivations.dedup();

        let eg = build_event_graph(g);
        let lift = |event: &Event| match event {
            Event::Start(a) => (EventKind::Start, a.as_str().to_owned()),
            Event::End(a) => (EventKind::End, a.as_str().to_owned()),
            Event::Gen(e) => (EventKind::Gen, e.as_str().to_owned()),
        };
        summary.events = eg
            .edges
            .iter()
            .map(|&(f, t, strict, derivation)| SummaryEdge {
                from: lift(&eg.nodes[f]),
                to: lift(&eg.nodes[t]),
                strict,
                derivation,
            })
            .collect();
        summary.events.sort();
        summary.events.dedup();
        summary
    }

    /// The IRIs this document references but does not declare — what it
    /// expects some other document (or the outside world) to provide.
    pub fn imports(&self) -> BTreeSet<&str> {
        self.references
            .iter()
            .map(String::as_str)
            .filter(|iri| !self.declared.contains(*iri))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_rdf::parse_turtle;

    const DOC: &str = r#"
        @prefix prov: <http://www.w3.org/ns/prov#> .
        @prefix ex: <http://example.org/> .
        @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
        ex:out a prov:Entity ;
            prov:wasGeneratedBy ex:run ;
            prov:wasDerivedFrom ex:in .
        ex:run a prov:Activity ;
            prov:used ex:in ;
            prov:startedAtTime "2013-01-01T10:00:00Z"^^xsd:dateTime ;
            prov:endedAtTime "2013-01-01T11:00:00Z"^^xsd:dateTime .
    "#;

    #[test]
    fn of_graph_extracts_frontier_edges_and_bounds() {
        let (g, _) = parse_turtle(DOC).expect("parse");
        let s = AnalysisSummary::of_graph(&g);
        assert!(s.declared.contains("http://example.org/out"));
        assert!(s.declared.contains("http://example.org/run"));
        // Vocabulary terms are not declarations or references.
        assert!(!s.declared.iter().any(|iri| is_vocab_iri(iri)));
        assert!(!s.references.iter().any(|iri| is_vocab_iri(iri)));
        assert!(s.used_targets.contains("http://example.org/in"));
        assert!(s.derived_targets.contains("http://example.org/in"));
        assert_eq!(
            s.derivations,
            vec![(
                "http://example.org/out".to_owned(),
                "http://example.org/in".to_owned()
            )]
        );
        // ex:in is referenced but never a subject: an import.
        assert!(s.imports().contains("http://example.org/in"));
        assert!(!s.imports().contains("http://example.org/out"));
        assert_eq!(s.time_min.as_deref(), Some("2013-01-01T10:00:00Z"));
        assert_eq!(s.time_max.as_deref(), Some("2013-01-01T11:00:00Z"));
        // The event network contains the strict derivation edge.
        assert!(s.events.iter().any(|e| e.strict
            && e.derivation
            && e.from == (EventKind::Gen, "http://example.org/in".to_owned())
            && e.to == (EventKind::Gen, "http://example.org/out".to_owned())));
    }

    #[test]
    fn summaries_are_deterministic() {
        let (g, _) = parse_turtle(DOC).expect("parse");
        assert_eq!(AnalysisSummary::of_graph(&g), AnalysisSummary::of_graph(&g));
    }

    #[test]
    fn event_kind_codes_round_trip() {
        for kind in [EventKind::Start, EventKind::End, EventKind::Gen] {
            assert_eq!(EventKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(EventKind::from_code(9), None);
    }
}
