//! The corpus-wide lint runner: file discovery, parallel execution over a
//! thread pool, and deterministic result ordering.

use crate::diagnostic::{Diagnostic, Severity};
use crate::rules::{FileContext, Registry, PARSE_ERROR};
use provbench_rdf::{parse_trig_spanned, parse_turtle_spanned, Graph, Span, SpanTable};
use provbench_vocab::{opmw, wfdesc, wfprov};
use provbench_workflow::System;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Histogram of per-file lint (read+parse+rules) times.
const LINT_FILE_SECONDS: &str = "provbench_lint_file_seconds";
/// Counter of emitted diagnostics (`severity="error"|"warning"|"info"`).
const LINT_FINDINGS_TOTAL: &str = "provbench_lint_findings_total";

/// Lint results for one file, diagnostics in deterministic order.
#[derive(Clone, Debug)]
pub struct FileReport {
    /// The file's path as given to the runner.
    pub path: String,
    /// All (unsuppressed) diagnostics for the file.
    pub diagnostics: Vec<Diagnostic>,
}

/// The worker count to use when the caller does not specify one.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Whether the runner recognises this path as a lintable RDF file.
pub fn is_rdf_file(path: &Path) -> bool {
    matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("ttl" | "trig" | "nt")
    )
}

/// Recursively collect every `.ttl`/`.trig`/`.nt` file under `root`
/// (or `root` itself when it is a file), sorted by path.
pub fn collect_rdf_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    if root.is_file() {
        files.push(root.to_path_buf());
        return Ok(files);
    }
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            // file_type() comes straight from the directory entry on
            // every platform we care about — no extra stat per file.
            let file_type = entry.file_type()?;
            let path = entry.path();
            if file_type.is_dir() {
                stack.push(path);
            } else if is_rdf_file(&path) {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Guess which system profile applies from the vocabulary a graph
/// actually uses (predicates and IRI objects): OPMW terms mean Wings,
/// wfprov/wfdesc terms mean Taverna. Prefix declarations alone don't
/// count — serializers emit the full common prefix block everywhere. A
/// mixed file gets the majority profile.
pub fn detect_system(graph: &Graph) -> Option<System> {
    let mut wings = 0usize;
    let mut taverna = 0usize;
    let mut tally = |iri: &str| {
        if iri.starts_with(opmw::NS) {
            wings += 1;
        } else if iri.starts_with(wfprov::NS) || iri.starts_with(wfdesc::NS) {
            taverna += 1;
        }
    };
    for t in graph.iter() {
        tally(t.predicate.as_str());
        if let provbench_rdf::Term::Iri(object) = &t.object {
            tally(object.as_str());
        }
    }
    match wings.cmp(&taverna) {
        std::cmp::Ordering::Greater => Some(System::Wings),
        std::cmp::Ordering::Less => Some(System::Taverna),
        std::cmp::Ordering::Equal if taverna > 0 => Some(System::Taverna),
        std::cmp::Ordering::Equal => None,
    }
}

/// Lint one in-memory document. `label` decides the concrete syntax
/// (`.trig` parses as TriG, anything else as Turtle) and is attached to
/// every diagnostic as the file path.
pub fn lint_content(label: &str, content: &str, registry: &Registry) -> Vec<Diagnostic> {
    let parsed: Result<(Graph, SpanTable), _> = if label.ends_with(".trig") {
        parse_trig_spanned(content).map(|(ds, _, spans)| (ds.union_graph(), spans))
    } else {
        parse_turtle_spanned(content).map(|(g, _, spans)| (g, spans))
    };
    match parsed {
        Err(e) => {
            vec![
                Diagnostic::new(&PARSE_ERROR, format!("syntax error: {}", e.message))
                    .with_file(label)
                    .with_span(Some(Span::point(e.line, e.column))),
            ]
        }
        Ok((graph, spans)) => {
            let cx = FileContext {
                path: Some(label),
                graph: &graph,
                spans: &spans,
                system: detect_system(&graph),
            };
            registry.check(&cx)
        }
    }
}

/// Lint an already-parsed graph, e.g. one memory-loaded from a binary
/// corpus snapshot where no concrete syntax (and hence no span table)
/// exists. Diagnostics carry `label` as their file and no source spans.
pub fn lint_graph(label: &str, graph: &Graph, registry: &Registry) -> Vec<Diagnostic> {
    let start = Instant::now();
    let spans = SpanTable::new();
    let cx = FileContext {
        path: Some(label),
        graph,
        spans: &spans,
        system: detect_system(graph),
    };
    let diagnostics = registry.check(&cx);
    let obs = provbench_obs::global();
    obs.histogram(
        LINT_FILE_SECONDS,
        "Per-file lint (read+parse+rules) time",
        provbench_obs::LATENCY_BUCKETS,
    )
    .observe_duration(start.elapsed());
    obs.counter_with(
        "provbench_lint_files_total",
        "Files linted, by mode (cold analysis vs snapshot replay)",
        &[("mode", "graph")],
    )
    .inc();
    record_findings(obs, &diagnostics);
    diagnostics
}

/// The label a corpus file is linted under: the corpus directory's own
/// name plus the file's corpus-relative path, always `/`-separated. The
/// label — and with it every diagnostic fingerprint — is therefore
/// stable across operating systems and across invocation directories
/// (`provbench lint examples` and `provbench lint /abs/path/examples`
/// agree). When `root` is a single file, its path is used as given,
/// separator-normalized.
pub fn corpus_label(root: &Path, path: &Path) -> String {
    let normalize = |p: &Path| {
        let s = p.to_string_lossy().replace('\\', "/");
        s.strip_prefix("./").unwrap_or(&s).to_string()
    };
    match (root.file_name(), path.strip_prefix(root)) {
        (Some(dir), Ok(rel)) if !rel.as_os_str().is_empty() => {
            format!("{}/{}", dir.to_string_lossy(), normalize(rel))
        }
        _ => normalize(path),
    }
}

fn lint_file(path: &Path, label: &str, registry: &Registry) -> FileReport {
    let start = Instant::now();
    let diagnostics = match std::fs::read_to_string(path) {
        Ok(content) => lint_content(label, &content, registry),
        Err(e) => {
            vec![Diagnostic::new(&PARSE_ERROR, format!("cannot read file: {e}")).with_file(label)]
        }
    };
    let obs = provbench_obs::global();
    obs.histogram(
        LINT_FILE_SECONDS,
        "Per-file lint (read+parse+rules) time",
        provbench_obs::LATENCY_BUCKETS,
    )
    .observe_duration(start.elapsed());
    record_findings(obs, &diagnostics);
    FileReport {
        path: label.to_owned(),
        diagnostics,
    }
}

/// Count `diagnostics` into the severity-labelled findings counter.
pub(crate) fn record_findings(obs: &provbench_obs::Registry, diagnostics: &[Diagnostic]) {
    for severity in [Severity::Error, Severity::Warning, Severity::Info] {
        let n = diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count();
        if n > 0 {
            let label = match severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
                Severity::Info => "info",
            };
            obs.counter_with(
                LINT_FINDINGS_TOTAL,
                "Lint diagnostics emitted, by severity",
                &[("severity", label)],
            )
            .add(n as u64);
        }
    }
}

/// Lint a set of files over `jobs` worker threads. Results come back in
/// input order regardless of which worker finished first. Diagnostics
/// carry the file's path as given.
pub fn lint_files(files: &[PathBuf], registry: &Registry, jobs: usize) -> Vec<FileReport> {
    let labeled: Vec<(PathBuf, String)> = files
        .iter()
        .map(|p| (p.clone(), p.to_string_lossy().into_owned()))
        .collect();
    lint_files_labeled(&labeled, registry, jobs)
}

/// Like [`lint_files`], but each file carries an explicit label to lint
/// under (attached to diagnostics and used as the report path).
pub fn lint_files_labeled(
    files: &[(PathBuf, String)],
    registry: &Registry,
    jobs: usize,
) -> Vec<FileReport> {
    let jobs = jobs.max(1).min(files.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, FileReport)>> = Mutex::new(Vec::with_capacity(files.len()));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= files.len() {
                    break;
                }
                let (path, label) = &files[i];
                let report = lint_file(path, label, registry);
                results
                    .lock()
                    .expect("no poisoned workers")
                    .push((i, report));
            });
        }
    });
    let mut results = results.into_inner().expect("workers joined");
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, r)| r).collect()
}

/// Discover and lint everything under `root` (a file or a directory).
/// Files are linted under their [`corpus_label`].
pub fn lint_path(root: &Path, registry: &Registry, jobs: usize) -> io::Result<Vec<FileReport>> {
    let files = collect_rdf_files(root)?;
    let labeled: Vec<(PathBuf, String)> = files
        .into_iter()
        .map(|p| {
            let label = corpus_label(root, &p);
            (p, label)
        })
        .collect();
    Ok(lint_files_labeled(&labeled, registry, jobs))
}

/// `(errors, warnings, infos)` across all reports, after suppression.
pub fn severity_counts(reports: &[FileReport]) -> (usize, usize, usize) {
    let mut counts = (0usize, 0usize, 0usize);
    for report in reports {
        for d in &report.diagnostics {
            match d.severity {
                Severity::Error => counts.0 += 1,
                Severity::Warning => counts.1 += 1,
                Severity::Info => counts.2 += 1,
            }
        }
    }
    counts
}
