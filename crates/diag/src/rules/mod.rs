//! The rule trait and the registry of every rule pack.
//!
//! A *rule pack* scans one parsed file and may emit diagnostics under any
//! of the [`RuleInfo`]s it declares. The registry owns the default packs
//! and produces the complete, `PB0xxx`-sorted rule catalog (SARIF wants
//! the full rule table up front, fired or not).

pub mod constraints;
pub mod corpus;
pub mod profile;
pub mod vocabulary;

use crate::diagnostic::{Diagnostic, RuleInfo, Severity};
use provbench_rdf::{Graph, Iri, Span, SpanTable, Subject, Term};
use provbench_workflow::System;

/// Everything a rule pack may look at for one file.
pub struct FileContext<'a> {
    /// Path of the file being linted (attached to diagnostics), when any.
    pub path: Option<&'a str>,
    /// The file's triples — for TriG files, the union over all graphs.
    pub graph: &'a Graph,
    /// Span side table (empty when the caller did not record spans).
    pub spans: &'a SpanTable,
    /// The workflow system whose profile applies, when detected.
    pub system: Option<System>,
}

impl FileContext<'_> {
    /// Start a diagnostic for `rule`, pre-filled with this file's path.
    pub fn diag(&self, rule: &'static RuleInfo, message: impl Into<String>) -> Diagnostic {
        let d = Diagnostic::new(rule, message);
        match self.path {
            Some(p) => d.with_file(p),
            None => d,
        }
    }

    /// Span of the first recorded statement about `node` (as subject).
    pub fn node_span(&self, node: &Iri) -> Option<Span> {
        self.spans.first_for_subject(&Subject::Iri(node.clone()))
    }

    /// Span of the first recorded statement matching the given pattern.
    pub fn pattern_span(
        &self,
        subject: Option<&Subject>,
        predicate: Option<&Iri>,
        object: Option<&Term>,
    ) -> Option<Span> {
        self.spans
            .iter()
            .find(|e| {
                subject.is_none_or(|s| &e.triple.subject == s)
                    && predicate.is_none_or(|p| &e.triple.predicate == p)
                    && object.is_none_or(|o| &e.triple.object == o)
            })
            .map(|e| e.span)
    }
}

/// A pack of related lint rules that scan one file together.
pub trait Rule: Send + Sync {
    /// Name of the pack (for `--help` style listings).
    fn name(&self) -> &'static str;

    /// Every rule this pack can emit.
    fn rules(&self) -> &'static [&'static RuleInfo];

    /// Scan the file, appending diagnostics.
    fn check(&self, cx: &FileContext<'_>, out: &mut Vec<Diagnostic>);
}

/// `PB0001` — the file could not be parsed at all. Emitted by the runner
/// itself, not by a pack, but part of the catalog.
pub static PARSE_ERROR: RuleInfo = RuleInfo {
    id: "PB0001",
    slug: "parse/error",
    severity: Severity::Error,
    summary: "the file is not well-formed Turtle/TriG",
};

/// The ordered collection of rule packs applied to every file.
pub struct Registry {
    packs: Vec<Box<dyn Rule>>,
}

impl Registry {
    /// An empty registry (used by tests exercising a single pack).
    pub fn new() -> Self {
        Registry { packs: Vec::new() }
    }

    /// The full default rule set: PROV constraints, event ordering,
    /// typing, both system profiles and the vocabulary pack.
    pub fn with_default_rules() -> Self {
        let mut r = Registry::new();
        r.register(Box::new(constraints::ProvConstraints));
        r.register(Box::new(constraints::EventOrdering));
        r.register(Box::new(constraints::Typing));
        r.register(Box::new(profile::TavernaProfile));
        r.register(Box::new(profile::WingsProfile));
        r.register(Box::new(vocabulary::Vocabulary));
        r
    }

    /// The default rules plus the corpus pack (PB0210–PB0213). The
    /// corpus pack's per-file check is a no-op — the analysis itself
    /// runs once per corpus via [`corpus::check_corpus`] — but
    /// registering it puts the corpus rules into the catalog, the SARIF
    /// rule table and `--explain`.
    pub fn with_corpus_rules() -> Self {
        let mut r = Registry::with_default_rules();
        r.register(Box::new(corpus::CorpusRules));
        r
    }

    /// Add a pack.
    pub fn register(&mut self, pack: Box<dyn Rule>) {
        self.packs.push(pack);
    }

    /// The registered packs.
    pub fn packs(&self) -> &[Box<dyn Rule>] {
        &self.packs
    }

    /// The complete rule catalog (including [`PARSE_ERROR`]), sorted by
    /// rule id — the order SARIF's `tool.driver.rules` array uses.
    pub fn rule_infos(&self) -> Vec<&'static RuleInfo> {
        let mut infos: Vec<&'static RuleInfo> = vec![&PARSE_ERROR];
        for pack in &self.packs {
            infos.extend_from_slice(pack.rules());
        }
        infos.sort_by_key(|i| i.id);
        infos.dedup_by_key(|i| i.id);
        infos
    }

    /// Run every pack over one file and return its diagnostics in
    /// deterministic order.
    pub fn check(&self, cx: &FileContext<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for pack in &self.packs {
            pack.check(cx, &mut out);
        }
        out.sort_by_key(|d| d.sort_key());
        out
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_default_rules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_unique_and_complete() {
        // The corpus registry is a strict superset of the default one.
        let default_ids: Vec<&str> = Registry::with_default_rules()
            .rule_infos()
            .iter()
            .map(|i| i.id)
            .collect();
        let registry = Registry::with_corpus_rules();
        let infos = registry.rule_infos();
        for id in &default_ids {
            assert!(infos.iter().any(|i| &i.id == id));
        }
        for corpus_id in ["PB0210", "PB0211", "PB0212", "PB0213"] {
            assert!(infos.iter().any(|i| i.id == corpus_id));
            assert!(!default_ids.contains(&corpus_id));
        }
        let ids: Vec<&str> = infos.iter().map(|i| i.id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(
            ids, sorted,
            "catalog must be sorted and free of duplicate ids"
        );
        assert!(ids.contains(&"PB0001"));
        // Every id is PB + 4 digits; every rule has a slug and summary.
        for info in &infos {
            assert!(
                info.id.len() == 6 && info.id.starts_with("PB"),
                "bad id {}",
                info.id
            );
            assert!(info.id[2..].chars().all(|c| c.is_ascii_digit()));
            assert!(info.slug.contains('/'));
            assert!(!info.summary.is_empty());
        }
    }
}
