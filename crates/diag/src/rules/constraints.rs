//! W3C PROV-CONSTRAINTS rules: the existing validator mapped onto stable
//! rule ids, plus an event-precedence network (PB0107) and the
//! entity/activity disjointness typing check (PB0108).

use super::{FileContext, Rule};
use crate::dataflow::scc_ids;
use crate::diagnostic::{Diagnostic, RelatedLocation, RuleInfo, Severity};
use provbench_prov::constraints::{validate, Violation};
use provbench_rdf::{Graph, Iri, Subject, Term};
use provbench_vocab::{prov, rdf_type};
use std::collections::BTreeMap;

/// `PB0101` — `prov:endedAtTime` precedes `prov:startedAtTime`.
pub static ENDS_BEFORE_START: RuleInfo = RuleInfo {
    id: "PB0101",
    slug: "prov/ends-before-start",
    severity: Severity::Error,
    summary: "an activity's end time precedes its start time",
};

/// `PB0102` — an entity is used before it was generated.
pub static USAGE_BEFORE_GENERATION: RuleInfo = RuleInfo {
    id: "PB0102",
    slug: "prov/usage-before-generation",
    severity: Severity::Error,
    summary: "an entity is used by an activity that ended before the generating activity started",
};

/// `PB0103` — more than one independent generating activity.
pub static MULTIPLE_GENERATION: RuleInfo = RuleInfo {
    id: "PB0103",
    slug: "prov/multiple-generation",
    severity: Severity::Error,
    summary: "an entity has more than one independent generating activity",
};

/// `PB0104` — `prov:wasDerivedFrom` cycle.
pub static DERIVATION_CYCLE: RuleInfo = RuleInfo {
    id: "PB0104",
    slug: "prov/derivation-cycle",
    severity: Severity::Error,
    summary: "the derivation relation contains a cycle",
};

/// `PB0105` — an entity derived from itself.
pub static SELF_DERIVATION: RuleInfo = RuleInfo {
    id: "PB0105",
    slug: "prov/self-derivation",
    severity: Severity::Error,
    summary: "an entity is prov:wasDerivedFrom itself",
};

/// `PB0106` — an activity informed by itself.
pub static SELF_COMMUNICATION: RuleInfo = RuleInfo {
    id: "PB0106",
    slug: "prov/self-communication",
    severity: Severity::Error,
    summary: "an activity is prov:wasInformedBy itself",
};

/// `PB0107` — a temporally impossible cycle in the event-precedence
/// network (mixing derivation with generation/usage/start constraints).
pub static EVENT_ORDERING_CYCLE: RuleInfo = RuleInfo {
    id: "PB0107",
    slug: "prov/event-ordering-cycle",
    severity: Severity::Error,
    summary: "generation/usage/start/derivation constraints form a temporally impossible cycle",
};

/// `PB0108` — a node typed both `prov:Entity` and `prov:Activity`.
pub static ENTITY_ACTIVITY_DISJOINT: RuleInfo = RuleInfo {
    id: "PB0108",
    slug: "prov/entity-activity-disjoint",
    severity: Severity::Error,
    summary: "a node is typed both prov:Entity and prov:Activity (disjoint classes)",
};

/// PB0101–PB0106: the `provbench-prov` PROV-CONSTRAINTS validator,
/// re-reported with rule ids and source spans.
pub struct ProvConstraints;

static PROV_CONSTRAINT_RULES: &[&RuleInfo] = &[
    &ENDS_BEFORE_START,
    &USAGE_BEFORE_GENERATION,
    &MULTIPLE_GENERATION,
    &DERIVATION_CYCLE,
    &SELF_DERIVATION,
    &SELF_COMMUNICATION,
];

impl Rule for ProvConstraints {
    fn name(&self) -> &'static str {
        "prov-constraints"
    }

    fn rules(&self) -> &'static [&'static RuleInfo] {
        PROV_CONSTRAINT_RULES
    }

    fn check(&self, cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        // Derivation components, computed on first use: PB0104 attaches
        // every member edge of the offending cycle as a related location.
        let mut derivation_components: Option<DerivationComponents> = None;
        for violation in validate(cx.graph) {
            out.push(match &violation {
                Violation::ActivityEndsBeforeStart { activity } => cx
                    .diag(&ENDS_BEFORE_START, violation.to_string())
                    .with_node(activity.clone())
                    .with_span(cx.pattern_span(
                        Some(&Subject::Iri(activity.clone())),
                        Some(&prov::ended_at_time()),
                        None,
                    )),
                Violation::UsageBeforeGeneration { entity, user, .. } => cx
                    .diag(&USAGE_BEFORE_GENERATION, violation.to_string())
                    .with_node(entity.clone())
                    .with_span(cx.pattern_span(
                        Some(&Subject::Iri(user.clone())),
                        Some(&prov::used()),
                        Some(&Term::Iri(entity.clone())),
                    )),
                Violation::MultipleGeneration { entity, .. } => cx
                    .diag(&MULTIPLE_GENERATION, violation.to_string())
                    .with_node(entity.clone())
                    .with_span(cx.pattern_span(
                        Some(&Subject::Iri(entity.clone())),
                        Some(&prov::was_generated_by()),
                        None,
                    )),
                Violation::DerivationCycle { entity } => {
                    let components = derivation_components
                        .get_or_insert_with(|| DerivationComponents::of(cx.graph));
                    cx.diag(&DERIVATION_CYCLE, violation.to_string())
                        .with_node(entity.clone())
                        .with_span(cx.pattern_span(
                            Some(&Subject::Iri(entity.clone())),
                            Some(&prov::was_derived_from()),
                            None,
                        ))
                        .with_related(components.cycle_members(entity, cx))
                }
                Violation::SelfDerivation { entity } => cx
                    .diag(&SELF_DERIVATION, violation.to_string())
                    .with_node(entity.clone())
                    .with_span(cx.pattern_span(
                        Some(&Subject::Iri(entity.clone())),
                        Some(&prov::was_derived_from()),
                        Some(&Term::Iri(entity.clone())),
                    )),
                Violation::SelfCommunication { activity } => cx
                    .diag(&SELF_COMMUNICATION, violation.to_string())
                    .with_node(activity.clone())
                    .with_span(cx.pattern_span(
                        Some(&Subject::Iri(activity.clone())),
                        Some(&prov::was_informed_by()),
                        Some(&Term::Iri(activity.clone())),
                    )),
            });
        }
    }
}

/// The strongly connected components of the `prov:wasDerivedFrom`
/// relation, for pointing PB0104 at every edge of the offending cycle.
struct DerivationComponents {
    index: BTreeMap<Iri, usize>,
    component: Vec<usize>,
    /// `(derived, source)` pairs as asserted, sorted.
    edges: Vec<(Iri, Iri)>,
}

impl DerivationComponents {
    fn of(g: &Graph) -> Self {
        let mut index: BTreeMap<Iri, usize> = BTreeMap::new();
        let mut edges: Vec<(Iri, Iri)> = Vec::new();
        for t in g.triples_matching(None, Some(&prov::was_derived_from()), None) {
            if let (Subject::Iri(d), Term::Iri(s)) = (&t.subject, &t.object) {
                edges.push((d.clone(), s.clone()));
            }
        }
        edges.sort();
        edges.dedup();
        for (d, s) in &edges {
            let next = index.len();
            index.entry(d.clone()).or_insert(next);
            let next = index.len();
            index.entry(s.clone()).or_insert(next);
        }
        let mut adjacency = vec![Vec::new(); index.len()];
        for (d, s) in &edges {
            adjacency[index[d]].push(index[s]);
        }
        let component = scc_ids(index.len(), &adjacency);
        DerivationComponents {
            index,
            component,
            edges,
        }
    }

    /// Every derivation edge inside `entity`'s cycle, as related
    /// locations (empty when the entity is not actually in a cycle).
    fn cycle_members(&self, entity: &Iri, cx: &FileContext<'_>) -> Vec<RelatedLocation> {
        let Some(&node) = self.index.get(entity) else {
            return Vec::new();
        };
        let id = self.component[node];
        self.edges
            .iter()
            .filter(|(d, s)| {
                self.component[self.index[d]] == id && self.component[self.index[s]] == id
            })
            .map(|(d, s)| RelatedLocation {
                message: format!("cycle member: {d} prov:wasDerivedFrom {s}"),
                file: cx.path.map(Into::into),
                span: cx.pattern_span(
                    Some(&Subject::Iri(d.clone())),
                    Some(&prov::was_derived_from()),
                    Some(&Term::Iri(s.clone())),
                ),
            })
            .collect()
    }
}

/// PB0107: build the event-precedence network PROV-CONSTRAINTS defines
/// over generation/usage/start/end events and look for strongly connected
/// components that contain a *strict* precedence — those are satisfiable
/// by no timeline. Pure derivation cycles are left to PB0104.
pub struct EventOrdering;

/// One event in the precedence network. Shared with
/// [`crate::summary`], which serializes these per-graph so the corpus
/// temporal rule (PB0212) can re-solve the network from cached
/// summaries.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Event {
    /// The start event of an activity.
    Start(Iri),
    /// The end event of an activity.
    End(Iri),
    /// The (assumed unique) generation event of an entity.
    Gen(Iri),
}

pub(crate) struct EventGraph {
    pub(crate) nodes: Vec<Event>,
    pub(crate) index: BTreeMap<Event, usize>,
    /// `(from, to, strict, derivation)` — `strict` means `<` not `≤`.
    pub(crate) edges: Vec<(usize, usize, bool, bool)>,
}

impl EventGraph {
    pub(crate) fn new() -> Self {
        EventGraph {
            nodes: Vec::new(),
            index: BTreeMap::new(),
            edges: Vec::new(),
        }
    }

    pub(crate) fn node(&mut self, e: Event) -> usize {
        if let Some(&i) = self.index.get(&e) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(e.clone());
        self.index.insert(e, i);
        i
    }

    pub(crate) fn edge(&mut self, from: Event, to: Event, strict: bool, derivation: bool) {
        let f = self.node(from);
        let t = self.node(to);
        self.edges.push((f, t, strict, derivation));
    }
}

pub(crate) fn build_event_graph(g: &Graph) -> EventGraph {
    let mut eg = EventGraph::new();
    // wasGeneratedBy(e, a): start(a) ≤ gen(e) ≤ end(a).
    for t in g.triples_matching(None, Some(&prov::was_generated_by()), None) {
        if let (Subject::Iri(e), Term::Iri(a)) = (&t.subject, &t.object) {
            eg.edge(Event::Start(a.clone()), Event::Gen(e.clone()), false, false);
            eg.edge(Event::Gen(e.clone()), Event::End(a.clone()), false, false);
        }
    }
    // used(a, e): gen(e) ≤ end(a) (generation precedes any usage, and
    // usage happens within the activity's interval).
    for t in g.triples_matching(None, Some(&prov::used()), None) {
        if let (Subject::Iri(a), Term::Iri(e)) = (&t.subject, &t.object) {
            eg.edge(Event::Gen(e.clone()), Event::End(a.clone()), false, false);
        }
    }
    // wasDerivedFrom(d, s): gen(s) strictly precedes gen(d). Self-loops
    // are PB0105's business.
    for t in g.triples_matching(None, Some(&prov::was_derived_from()), None) {
        if let (Subject::Iri(d), Term::Iri(s)) = (&t.subject, &t.object) {
            if d != s {
                eg.edge(Event::Gen(s.clone()), Event::Gen(d.clone()), true, true);
            }
        }
    }
    // wasInformedBy(b, a): start(a) ≤ end(b).
    for t in g.triples_matching(None, Some(&prov::was_informed_by()), None) {
        if let (Subject::Iri(b), Term::Iri(a)) = (&t.subject, &t.object) {
            if b != a {
                eg.edge(Event::Start(a.clone()), Event::End(b.clone()), false, false);
            }
        }
    }
    // wasStartedBy(a, e): the trigger entity exists before the activity
    // starts — gen(e) ≤ start(a). This is the edge that lets derivation
    // contradictions surface without an explicit derivation cycle.
    for t in g.triples_matching(None, Some(&prov::was_started_by()), None) {
        if let (Subject::Iri(a), Term::Iri(e)) = (&t.subject, &t.object) {
            eg.edge(Event::Gen(e.clone()), Event::Start(a.clone()), false, false);
        }
    }
    // wasEndedBy(a, e): gen(e) ≤ end(a).
    for t in g.triples_matching(None, Some(&prov::was_ended_by()), None) {
        if let (Subject::Iri(a), Term::Iri(e)) = (&t.subject, &t.object) {
            eg.edge(Event::Gen(e.clone()), Event::End(a.clone()), false, false);
        }
    }
    // Interval sanity: start(a) ≤ end(a) for every activity seen above.
    let activities: Vec<Iri> = eg
        .nodes
        .iter()
        .filter_map(|n| match n {
            Event::Start(a) | Event::End(a) => Some(a.clone()),
            Event::Gen(_) => None,
        })
        .collect();
    for a in activities {
        eg.edge(Event::Start(a.clone()), Event::End(a), false, false);
    }
    eg
}

impl Rule for EventOrdering {
    fn name(&self) -> &'static str {
        "event-ordering"
    }

    fn rules(&self) -> &'static [&'static RuleInfo] {
        static RULES: &[&RuleInfo] = &[&EVENT_ORDERING_CYCLE];
        RULES
    }

    fn check(&self, cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        let eg = build_event_graph(cx.graph);
        let n = eg.nodes.len();
        if n == 0 {
            return;
        }
        let mut adjacency = vec![Vec::new(); n];
        for &(f, t, _, _) in &eg.edges {
            adjacency[f].push(t);
        }
        let ids = scc_ids(n, &adjacency);
        // Group internal edges per component.
        let mut strict_in: BTreeMap<usize, bool> = BTreeMap::new();
        let mut mixed_in: BTreeMap<usize, bool> = BTreeMap::new();
        for &(f, t, strict, derivation) in &eg.edges {
            if ids[f] == ids[t] {
                *strict_in.entry(ids[f]).or_default() |= strict;
                *mixed_in.entry(ids[f]).or_default() |= !derivation;
            }
        }
        for (component, strict) in strict_in {
            // A cycle is impossible only if it contains a strict edge; a
            // purely-derivational cycle is already PB0104.
            if !strict || !mixed_in.get(&component).copied().unwrap_or(false) {
                continue;
            }
            // Deterministic representative: smallest entity in the
            // component, preferring generation events.
            let representative = eg
                .nodes
                .iter()
                .enumerate()
                .filter(|(i, _)| ids[*i] == component)
                .map(|(_, e)| match e {
                    Event::Gen(x) => (0u8, x.clone()),
                    Event::Start(x) => (1, x.clone()),
                    Event::End(x) => (2, x.clone()),
                })
                .min()
                .expect("non-empty component")
                .1;
            let member_events: Vec<&Event> = eg
                .nodes
                .iter()
                .enumerate()
                .filter(|(i, _)| ids[*i] == component)
                .map(|(_, e)| e)
                .collect();
            let members = member_events.len();
            let mut related: Vec<RelatedLocation> = member_events
                .iter()
                .map(|e| {
                    let (what, iri) = match e {
                        Event::Gen(x) => ("generation of", x),
                        Event::Start(x) => ("start of", x),
                        Event::End(x) => ("end of", x),
                    };
                    RelatedLocation {
                        message: format!("cycle member: {what} {iri}"),
                        file: cx.path.map(Into::into),
                        span: cx.node_span(iri),
                    }
                })
                .collect();
            related.sort_by(|a, b| a.message.cmp(&b.message));
            out.push(
                cx.diag(
                    &EVENT_ORDERING_CYCLE,
                    format!(
                        "event-ordering constraints around {representative} form an impossible cycle ({members} events involved)"
                    ),
                )
                .with_node(representative.clone())
                .with_span(cx.node_span(&representative))
                .with_related(related),
            );
        }
    }
}

/// PB0108: `prov:Entity` and `prov:Activity` are disjoint classes
/// (PROV-CONSTRAINTS "entity-activity-disjoint").
pub struct Typing;

impl Rule for Typing {
    fn name(&self) -> &'static str {
        "typing"
    }

    fn rules(&self) -> &'static [&'static RuleInfo] {
        static RULES: &[&RuleInfo] = &[&ENTITY_ACTIVITY_DISJOINT];
        RULES
    }

    fn check(&self, cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        let entity: Term = prov::entity().into();
        let activity: Term = prov::activity().into();
        let rdf_type = rdf_type();
        for t in cx
            .graph
            .triples_matching(None, Some(&rdf_type), Some(&entity))
        {
            let Subject::Iri(node) = &t.subject else {
                continue;
            };
            let also_activity = cx
                .graph
                .triples_matching(Some(&t.subject), Some(&rdf_type), Some(&activity))
                .next()
                .is_some();
            if also_activity {
                out.push(
                    cx.diag(
                        &ENTITY_ACTIVITY_DISJOINT,
                        format!("{node} is typed both prov:Entity and prov:Activity"),
                    )
                    .with_node(node.clone())
                    .with_span(cx.pattern_span(
                        Some(&t.subject),
                        Some(&rdf_type),
                        Some(&activity),
                    )),
                );
            }
        }
    }
}
