//! Vocabulary-coverage rules: catch typo'd terms in the ontologies the
//! corpus uses, terms from the wrong system's ontology, and PROV-O terms
//! outside the paper's Table 2/3 + profile inventory.

use super::{FileContext, Rule};
use crate::diagnostic::{Diagnostic, RuleInfo, Severity};
use provbench_rdf::{Iri, Span, Term};
use provbench_vocab::{opmw, prov, rdf_type, ro, wfdesc, wfprov};
use provbench_workflow::System;
use std::collections::BTreeMap;

/// `PB0401` — a term in a corpus namespace the ontology does not define.
pub static UNKNOWN_TERM: RuleInfo = RuleInfo {
    id: "PB0401",
    slug: "vocab/unknown-term",
    severity: Severity::Error,
    summary: "a term in a corpus ontology namespace that the ontology does not define (typo?)",
};

/// `PB0402` — a term from the other system's ontology.
pub static CROSS_PROFILE_TERM: RuleInfo = RuleInfo {
    id: "PB0402",
    slug: "vocab/cross-profile-term",
    severity: Severity::Warning,
    summary: "a Taverna trace uses OPMW terms, or a Wings trace uses wfprov/wfdesc terms",
};

/// `PB0403` — a genuine PROV-O term outside the paper's inventory.
pub static OUTSIDE_INVENTORY: RuleInfo = RuleInfo {
    id: "PB0403",
    slug: "vocab/outside-inventory",
    severity: Severity::Info,
    summary: "a valid PROV-O term the paper's Table 2/3 inventory does not track",
};

/// PROV-O terms that exist in the ontology but that no corpus exporter
/// emits — using one is worth an FYI (PB0403), not an error. Anything in
/// the `prov:` namespace that is neither here nor in the tracked
/// inventory is treated as a typo (PB0401).
static PROV_EXTENDED_LOCALS: &[&str] = &[
    "Collection",
    "EmptyCollection",
    "hadMember",
    "wasInvalidatedBy",
    "Invalidation",
    "qualifiedInvalidation",
    "Influence",
    "EntityInfluence",
    "ActivityInfluence",
    "AgentInfluence",
    "qualifiedInfluence",
    "influencer",
    "influenced",
    "Delegation",
    "qualifiedDelegation",
    "Communication",
    "qualifiedCommunication",
    "Start",
    "End",
    "qualifiedStart",
    "qualifiedEnd",
    "Derivation",
    "qualifiedDerivation",
    "Revision",
    "wasRevisionOf",
    "qualifiedRevision",
    "Quotation",
    "wasQuotedFrom",
    "qualifiedQuotation",
    "PrimarySource",
    "qualifiedPrimarySource",
    "Attribution",
    "qualifiedAttribution",
    "Role",
    "hadRole",
    "hadActivity",
    "hadUsage",
    "hadGeneration",
];

/// The vocabulary pack (PB0401–PB0403).
pub struct Vocabulary;

static VOCAB_RULES: &[&RuleInfo] = &[&UNKNOWN_TERM, &CROSS_PROFILE_TERM, &OUTSIDE_INVENTORY];

/// The vocabulary terms a document *uses*: every predicate, plus every
/// IRI object of `rdf:type`. Other subjects/objects are instance
/// identifiers, not vocabulary. Returns each term with the span of its
/// first use.
fn used_terms(cx: &FileContext<'_>) -> BTreeMap<Iri, Option<Span>> {
    let rdf_type = rdf_type();
    let mut terms: BTreeMap<Iri, Option<Span>> = BTreeMap::new();
    for t in cx.graph.iter() {
        let span = || cx.pattern_span(Some(&t.subject), Some(&t.predicate), Some(&t.object));
        if t.predicate == rdf_type {
            if let Term::Iri(class) = &t.object {
                terms.entry(class.clone()).or_insert_with(span);
            }
        }
        terms.entry(t.predicate.clone()).or_insert_with(span);
    }
    terms
}

impl Rule for Vocabulary {
    fn name(&self) -> &'static str {
        "vocabulary"
    }

    fn rules(&self) -> &'static [&'static RuleInfo] {
        VOCAB_RULES
    }

    fn check(&self, cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        for (term, span) in used_terms(cx) {
            let iri = term.as_str();
            // Typo detection in the four extension ontologies.
            for (ns, all) in [
                (wfprov::NS, wfprov::ALL_TERMS),
                (wfdesc::NS, wfdesc::ALL_TERMS),
                (opmw::NS, opmw::ALL_TERMS),
                (ro::NS, ro::ALL_TERMS),
            ] {
                if iri.starts_with(ns) && !all.contains(&iri) {
                    out.push(
                        cx.diag(
                            &UNKNOWN_TERM,
                            format!("<{iri}> is not a term of the ontology at {ns}"),
                        )
                        .with_node(term.clone())
                        .with_span(span),
                    );
                }
            }
            // PROV-O: tracked inventory vs genuine-but-untracked vs typo.
            if let Some(local) = iri.strip_prefix(prov::NS) {
                if !prov::ALL_TERMS.contains(&iri) {
                    if PROV_EXTENDED_LOCALS.contains(&local) {
                        out.push(
                            cx.diag(
                                &OUTSIDE_INVENTORY,
                                format!(
                                    "prov:{local} is valid PROV-O but outside the paper's Table 2/3 inventory"
                                ),
                            )
                            .with_node(term.clone())
                            .with_span(span),
                        );
                    } else {
                        out.push(
                            cx.diag(
                                &UNKNOWN_TERM,
                                format!("<{iri}> is not a PROV-O term (typo?)"),
                            )
                            .with_node(term.clone())
                            .with_span(span),
                        );
                    }
                }
            }
            // Terms from the other system's ontology.
            let wrong_profile = match cx.system {
                Some(System::Taverna) => iri.starts_with(opmw::NS),
                Some(System::Wings) => iri.starts_with(wfprov::NS) || iri.starts_with(wfdesc::NS),
                None => false,
            };
            if wrong_profile {
                let system = cx.system.expect("checked above");
                out.push(
                    cx.diag(
                        &CROSS_PROFILE_TERM,
                        format!(
                            "{} trace uses <{iri}> from the other system's ontology",
                            system.name()
                        ),
                    )
                    .with_node(term.clone())
                    .with_span(span),
                );
            }
        }
    }
}
