//! PB021x — corpus-wide rules, solved over per-document
//! [`AnalysisSummary`]s rather than parsed graphs.
//!
//! These rules implement the paper's "the corpus is analyzable as a
//! whole" claim: lineage and temporal constraints span documents (a run
//! bundle may derive from entities generated in another run), so the
//! checks run on the *union* of every document's summary, propagated
//! with the fixpoint framework in [`crate::dataflow`]. Because they
//! consume summaries only, a warm incremental run re-solves them from
//! the lint snapshot without re-parsing a single file.
//!
//! The `PB02xx` number space is shared with the Taverna profile pack
//! (PB0201–PB0206); the corpus pack starts at PB0210 — ids are never
//! reused or renumbered.

use super::Rule;
use crate::dataflow::{scc_ids, solve, Direction, FlowGraph};
use crate::diagnostic::{Diagnostic, RelatedLocation, RuleInfo, Severity};
use crate::summary::{AnalysisSummary, EventKind};
use provbench_rdf::Iri;
use std::collections::{BTreeMap, BTreeSet};

/// `PB0210` — a cross-document reference whose target no document declares.
pub static DANGLING_REFERENCE: RuleInfo = RuleInfo {
    id: "PB0210",
    slug: "corpus/dangling-reference",
    severity: Severity::Error,
    summary: "a prov:used / prov:wasDerivedFrom target is declared in no document of the corpus",
};

/// `PB0211` — derivation chains that never bottom out anywhere in the corpus.
pub static UNANCHORED_DERIVATION: RuleInfo = RuleInfo {
    id: "PB0211",
    slug: "corpus/unanchored-derivation",
    severity: Severity::Error,
    summary: "a derivation cycle spanning documents keeps chains from reaching a source entity",
};

/// `PB0212` — the PB0107 event network, lifted to the union of all documents.
pub static CROSS_RUN_TEMPORAL: RuleInfo = RuleInfo {
    id: "PB0212",
    slug: "corpus/cross-run-temporal-cycle",
    severity: Severity::Error,
    summary: "event-ordering constraints spanning documents form a temporally impossible cycle",
};

/// `PB0213` — a document sharing no data IRIs with the rest of the corpus.
pub static ORPHAN_DOCUMENT: RuleInfo = RuleInfo {
    id: "PB0213",
    slug: "corpus/orphan-document",
    severity: Severity::Warning,
    summary: "a document shares no data IRIs with any other document in the corpus",
};

/// All corpus rules, id-sorted.
pub static CORPUS_RULES: &[&RuleInfo] = &[
    &DANGLING_REFERENCE,
    &UNANCHORED_DERIVATION,
    &CROSS_RUN_TEMPORAL,
    &ORPHAN_DOCUMENT,
];

/// The registry pack for the corpus rules. Its per-file `check` is a
/// no-op — the actual analysis runs once per corpus in
/// [`check_corpus`] — but registering the pack puts PB0210–PB0213 into
/// the catalog, SARIF rule table and `--explain`.
pub struct CorpusRules;

impl Rule for CorpusRules {
    fn name(&self) -> &'static str {
        "corpus"
    }

    fn rules(&self) -> &'static [&'static RuleInfo] {
        CORPUS_RULES
    }

    fn check(&self, _cx: &super::FileContext<'_>, _out: &mut Vec<Diagnostic>) {
        // Corpus rules need every document's summary; see `check_corpus`.
    }
}

/// Run the corpus rules over `(label, summary)` pairs — one per linted
/// document, labels unique and pre-sorted. Purely a function of the
/// summaries: cold and warm runs that agree on summaries agree on
/// diagnostics, byte for byte.
pub fn check_corpus(entries: &[(String, AnalysisSummary)]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if entries.is_empty() {
        return out;
    }
    dangling_references(entries, &mut out);
    unanchored_derivations(entries, &mut out);
    cross_run_temporal(entries, &mut out);
    orphan_documents(entries, &mut out);
    out.sort_by_key(Diagnostic::sort_key);
    out
}

/// PB0210: `prov:used` / `prov:wasDerivedFrom` targets must be declared
/// *somewhere* — any document of the corpus will do, which is exactly
/// what the single-file rules cannot check.
fn dangling_references(entries: &[(String, AnalysisSummary)], out: &mut Vec<Diagnostic>) {
    let declared_anywhere: BTreeSet<&str> = entries
        .iter()
        .flat_map(|(_, s)| s.declared.iter().map(String::as_str))
        .collect();
    for (label, summary) in entries {
        // used_targets and derived_targets are already sorted sets;
        // dedup across the two via `seen` without an intermediate set.
        // A target in both reports as `prov:used` (iterated first).
        let targets = summary
            .used_targets
            .iter()
            .map(|t| (t.as_str(), "prov:used"))
            .chain(
                summary
                    .derived_targets
                    .iter()
                    .map(|t| (t.as_str(), "prov:wasDerivedFrom")),
            );
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for (target, via) in targets {
            if declared_anywhere.contains(target) || !seen.insert(target) {
                continue;
            }
            out.push(
                Diagnostic::new(
                    &DANGLING_REFERENCE,
                    format!("{via} target {target} is declared in no document of the corpus"),
                )
                .with_node(Iri::new_unchecked(target))
                .with_file(label.clone()),
            );
        }
    }
}

/// PB0211: solve "does this derivation chain bottom out?" as a forward
/// reachability fixpoint from the underived roots, then report the
/// cross-document cycles that keep the unanchored remainder spinning.
/// Single-document cycles are already PB0104.
fn unanchored_derivations(entries: &[(String, AnalysisSummary)], out: &mut Vec<Diagnostic>) {
    // Dense node ids over every IRI in any derivation pair.
    let mut index: BTreeMap<&str, usize> = BTreeMap::new();
    // Per edge `(derived, source)`: the documents asserting it —
    // documents are visited in increasing order, so a last-element
    // check keeps the Vec sorted and duplicate-free without a set.
    let mut edge_docs: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (doc, (_, summary)) in entries.iter().enumerate() {
        for (derived, source) in &summary.derivations {
            let next = index.len();
            index.entry(derived).or_insert(next);
            let next = index.len();
            index.entry(source).or_insert(next);
            let docs = edge_docs.entry((derived, source)).or_default();
            if docs.last() != Some(&doc) {
                docs.push(doc);
            }
        }
    }
    if index.is_empty() {
        return;
    }
    let nodes: Vec<&str> = {
        let mut v = vec![""; index.len()];
        for (iri, &i) in &index {
            v[i] = iri;
        }
        v
    };
    // anchored := reachable (along source -> derived) from a node with
    // no outgoing derivation — the chains that do bottom out.
    let mut flow = FlowGraph::new(index.len());
    let mut derivation_adjacency = vec![Vec::new(); index.len()];
    let derived_nodes: BTreeSet<usize> = edge_docs.keys().map(|(d, _)| index[d]).collect();
    for (derived, source) in edge_docs.keys() {
        flow.add_edge(index[source], index[derived]);
        derivation_adjacency[index[derived]].push(index[source]);
    }
    let init: Vec<bool> = (0..index.len())
        .map(|n| !derived_nodes.contains(&n))
        .collect();
    let anchored = solve(&flow, Direction::Forward, init, |_, v| *v);
    let unanchored_total = anchored.iter().filter(|a| !**a).count();
    if unanchored_total == 0 {
        return;
    }
    // The cycles at fault: non-trivial SCCs of the derivation relation
    // whose member edges come from at least two documents.
    let component = scc_ids(index.len(), &derivation_adjacency);
    let mut members: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (node, &id) in component.iter().enumerate() {
        members.entry(id).or_default().push(node);
    }
    for (&id, member_nodes) in &members {
        if member_nodes.len() < 2 {
            continue;
        }
        let cycle_edges: Vec<(&str, &str, &[usize])> = edge_docs
            .iter()
            .filter(|((d, s), _)| component[index[d]] == id && component[index[s]] == id)
            .map(|(&(d, s), docs)| (d, s, docs.as_slice()))
            .collect();
        let mut docs: Vec<usize> = cycle_edges
            .iter()
            .flat_map(|(_, _, docs)| docs.iter().copied())
            .collect();
        docs.sort_unstable();
        docs.dedup();
        if docs.len() < 2 {
            continue;
        }
        let representative = member_nodes
            .iter()
            .map(|&n| nodes[n])
            .min()
            .expect("non-empty component");
        let related: Vec<RelatedLocation> = cycle_edges
            .iter()
            .map(|(d, s, docs)| RelatedLocation {
                message: format!("cycle member: {d} prov:wasDerivedFrom {s}"),
                file: docs.iter().next().map(|&doc| entries[doc].0.clone()),
                span: None,
            })
            .collect();
        let file = docs
            .iter()
            .map(|&doc| entries[doc].0.clone())
            .min()
            .expect("non-empty doc set");
        out.push(
            Diagnostic::new(
                &UNANCHORED_DERIVATION,
                format!(
                    "derivation chains through {representative} never reach a source entity: \
                     a {}-entity derivation cycle spans {} documents \
                     ({unanchored_total} derived entities corpus-wide stay unanchored)",
                    member_nodes.len(),
                    docs.len(),
                ),
            )
            .with_node(Iri::new_unchecked(representative))
            .with_file(file)
            .with_related(related),
        );
    }
}

/// PB0212: union every document's event-precedence edges and look for
/// impossible cycles *spanning documents* — each individual file can be
/// PB0107-clean while the corpus as a whole is not.
fn cross_run_temporal(entries: &[(String, AnalysisSummary)], out: &mut Vec<Diagnostic>) {
    let mut index: BTreeMap<(EventKind, &str), usize> = BTreeMap::new();
    // Per union edge: (strict, derivation) flags joined, contributing
    // docs — kept as a sorted Vec (documents are visited in order).
    let mut edges: BTreeMap<(usize, usize), (bool, bool, Vec<usize>)> = BTreeMap::new();
    for (doc, (_, summary)) in entries.iter().enumerate() {
        for edge in &summary.events {
            let f = {
                let next = index.len();
                *index
                    .entry((edge.from.0, edge.from.1.as_str()))
                    .or_insert(next)
            };
            let t = {
                let next = index.len();
                *index.entry((edge.to.0, edge.to.1.as_str())).or_insert(next)
            };
            let entry = edges.entry((f, t)).or_insert((false, true, Vec::new()));
            entry.0 |= edge.strict;
            entry.1 &= edge.derivation;
            if entry.2.last() != Some(&doc) {
                entry.2.push(doc);
            }
        }
    }
    if index.is_empty() {
        return;
    }
    let mut nodes: Vec<(EventKind, &str)> = vec![(EventKind::Start, ""); index.len()];
    for (&key, &i) in &index {
        nodes[i] = key;
    }
    let mut adjacency = vec![Vec::new(); index.len()];
    for &(f, t) in edges.keys() {
        adjacency[f].push(t);
    }
    let component = scc_ids(index.len(), &adjacency);
    let mut strict_in: BTreeMap<usize, bool> = BTreeMap::new();
    let mut mixed_in: BTreeMap<usize, bool> = BTreeMap::new();
    let mut docs_in: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (&(f, t), &(strict, derivation, ref docs)) in &edges {
        if component[f] == component[t] {
            *strict_in.entry(component[f]).or_default() |= strict;
            *mixed_in.entry(component[f]).or_default() |= !derivation;
            docs_in
                .entry(component[f])
                .or_default()
                .extend(docs.iter().copied());
        }
    }
    for (id, strict) in strict_in {
        let mut docs = docs_in.remove(&id).unwrap_or_default();
        docs.sort_unstable();
        docs.dedup();
        if !strict || !mixed_in.get(&id).copied().unwrap_or(false) || docs.len() < 2 {
            continue;
        }
        let member_nodes: Vec<(EventKind, &str)> = nodes
            .iter()
            .enumerate()
            .filter(|(n, _)| component[*n] == id)
            .map(|(_, node)| *node)
            .collect();
        let representative = member_nodes
            .iter()
            .map(|(kind, iri)| {
                let rank = match kind {
                    EventKind::Gen => 0u8,
                    EventKind::Start => 1,
                    EventKind::End => 2,
                };
                (rank, *iri)
            })
            .min()
            .expect("non-empty component")
            .1;
        let related: Vec<RelatedLocation> = docs
            .iter()
            .map(|&doc| RelatedLocation {
                message: format!(
                    "events asserted in {} participate in the cycle",
                    entries[doc].0
                ),
                file: Some(entries[doc].0.clone()),
                span: None,
            })
            .collect();
        let file = docs
            .iter()
            .map(|&doc| entries[doc].0.clone())
            .min()
            .expect("non-empty doc set");
        out.push(
            Diagnostic::new(
                &CROSS_RUN_TEMPORAL,
                format!(
                    "cross-run event-ordering constraints around {representative} form an \
                     impossible cycle ({} events across {} documents)",
                    member_nodes.len(),
                    docs.len(),
                ),
            )
            .with_node(Iri::new_unchecked(representative))
            .with_file(file)
            .with_related(related),
        );
    }
}

/// PB0213: a document whose data IRIs overlap no other document is
/// unreachable from the rest of the corpus — a bundle nothing links to
/// and that links to nothing.
fn orphan_documents(entries: &[(String, AnalysisSummary)], out: &mut Vec<Diagnostic>) {
    if entries.len() < 2 {
        return;
    }
    // `declared` and `references` are sorted sets — walk their merged
    // union without materializing a per-document set.
    fn data_iris(summary: &AnalysisSummary) -> impl Iterator<Item = &str> {
        let mut declared = summary.declared.iter().map(String::as_str).peekable();
        let mut referenced = summary.references.iter().map(String::as_str).peekable();
        std::iter::from_fn(move || match (declared.peek(), referenced.peek()) {
            (Some(&d), Some(&r)) if d == r => {
                referenced.next();
                declared.next()
            }
            (Some(&d), Some(&r)) if d < r => declared.next(),
            (Some(_) | None, Some(_)) => referenced.next(),
            (Some(_), None) => declared.next(),
            (None, None) => None,
        })
    }
    let mut doc_count: BTreeMap<&str, usize> = BTreeMap::new();
    for (_, summary) in entries {
        for iri in data_iris(summary) {
            *doc_count.entry(iri).or_default() += 1;
        }
    }
    for (label, summary) in entries {
        if summary.declared.is_empty() && summary.references.is_empty() {
            // Nothing parsed (e.g. a PB0001 file) — not a connectivity
            // finding.
            continue;
        }
        let shared = data_iris(summary).any(|iri| doc_count[iri] > 1);
        if !shared {
            out.push(
                Diagnostic::new(
                    &ORPHAN_DOCUMENT,
                    format!(
                        "document shares no data IRIs with any other document in the corpus \
                         ({} declared terms)",
                        summary.declared.len()
                    ),
                )
                .with_file(label.clone()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_rdf::parse_turtle;

    fn summarize(docs: &[(&str, &str)]) -> Vec<(String, AnalysisSummary)> {
        let mut entries: Vec<(String, AnalysisSummary)> = docs
            .iter()
            .map(|(label, content)| {
                let (g, _) = parse_turtle(content).expect("parse test doc");
                ((*label).to_owned(), AnalysisSummary::of_graph(&g))
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    const PREFIXES: &str = "@prefix prov: <http://www.w3.org/ns/prov#> .\n\
                            @prefix ex: <http://example.org/> .\n";

    #[test]
    fn dangling_reference_is_resolved_by_any_document() {
        let run = format!("{PREFIXES}ex:out a prov:Entity ; prov:wasDerivedFrom ex:shared .");
        // Alone: ex:shared is dangling.
        let alone = check_corpus(&summarize(&[("a.ttl", &run)]));
        assert!(alone.iter().any(|d| d.rule.id == "PB0210"
            && d.node
                .as_ref()
                .is_some_and(|n| n.as_str().ends_with("shared"))));
        // With a second document declaring it: resolved.
        let decl = format!("{PREFIXES}ex:shared a prov:Entity .");
        let both = check_corpus(&summarize(&[("a.ttl", &run), ("b.ttl", &decl)]));
        assert!(!both.iter().any(|d| d.rule.id == "PB0210"));
    }

    #[test]
    fn cross_document_derivation_cycle_is_unanchored() {
        // a.ttl: x from y; b.ttl: y from x — each file is PB0104-clean,
        // the corpus is not.
        let a = format!("{PREFIXES}ex:x a prov:Entity ; prov:wasDerivedFrom ex:y .");
        let b = format!("{PREFIXES}ex:y a prov:Entity ; prov:wasDerivedFrom ex:x .");
        let diags = check_corpus(&summarize(&[("a.ttl", &a), ("b.ttl", &b)]));
        let hit = diags
            .iter()
            .find(|d| d.rule.id == "PB0211")
            .expect("PB0211 fires");
        assert_eq!(hit.file.as_deref(), Some("a.ttl"));
        assert_eq!(hit.related.len(), 2, "one related location per cycle edge");
        // A single-document cycle is PB0104's business, not PB0211's.
        let single =
            format!("{PREFIXES}ex:x prov:wasDerivedFrom ex:y . ex:y prov:wasDerivedFrom ex:x .");
        let diags = check_corpus(&summarize(&[("a.ttl", &single)]));
        assert!(!diags.iter().any(|d| d.rule.id == "PB0211"));
    }

    #[test]
    fn anchored_chains_spanning_documents_are_clean() {
        let a = format!("{PREFIXES}ex:mid a prov:Entity ; prov:wasDerivedFrom ex:input .");
        let b = format!(
            "{PREFIXES}ex:input a prov:Entity .\n\
             ex:out a prov:Entity ; prov:wasDerivedFrom ex:mid ."
        );
        let diags = check_corpus(&summarize(&[("a.ttl", &a), ("b.ttl", &b)]));
        assert!(!diags.iter().any(|d| d.rule.id == "PB0211"));
        assert!(!diags.iter().any(|d| d.rule.id == "PB0210"));
    }

    #[test]
    fn cross_run_temporal_cycle_spans_documents() {
        // a.ttl: run1 generated out1 and used out2; b.ttl: run2 generated
        // out2, derived from out1 — derivation forces gen(out1) < gen(out2)
        // while usage/generation force gen(out2) ≤ end(run1) and
        // start(run1) ≤ gen(out1) … closing an impossible loop via
        // run1's interval only when both documents are considered.
        let a = format!(
            "{PREFIXES}ex:out1 prov:wasGeneratedBy ex:run1 .\n\
             ex:run1 prov:used ex:out2 .\n\
             ex:run1 prov:wasStartedBy ex:out2 ."
        );
        let b = format!(
            "{PREFIXES}ex:out2 prov:wasGeneratedBy ex:run2 .\n\
             ex:out2 prov:wasDerivedFrom ex:out1 ."
        );
        let entries = summarize(&[("a.ttl", &a), ("b.ttl", &b)]);
        // Each file alone is clean.
        for entry in &entries {
            let solo = check_corpus(std::slice::from_ref(entry));
            assert!(!solo.iter().any(|d| d.rule.id == "PB0212"), "{}", entry.0);
        }
        let diags = check_corpus(&entries);
        let hit = diags
            .iter()
            .find(|d| d.rule.id == "PB0212")
            .expect("PB0212 fires on the union");
        assert_eq!(hit.file.as_deref(), Some("a.ttl"));
        assert_eq!(
            hit.related
                .iter()
                .filter_map(|r| r.file.as_deref())
                .collect::<Vec<_>>(),
            vec!["a.ttl", "b.ttl"]
        );
    }

    #[test]
    fn orphan_document_detection() {
        let a = format!("{PREFIXES}ex:a1 a prov:Entity ; prov:wasDerivedFrom ex:shared .");
        let b = format!("{PREFIXES}ex:shared a prov:Entity .");
        let c = "@prefix prov: <http://www.w3.org/ns/prov#> .\n\
                 @prefix other: <http://elsewhere.example/> .\n\
                 other:lonely a prov:Entity ."
            .to_owned();
        let diags = check_corpus(&summarize(&[("a.ttl", &a), ("b.ttl", &b), ("c.ttl", &c)]));
        let orphans: Vec<_> = diags.iter().filter(|d| d.rule.id == "PB0213").collect();
        assert_eq!(orphans.len(), 1);
        assert_eq!(orphans[0].file.as_deref(), Some("c.ttl"));
        assert_eq!(orphans[0].severity, Severity::Warning);
    }

    #[test]
    fn corpus_diagnostics_are_sorted_and_deterministic() {
        let a = format!("{PREFIXES}ex:x prov:wasDerivedFrom ex:gone .");
        let c = "@prefix prov: <http://www.w3.org/ns/prov#> .\n\
                 @prefix other: <http://elsewhere.example/> .\n\
                 other:lonely prov:used other:gone2 ."
            .to_owned();
        let entries = summarize(&[("a.ttl", &a), ("c.ttl", &c)]);
        let once = check_corpus(&entries);
        let twice = check_corpus(&entries);
        assert_eq!(once, twice);
        let mut sorted = once.clone();
        sorted.sort_by_key(Diagnostic::sort_key);
        assert_eq!(once, sorted);
    }
}
